//! The RRFD abstract loop on real OS threads: one thread per process, the
//! fault detector as a coordinator service, Theorem 3.1 running live.
//!
//! Run with: `cargo run --example threaded_kset`

use rrfd::core::task::KSetAgreement;
use rrfd::core::{Control, Delivery, Round, RoundProtocol, SystemSize};
use rrfd::models::adversary::RandomAdversary;
use rrfd::models::predicates::KUncertainty;
use rrfd::runtime::ThreadedEngine;

/// Theorem 3.1's one-round process, written against the core trait so it
/// runs unchanged on the in-process engine and on threads.
struct OneRound {
    input: u64,
}

impl RoundProtocol for OneRound {
    type Msg = u64;
    type Output = u64;

    fn emit(&mut self, _round: Round) -> u64 {
        self.input
    }

    fn deliver(&mut self, d: Delivery<'_, u64>) -> Control<u64> {
        let winner = d.heard_from().min().expect("someone is always heard");
        Control::Decide(*d.get(winner).expect("winner was heard"))
    }
}

fn main() {
    let n = SystemSize::new(8).expect("valid size");
    let k = 3;
    let inputs: Vec<u64> = (0..8).map(|i| 900 + i).collect();
    let model = KUncertainty::new(n, k);
    let task = KSetAgreement::new(k);

    println!("{k}-set agreement on {n} OS threads, coordinator-served RRFD");

    for seed in 0..4u64 {
        let engine = ThreadedEngine::new(n);
        let clock = engine.clock();
        let protocols: Vec<_> = inputs.iter().map(|&v| OneRound { input: v }).collect();
        let mut adversary = RandomAdversary::new(model, seed);

        let report = engine
            .run(protocols, &mut adversary, &model)
            .expect("legal adversary");

        let outputs = report.outputs();
        task.check_terminating(&inputs, &outputs)
            .expect("task holds on threads too");
        println!(
            "seed {seed}: decided {:?} in {} round(s); clock saw round {}",
            outputs.iter().flatten().collect::<Vec<_>>(),
            report.rounds_executed,
            clock.current_round()
        );
    }

    println!("the same protocol type runs on the simulator and on threads.");
}
