//! A tour of the predicate zoo: every classical system of §2 as an RRFD,
//! with its submodel relations machine-checked by sampling.
//!
//! Run with: `cargo run --example model_zoo`

use rrfd::core::{RrfdPredicate, SystemSize};
use rrfd::models::adversary::SampleModel;
use rrfd::models::predicates::{
    AntiSymmetric, AsyncResilient, Crash, DetectorS, IdenticalViews, KUncertainty, SendOmission,
    Snapshot, Swmr, SystemB,
};
use rrfd::models::submodel::refines_on_samples;

fn check<A: SampleModel, B: RrfdPredicate>(a: &A, b: &B) -> &'static str {
    if refines_on_samples(a, b, 60, 8, 0xABCD).holds() {
        "yes"
    } else {
        "no "
    }
}

fn main() {
    let n = SystemSize::new(7).expect("valid size");
    let f = 3;

    let omission = SendOmission::new(n, f);
    let crash = Crash::new(n, f);
    let asynchronous = AsyncResilient::new(n, f);
    let swmr = Swmr::new(n, f);
    let snapshot = Snapshot::new(n, f);
    let detector_s = DetectorS::new(n);
    let k1 = KUncertainty::new(n, 1);
    let k3 = KUncertainty::new(n, 3);
    let eq = IdenticalViews::new(n);
    let antisym = AntiSymmetric::new(n);
    let system_b = SystemB::new(n, 1, 3);
    let a_for_b = AsyncResilient::new(n, 1);

    println!("the RRFD model zoo over n = {n}, f = {f}");
    println!();
    println!("predicates:");
    for p in [
        omission.name(),
        crash.name(),
        asynchronous.name(),
        swmr.name(),
        snapshot.name(),
        detector_s.name(),
        k1.name(),
        k3.name(),
        eq.name(),
        antisym.name(),
        system_b.name(),
    ] {
        println!("  {p}");
    }

    println!();
    println!("submodel relations (A is a submodel of B iff P_A ⇒ P_B),");
    println!("checked by sampling thousands of legal A-rounds against B:");
    println!();
    let rows: Vec<(String, String, &str)> = vec![
        (crash.name(), omission.name(), check(&crash, &omission)),
        (omission.name(), crash.name(), check(&omission, &crash)),
        (snapshot.name(), swmr.name(), check(&snapshot, &swmr)),
        (
            swmr.name(),
            asynchronous.name(),
            check(&swmr, &asynchronous),
        ),
        (
            asynchronous.name(),
            swmr.name(),
            check(&asynchronous, &swmr),
        ),
        (a_for_b.name(), system_b.name(), check(&a_for_b, &system_b)),
        (system_b.name(), a_for_b.name(), check(&system_b, &a_for_b)),
        (eq.name(), k1.name(), check(&eq, &k1)),
        (k1.name(), k3.name(), check(&k1, &k3)),
        (k3.name(), k1.name(), check(&k3, &k1)),
        (snapshot.name(), antisym.name(), check(&snapshot, &antisym)),
        (omission.name(), detector_s.name(), {
            let wide = SendOmission::new(n, n.get() - 1);
            check(&wide, &detector_s)
        }),
    ];
    for (a, b, verdict) in rows {
        println!("  {verdict}  {a}  ⇒  {b}");
    }

    println!();
    println!("highlights straight from the paper:");
    println!("  • crash ⊆ send-omission is explicit in the model definition (§2 item 2)");
    println!("  • System B strictly extends the async model yet implements it (§2 item 3)");
    println!("  • Peq is exactly the k = 1 uncertainty detector (§5 → §3)");
    println!("  • detector-S ⇔ send-omission with f = n − 1 (§2 item 6)");
}
