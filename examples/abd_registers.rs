//! Shared memory out of message passing: the ABD atomic-register emulation
//! (§2 item 4's enabling substrate, the paper's reference [22]).
//!
//! Five processes run concurrent read/write scripts over an asynchronous,
//! adversarially scheduled network with crash faults; the recorded
//! operation intervals are checked against the atomic-register axioms.
//!
//! Run with: `cargo run --example abd_registers`

use rrfd::core::{ProcessId, SystemSize};
use rrfd::protocols::abd::{check_clients, AbdClient, Op};
use rrfd::sims::async_net::{AsyncNetSim, RandomNetScheduler};

fn main() {
    let n = SystemSize::new(5).expect("valid size");
    let f = 2; // 2f < n
    let p0 = ProcessId::new(0);
    let p2 = ProcessId::new(2);

    let scripts: Vec<Vec<Op>> = vec![
        vec![Op::Write(10), Op::Write(20), Op::Write(30)],
        vec![Op::Read(p0), Op::Read(p0), Op::Read(p0)],
        vec![Op::Write(77), Op::Read(p0)],
        vec![Op::Read(p2), Op::Read(p0), Op::Read(p2)],
        vec![Op::Read(p0), Op::Write(5), Op::Read(p2)],
    ];

    println!("ABD atomic registers over an adversarial network (n = {n}, f = {f})");
    println!();

    for seed in 0..5u64 {
        let procs: Vec<_> = n
            .processes()
            .map(|p| AbdClient::new(p, n, f, scripts[p.index()].clone()))
            .collect();
        let mut sched = RandomNetScheduler::new(seed, f).crash_prob(0.003);
        let report = AsyncNetSim::new(n)
            .run(procs, &mut sched)
            .expect("run completes");

        check_clients(&report.processes).expect("atomicity holds");

        println!(
            "seed {seed}: {} deliveries, crashed {:?}, atomicity certified",
            report.deliveries, report.crashed
        );
        // Show what the p0-poller saw across its three reads.
        let reads: Vec<String> = report.processes[1]
            .history()
            .iter()
            .map(|r| match r.value {
                Some(v) => format!("{v}"),
                None => "⊥".to_owned(),
            })
            .collect();
        println!(
            "         p1's successive reads of p0's register: [{}]",
            reads.join(", ")
        );
    }

    println!();
    println!("every interleaving produced an atomic history — message passing");
    println!("implements shared memory when 2f < n, as §2 item 4 uses.");
}
