//! Theorem 4.3 end to end: synchronous crash-fault rounds simulated on
//! asynchronous snapshot shared memory via adopt-commit.
//!
//! Runs flood-min through the simulation under randomly scheduled (and
//! crashing) asynchronous executions, prints the extracted synchronous
//! fault pattern, and certifies it against the crash predicate.
//!
//! Run with: `cargo run --example crash_simulation`

use rrfd::core::SystemSize;
use rrfd::protocols::kset::FloodMin;
use rrfd::protocols::sync_sim::run_crash_simulation;
use rrfd::sims::shared_mem::RandomScheduler;

fn main() {
    let n = SystemSize::new(6).expect("valid size");
    let (f, k) = (4usize, 2usize);
    let budget = (f / k) as u32; // ⌊f/k⌋ simulated rounds

    println!("Theorem 4.3: {budget} synchronous crash round(s) on async snapshot memory");
    println!("n = {n}, async crash budget k = {k}, synchronous footprint f = {f}");
    println!();

    for seed in 0..6u64 {
        let inputs: Vec<u64> = (1..=n.get() as u64).collect();
        let protocols: Vec<_> = inputs.iter().map(|&v| FloodMin::new(v, budget)).collect();
        let mut scheduler = RandomScheduler::new(seed, k).crash_prob(0.03);
        let report = run_crash_simulation(n, k, f, budget, protocols, &mut scheduler)
            .expect("simulation runs to completion");

        println!(
            "seed {seed}: async-crashed {:?}, simulated pattern {:?}",
            report.crashed, report.pattern
        );
        println!(
            "         crash-certified: {} (footprint {} ≤ f = {f})",
            report.crash_certified,
            report.pattern.cumulative_union().len(),
        );
        assert!(
            report.crash_certified,
            "Theorem 4.3 guarantees certification"
        );
    }

    println!();
    println!("every asynchronous execution mapped to a legal f-crash synchronous run.");
}
