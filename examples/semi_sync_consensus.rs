//! §5: consensus in **2 steps** in the Dolev-Dwork-Stockmeyer
//! semi-synchronous model, versus the O(n)-step baseline.
//!
//! DDS proved consensus possible in this model with a 2n-step algorithm
//! and left O(1) open; the paper closes it via the identical-views RRFD.
//! This example runs both algorithms under random schedules with crashes
//! and prints the per-process steps-to-decide.
//!
//! Run with: `cargo run --example semi_sync_consensus`

use rrfd::core::task::KSetAgreement;
use rrfd::core::SystemSize;
use rrfd::protocols::semi_sync_consensus::{RepeatedRounds, TwoStepConsensus};
use rrfd::sims::semi_sync::{RandomSemiSync, SemiSyncSim};

fn main() {
    println!("semi-synchronous consensus: Gafni 2-step vs DDS-style 2n-step");
    println!(
        "{:>4} | {:>14} | {:>14}",
        "n", "2-step (steps)", "baseline (steps)"
    );

    for &nv in &[3usize, 5, 8, 12, 16] {
        let n = SystemSize::new(nv).expect("valid size");
        let inputs: Vec<u64> = (0..nv as u64).map(|i| 700 + i).collect();
        let task = KSetAgreement::consensus();

        // Gafni's 2-step algorithm.
        let procs: Vec<_> = n
            .processes()
            .map(|p| TwoStepConsensus::new(n, p, inputs[p.index()]))
            .collect();
        let mut sched = RandomSemiSync::new(42 + nv as u64, nv - 1);
        let fast = SemiSyncSim::new(n)
            .run(procs, &mut sched)
            .expect("terminates");
        let fast_outs: Vec<Option<u64>> = fast
            .outputs
            .iter()
            .map(|o| o.as_ref().map(|&(v, _)| v))
            .collect();
        task.check(&inputs, &fast_outs).expect("consensus holds");

        // The 2n-step baseline (n iterated rounds).
        let procs: Vec<_> = n
            .processes()
            .map(|p| RepeatedRounds::new(n, p, inputs[p.index()], nv as u32))
            .collect();
        let mut sched = RandomSemiSync::new(142 + nv as u64, nv - 1);
        let slow = SemiSyncSim::new(n)
            .run(procs, &mut sched)
            .expect("terminates");
        let slow_outs: Vec<Option<u64>> = slow
            .outputs
            .iter()
            .map(|o| o.as_ref().map(|&(v, _)| v))
            .collect();
        task.check(&inputs, &slow_outs).expect("consensus holds");

        println!(
            "{:>4} | {:>14} | {:>14}",
            nv,
            fast.max_steps_to_decide().expect("someone decided"),
            slow.max_steps_to_decide().expect("someone decided"),
        );
    }

    println!();
    println!("the 2-step column is constant; the baseline grows as 2n —");
    println!("the paper's answer to the DDS open problem.");
}
