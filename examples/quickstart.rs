//! Quickstart: solve k-set agreement in a single round (Theorem 3.1).
//!
//! Builds an 8-process RRFD system constrained by the k-uncertainty
//! predicate, drives it with a seeded random adversary, and checks the
//! decisions against the task specification.
//!
//! Run with: `cargo run --example quickstart`

use rrfd::core::task::KSetAgreement;
use rrfd::core::SystemSize;
use rrfd::models::adversary::RandomAdversary;
use rrfd::models::predicates::KUncertainty;
use rrfd::protocols::kset::one_round_kset;

fn main() {
    let n = SystemSize::new(8).expect("8 is a valid system size");
    let k = 2;
    let inputs: Vec<u64> = (0..8).map(|i| 100 + i).collect();

    println!("one-round {k}-set agreement among {n} processes");
    println!("inputs:    {inputs:?}");

    for seed in 0..5u64 {
        let mut adversary = RandomAdversary::new(KUncertainty::new(n, k), seed);
        let decisions = one_round_kset(n, k, &inputs, &mut adversary).expect("legal adversary");

        let mut distinct = decisions.clone();
        distinct.sort_unstable();
        distinct.dedup();

        KSetAgreement::new(k)
            .check_terminating(
                &inputs,
                &decisions.iter().map(|&d| Some(d)).collect::<Vec<_>>(),
            )
            .expect("Theorem 3.1 guarantees the task");

        println!(
            "seed {seed}: decisions {decisions:?} — {} distinct value(s) ≤ k = {k}",
            distinct.len()
        );
    }

    println!("every run decided in exactly one round, as Theorem 3.1 promises");
}
