//! The `⌊f/k⌋ + 1` synchronous lower bound (Corollaries 4.2/4.4), made
//! executable.
//!
//! Runs flood-min k-set agreement in the synchronous crash RRFD model at
//! two round budgets:
//!
//! * `⌊f/k⌋` rounds against the chain-silencing adversary — the protocol is
//!   forced into `k + 1` distinct decisions (the lower bound's hard
//!   execution);
//! * `⌊f/k⌋ + 1` rounds against the same adversary — one extra round lets
//!   the silenced values flood out and the protocol wins.
//!
//! Run with: `cargo run --example sync_lower_bound`

use rrfd::core::{Engine, ProcessId, SystemSize};
use rrfd::models::adversary::SilencingCrash;
use rrfd::models::predicates::Crash;
use rrfd::protocols::kset::FloodMin;
use std::collections::BTreeSet;

fn distinct_live_decisions(n: SystemSize, f: usize, k: usize, budget: u32) -> usize {
    let inputs: Vec<u64> = (0..n.get() as u64).collect();
    let protocols: Vec<_> = inputs.iter().map(|&v| FloodMin::new(v, budget)).collect();
    let model = Crash::new(n, f);
    let mut adversary = SilencingCrash::new(n, f, k);
    let report = Engine::new(n)
        .run(protocols, &mut adversary, &model)
        .expect("silencer plays legally");

    let crashed = report.pattern.cumulative_union();
    report
        .outputs()
        .into_iter()
        .enumerate()
        .filter(|(i, _)| !crashed.contains(ProcessId::new(*i)))
        .map(|(_, v)| v.expect("flood-min always decides"))
        .collect::<BTreeSet<_>>()
        .len()
}

fn main() {
    println!("k-set agreement vs. the chain-silencing adversary");
    println!(
        "{:>4} {:>4} {:>4} | {:>14} {:>16}",
        "n", "f", "k", "⌊f/k⌋ rounds", "⌊f/k⌋+1 rounds"
    );
    for &(n, f, k) in &[(6usize, 3usize, 1usize), (10, 4, 2), (13, 6, 3), (17, 8, 4)] {
        let n = SystemSize::new(n).expect("valid size");
        let short = (f / k) as u32;
        let at_short = distinct_live_decisions(n, f, k, short);
        let at_correct = distinct_live_decisions(n, f, k, short + 1);
        println!(
            "{:>4} {:>4} {:>4} | {:>7} values {:>9} values",
            n.get(),
            f,
            k,
            at_short,
            at_correct
        );
        assert!(at_short > k, "the adversary must defeat the short budget");
        assert!(at_correct <= k, "the extra round must restore the task");
    }
    println!();
    println!("⌊f/k⌋ rounds are never enough; ⌊f/k⌋+1 always are — the bound is tight.");
}
