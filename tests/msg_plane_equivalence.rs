//! Differential proof that the zero-copy message plane is behaviorally
//! invisible.
//!
//! Each test pits a zero-copy substrate against a reference runner with
//! the seed's per-recipient-clone semantics and demands *exact* equality:
//!
//! * `Engine` (Arc-free shared emission table) vs
//!   [`rrfd_bench::ClonePlaneEngine`] — byte-identical `RunTrace`s and
//!   identical decisions, on deciding runs, adversary violations, and
//!   round-limit runs alike.
//! * `ThreadedEngine` (one `Arc` table per round, `n` reference counts)
//!   vs `Engine`, on the copy-on-write full-information protocol.
//! * The semi-synchronous, synchronous-network, and asynchronous-network
//!   simulators vs inline clone-plane re-implementations of their seed
//!   delivery loops, including injected crashes, plus a
//!   `Recording` → `ScheduleReplay` round trip on the semi-sync schedule.
//!
//! If sharing a payload could ever change what a protocol observes, one
//! of these diffs would catch it.

use proptest::prelude::*;
use rrfd::core::{
    AnyPattern, Control, Delivery, Engine, EngineError, FaultPattern, IdSet, KnowledgeProtocol,
    ProcessId, Round, RoundFaults, RoundProtocol, SystemSize,
};
use rrfd::models::adversary::{RandomAdversary, ScriptedDetector};
use rrfd::models::predicates::KUncertainty;
use rrfd::runtime::ThreadedEngine;
use rrfd::sims::async_net::{AsyncNetSim, AsyncProcess, NetScheduler, Outbox, RandomNetScheduler};
use rrfd::sims::semi_sync::{
    RandomSemiSync, SemiSyncEvent, SemiSyncProcess, SemiSyncScheduler, SemiSyncSim,
};
use rrfd::sims::sync_net::{RandomCrash, SyncFaults, SyncNetSim};
use rrfd::sims::trace::{Recording, ScheduleReplay};
use rrfd_bench::ClonePlaneEngine;
use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;

fn size(n: usize) -> SystemSize {
    SystemSize::new(n).unwrap()
}

// ---------------------------------------------------------------------------
// Engine vs ClonePlaneEngine
// ---------------------------------------------------------------------------

/// Sums every visible payload each round; decides after `rounds` rounds.
/// The accumulator depends on exactly which messages were observable, so
/// any masking difference between the planes shows up in the decision.
#[derive(Debug, Clone)]
struct SumHeard {
    rounds: u32,
    acc: u64,
    me: u64,
}

impl RoundProtocol for SumHeard {
    type Msg = u64;
    type Output = u64;
    fn emit(&mut self, round: Round) -> u64 {
        self.me * 31 + u64::from(round.get())
    }
    fn deliver(&mut self, d: Delivery<'_, u64>) -> Control<u64> {
        self.acc += d.values().sum::<u64>();
        if d.round.get() >= self.rounds {
            Control::Decide(self.acc)
        } else {
            Control::Continue
        }
    }
}

fn sum_heard(n: usize, rounds: u32) -> Vec<SumHeard> {
    (0..n)
        .map(|i| SumHeard {
            rounds,
            acc: 0,
            me: i as u64 + 1,
        })
        .collect()
}

proptest! {
    #[test]
    fn engine_is_trace_identical_to_the_clone_plane(
        n in 2usize..=8,
        rounds in 1u32..=5,
        k in 1usize..=3,
        seed in 0u64..256,
    ) {
        let sz = size(n);
        let k = k.min(n - 1).max(1);
        let model = KUncertainty::new(sz, k);

        let (shared, shared_trace) = Engine::new(sz).run_traced(
            sum_heard(n, rounds),
            &mut RandomAdversary::new(model, seed),
            &model,
        );
        let (cloned, cloned_trace) = ClonePlaneEngine::new(sz).run_traced(
            sum_heard(n, rounds),
            &mut RandomAdversary::new(model, seed),
            &model,
        );

        let shared = shared.unwrap();
        let cloned = cloned.unwrap();
        prop_assert_eq!(shared_trace.to_string(), cloned_trace.to_string());
        prop_assert_eq!(&shared_trace, &cloned_trace);
        prop_assert_eq!(shared.decisions, cloned.decisions);
        prop_assert_eq!(shared.pattern, cloned.pattern);
        prop_assert_eq!(shared.rounds_executed, cloned.rounds_executed);
    }

    #[test]
    fn full_info_cow_matches_the_clone_plane(
        n in 2usize..=8,
        rounds in 1u32..=4,
        seed in 0u64..128,
    ) {
        let sz = size(n);
        let k = (n - 1).clamp(1, 2);
        let model = KUncertainty::new(sz, k);
        let build = || -> Vec<KnowledgeProtocol<u64>> {
            sz.processes()
                .map(|p| KnowledgeProtocol::new(sz, p, 700 + p.index() as u64, rounds))
                .collect()
        };

        let (shared, shared_trace) = Engine::new(sz).run_traced(
            build(),
            &mut RandomAdversary::new(model, seed),
            &model,
        );
        let (cloned, cloned_trace) = ClonePlaneEngine::new(sz).run_traced(
            build(),
            &mut RandomAdversary::new(model, seed),
            &model,
        );

        prop_assert_eq!(shared_trace.to_string(), cloned_trace.to_string());
        let shared = shared.unwrap();
        let cloned = cloned.unwrap();
        prop_assert_eq!(shared.outputs(), cloned.outputs());
        prop_assert_eq!(shared.pattern, cloned.pattern);
    }
}

#[test]
fn planes_agree_on_adversary_violations() {
    // A clean round followed by an ill-formed round (p1 suspects everyone,
    // voiding the covering property). Both planes must fail identically
    // and both traces must keep the offending round as evidence.
    let sz = size(4);
    let mut bad = RoundFaults::none(sz);
    bad.set(ProcessId::new(1), IdSet::universe(sz));
    let script = vec![RoundFaults::none(sz), bad];

    let (shared, shared_trace) = Engine::new(sz).run_traced(
        sum_heard(4, 10),
        &mut ScriptedDetector::new(sz, script.clone()),
        &AnyPattern::new(sz),
    );
    let (cloned, cloned_trace) = ClonePlaneEngine::new(sz).run_traced(
        sum_heard(4, 10),
        &mut ScriptedDetector::new(sz, script),
        &AnyPattern::new(sz),
    );

    assert!(matches!(shared, Err(EngineError::Violation(_))));
    assert_eq!(shared.unwrap_err(), cloned.unwrap_err());
    assert_eq!(shared_trace.to_string(), cloned_trace.to_string());
    assert_eq!(shared_trace, cloned_trace);
    assert_eq!(shared_trace.rounds().len(), 2);
}

#[test]
fn planes_agree_on_round_limit_runs() {
    let sz = size(3);
    let model = KUncertainty::new(sz, 1);
    // rounds = 100 with max_rounds(4): nobody ever decides.
    let (shared, shared_trace) = Engine::new(sz).max_rounds(4).run_traced(
        sum_heard(3, 100),
        &mut RandomAdversary::new(model, 11),
        &model,
    );
    let (cloned, cloned_trace) = ClonePlaneEngine::new(sz).max_rounds(4).run_traced(
        sum_heard(3, 100),
        &mut RandomAdversary::new(model, 11),
        &model,
    );
    assert_eq!(
        shared.unwrap_err(),
        EngineError::RoundLimitExceeded { max_rounds: 4 }
    );
    assert_eq!(
        cloned.unwrap_err(),
        EngineError::RoundLimitExceeded { max_rounds: 4 }
    );
    assert_eq!(shared_trace.to_string(), cloned_trace.to_string());
}

// ---------------------------------------------------------------------------
// ThreadedEngine (Arc table plane) vs Engine
// ---------------------------------------------------------------------------

#[test]
fn threaded_arc_plane_matches_the_engine_on_full_info() {
    let sz = size(5);
    let model = KUncertainty::new(sz, 2);
    let build = || -> Vec<KnowledgeProtocol<u64>> {
        sz.processes()
            .map(|p| KnowledgeProtocol::new(sz, p, 40 + p.index() as u64, 3))
            .collect()
    };
    for seed in 0..6u64 {
        let (threaded, threaded_trace) = ThreadedEngine::new(sz).run_traced(
            build(),
            &mut RandomAdversary::new(model, seed),
            &model,
        );
        let (inproc, inproc_trace) =
            Engine::new(sz).run_traced(build(), &mut RandomAdversary::new(model, seed), &model);
        assert_eq!(
            threaded_trace.to_string(),
            inproc_trace.to_string(),
            "seed {seed}"
        );
        let threaded = threaded.unwrap();
        let inproc = inproc.unwrap();
        assert_eq!(threaded.outputs(), inproc.outputs(), "seed {seed}");
    }
}

// ---------------------------------------------------------------------------
// Semi-synchronous simulator: Arc inboxes vs per-inbox deep copies
// ---------------------------------------------------------------------------

/// Gossips its known value set (a heap payload, so clone volume is real);
/// decides the sorted set after a fixed number of its own steps.
#[derive(Debug, Clone)]
struct Gossip {
    budget: u64,
    steps: u64,
    seen: BTreeSet<u64>,
}

impl Gossip {
    fn fleet(n: usize, budget: u64) -> Vec<Gossip> {
        (0..n)
            .map(|i| Gossip {
                budget,
                steps: 0,
                seen: BTreeSet::from([i as u64 + 50]),
            })
            .collect()
    }
}

impl SemiSyncProcess for Gossip {
    type Msg = Vec<u64>;
    type Output = Vec<u64>;
    fn step(
        &mut self,
        received: &[(ProcessId, Arc<Vec<u64>>)],
    ) -> (Option<Vec<u64>>, Control<Vec<u64>>) {
        for (_, msg) in received {
            self.seen.extend(msg.iter().copied());
        }
        self.steps += 1;
        let broadcast = Some(self.seen.iter().copied().collect());
        if self.steps >= self.budget {
            (
                broadcast,
                Control::Decide(self.seen.iter().copied().collect()),
            )
        } else {
            (broadcast, Control::Continue)
        }
    }
}

/// The per-process outcome of a semi-sync reference run: the decided
/// value paired with the step count it decided at.
type SemiSyncOutputs<P> = Vec<Option<(<P as SemiSyncProcess>::Output, u64)>>;

/// The seed's semi-sync delivery loop: owned inboxes, a broadcast deep-
/// copied into every inbox, each delivery wrapped in its own fresh `Arc`.
/// Mirrors `SemiSyncExecution` event for event.
fn run_semi_sync_clone_plane<P, S>(
    n: SystemSize,
    max_steps: u64,
    mut processes: Vec<P>,
    scheduler: &mut S,
) -> (SemiSyncOutputs<P>, IdSet, u64)
where
    P: SemiSyncProcess,
    S: SemiSyncScheduler,
{
    let count = n.get();
    assert_eq!(processes.len(), count);
    let mut inboxes: Vec<VecDeque<(ProcessId, P::Msg)>> =
        (0..count).map(|_| VecDeque::new()).collect();
    let mut outputs: Vec<Option<(P::Output, u64)>> = (0..count).map(|_| None).collect();
    let mut step_counts = vec![0u64; count];
    let mut crashed = IdSet::empty();
    let mut total_steps = 0u64;
    let mut events = 0u64;
    let event_limit = max_steps.saturating_mul(4).saturating_add(1024);

    loop {
        let live: IdSet = (0..count)
            .map(ProcessId::new)
            .filter(|&p| !crashed.contains(p) && outputs[p.index()].is_none())
            .collect();
        if live.is_empty() {
            return (outputs, crashed, total_steps);
        }
        assert!(
            total_steps < max_steps && events < event_limit,
            "clone-plane reference hit the step limit"
        );
        events += 1;
        match scheduler.next_event(live, total_steps) {
            SemiSyncEvent::Crash(p) => {
                if live.contains(p) {
                    crashed.insert(p);
                }
            }
            SemiSyncEvent::Step(p) => {
                if !live.contains(p) {
                    continue;
                }
                total_steps += 1;
                step_counts[p.index()] += 1;
                // One fresh allocation per buffered message: the clone
                // plane never shares.
                let received: Vec<(ProcessId, Arc<P::Msg>)> = inboxes[p.index()]
                    .drain(..)
                    .map(|(from, m)| (from, Arc::new(m)))
                    .collect();
                let (broadcast, verdict) = processes[p.index()].step(&received);
                if let Some(broadcast) = broadcast {
                    for inbox in &mut inboxes {
                        inbox.push_back((p, broadcast.clone()));
                    }
                }
                if let Control::Decide(v) = verdict {
                    let count = step_counts[p.index()];
                    outputs[p.index()].get_or_insert((v, count));
                }
            }
        }
    }
}

#[test]
fn semi_sync_arc_inboxes_match_the_clone_plane() {
    // Record the Arc-plane schedule (with crash injection), then drive the
    // clone-plane reference through the identical schedule: every output,
    // the crash set, and the step totals must coincide. Finally, replaying
    // the schedule through the Arc plane again must reproduce the run and
    // re-record the identical trace.
    let n = 4;
    let sz = size(n);
    let max_steps = 10_000;
    for seed in 0..12u64 {
        let mut recording = Recording::new(RandomSemiSync::new(seed, 1).crash_prob(0.05));
        let report = SemiSyncSim::new(sz)
            .max_steps(max_steps)
            .run(Gossip::fleet(n, 3), &mut recording)
            .unwrap();
        let trace = recording.trace();

        let mut replay = ScheduleReplay::from_trace(&trace);
        let (ref_outputs, ref_crashed, ref_steps) =
            run_semi_sync_clone_plane(sz, max_steps, Gossip::fleet(n, 3), &mut replay);
        assert_eq!(report.outputs, ref_outputs, "seed {seed}");
        assert_eq!(report.crashed, ref_crashed, "seed {seed}");
        assert_eq!(report.total_steps, ref_steps, "seed {seed}");

        let mut rerecord = Recording::new(ScheduleReplay::from_trace(&trace));
        let again = SemiSyncSim::new(sz)
            .max_steps(max_steps)
            .run(Gossip::fleet(n, 3), &mut rerecord)
            .unwrap();
        assert_eq!(again.outputs, report.outputs, "seed {seed}");
        assert_eq!(rerecord.trace(), trace, "seed {seed}");
    }
}

// ---------------------------------------------------------------------------
// Synchronous network: shared emission table vs per-recipient clones
// ---------------------------------------------------------------------------

/// The seed's synchronous-round loop: every recipient gets its own
/// deep-copied `received` vector, suspicion derived from the `None` holes.
fn run_sync_net_clone_plane<P, F>(
    n: SystemSize,
    max_rounds: u32,
    mut protocols: Vec<P>,
    mut faults: F,
) -> (Vec<Option<P::Output>>, FaultPattern, IdSet, u32)
where
    P: RoundProtocol,
    F: SyncFaults,
{
    let count = n.get();
    assert_eq!(protocols.len(), count);
    let mut outputs: Vec<Option<P::Output>> = (0..count).map(|_| None).collect();
    let mut pattern = FaultPattern::new(n);

    for round_no in 1..=max_rounds {
        let round = Round::new(round_no);
        let crashed = faults.crashed_by(round);
        let silent = faults.crashed_by(Round::new(round_no.saturating_sub(1).max(1)));
        let silent = if round_no == 1 {
            IdSet::empty()
        } else {
            silent
        };

        let messages: Vec<Option<P::Msg>> = protocols
            .iter_mut()
            .enumerate()
            .map(|(i, p)| (!silent.contains(ProcessId::new(i))).then(|| p.emit(round)))
            .collect();
        let drops = faults.drops(round);

        let mut round_faults = RoundFaults::none(n);
        for i in 0..count {
            let me = ProcessId::new(i);
            if crashed.contains(me) && silent.contains(me) {
                round_faults.set(me, silent - IdSet::singleton(me));
                continue;
            }
            // Per-recipient materialization: clone each surviving message.
            let received: Vec<Option<P::Msg>> = messages
                .iter()
                .enumerate()
                .map(|(s, m)| {
                    if drops[s].contains(me) {
                        None
                    } else {
                        m.clone()
                    }
                })
                .collect();
            let suspected: IdSet = received
                .iter()
                .enumerate()
                .filter(|(_, m)| m.is_none())
                .map(|(j, _)| ProcessId::new(j))
                .collect();
            round_faults.set(me, suspected);
            if let Control::Decide(v) =
                protocols[i].deliver(Delivery::new(round, me, &received, suspected))
            {
                outputs[i].get_or_insert(v);
            }
        }
        pattern.push(round_faults);

        if (0..count).all(|i| outputs[i].is_some() || crashed.contains(ProcessId::new(i))) {
            return (outputs, pattern, crashed, round_no);
        }
    }
    panic!("clone-plane reference hit the round limit");
}

/// Floods the minimum heard value; decides at a fixed round. Carries a
/// `Vec` payload so the clone plane actually allocates.
#[derive(Debug, Clone)]
struct VecFlood {
    rounds: u32,
    best: u64,
}

impl RoundProtocol for VecFlood {
    type Msg = Vec<u64>;
    type Output = u64;
    fn emit(&mut self, _round: Round) -> Vec<u64> {
        vec![self.best; 4]
    }
    fn deliver(&mut self, d: Delivery<'_, Vec<u64>>) -> Control<u64> {
        for msg in d.values() {
            for &v in msg {
                self.best = self.best.min(v);
            }
        }
        if d.round.get() >= self.rounds {
            Control::Decide(self.best)
        } else {
            Control::Continue
        }
    }
}

#[test]
fn sync_net_shared_table_matches_the_clone_plane() {
    let n = 5;
    let sz = size(n);
    let fleet = || -> Vec<VecFlood> {
        (0..n)
            .map(|i| VecFlood {
                rounds: 4,
                best: 200 + i as u64,
            })
            .collect()
    };
    for seed in 0..12u64 {
        // Up to two crash-faulty processes over a 4-round horizon.
        let faulty = IdSet::singleton(ProcessId::new(seed as usize % n))
            .union(IdSet::singleton(ProcessId::new((seed as usize + 2) % n)));
        let shared = SyncNetSim::new(sz)
            .run(fleet(), RandomCrash::new(sz, faulty, 4, seed))
            .unwrap();
        let (ref_outputs, ref_pattern, ref_crashed, ref_rounds) =
            run_sync_net_clone_plane(sz, 64, fleet(), RandomCrash::new(sz, faulty, 4, seed));
        assert_eq!(shared.outputs, ref_outputs, "seed {seed}");
        assert_eq!(shared.pattern, ref_pattern, "seed {seed}");
        assert_eq!(shared.crashed, ref_crashed, "seed {seed}");
        assert_eq!(shared.rounds, ref_rounds, "seed {seed}");
    }
}

// ---------------------------------------------------------------------------
// Asynchronous network: Arc channels vs owned channels
// ---------------------------------------------------------------------------

/// Broadcasts its value set on start; merges everything it hears and
/// decides once it has heard a quorum of distinct senders.
#[derive(Debug)]
struct AsyncGather {
    me: ProcessId,
    quorum: usize,
    heard: IdSet,
    seen: BTreeSet<u64>,
}

impl AsyncGather {
    fn fleet(n: usize, quorum: usize) -> Vec<AsyncGather> {
        (0..n)
            .map(|i| AsyncGather {
                me: ProcessId::new(i),
                quorum,
                heard: IdSet::empty(),
                seen: BTreeSet::new(),
            })
            .collect()
    }
}

impl AsyncProcess for AsyncGather {
    type Msg = Vec<u64>;
    type Output = Vec<u64>;
    fn on_start(&mut self, out: &mut Outbox<Vec<u64>>) {
        out.broadcast(vec![self.me.index() as u64 + 5; 3]);
    }
    fn on_message(
        &mut self,
        _now: u64,
        from: ProcessId,
        msg: Vec<u64>,
        _out: &mut Outbox<Vec<u64>>,
    ) -> Control<Vec<u64>> {
        self.heard.insert(from);
        self.seen.extend(msg);
        if self.heard.len() >= self.quorum {
            Control::Decide(self.seen.iter().copied().collect())
        } else {
            Control::Continue
        }
    }
}

/// The seed's asynchronous loop: channels hold owned messages, a broadcast
/// is deep-copied once per recipient at send time.
fn run_async_net_clone_plane<P, S>(
    n: SystemSize,
    mut processes: Vec<P>,
    scheduler: &mut S,
) -> (Vec<Option<P::Output>>, IdSet, u64)
where
    P: AsyncProcess,
    S: NetScheduler,
{
    // Outbox is Arc-backed now, so the clone plane materializes each send
    // at enqueue time: `Arc::try_unwrap` for targeted sends (refcount 1),
    // a deep clone per recipient for broadcasts — the seed's cost shape.
    let count = n.get();
    assert_eq!(processes.len(), count);
    let mut channels: Vec<Vec<VecDeque<P::Msg>>> = (0..count)
        .map(|_| (0..count).map(|_| VecDeque::new()).collect())
        .collect();
    let mut outputs: Vec<Option<P::Output>> = (0..count).map(|_| None).collect();
    let mut crashed = IdSet::empty();
    let mut deliveries = 0u64;

    let flush =
        |out: Outbox<P::Msg>, from: ProcessId, channels: &mut Vec<Vec<VecDeque<P::Msg>>>| {
            for (to, msg) in out.into_sends() {
                let owned = Arc::try_unwrap(msg).unwrap_or_else(|shared| (*shared).clone());
                channels[from.index()][to.index()].push_back(owned);
            }
        };

    for (i, proc_) in processes.iter_mut().enumerate() {
        let mut out = Outbox::new(n);
        proc_.on_start(&mut out);
        flush(out, ProcessId::new(i), &mut channels);
    }

    loop {
        if (0..count).all(|i| outputs[i].is_some() || crashed.contains(ProcessId::new(i))) {
            return (outputs, crashed, deliveries);
        }
        let busy: Vec<(ProcessId, ProcessId)> = (0..count)
            .flat_map(|from| (0..count).map(move |to| (from, to)))
            .filter(|&(from, to)| {
                !channels[from][to].is_empty() && !crashed.contains(ProcessId::new(to))
            })
            .map(|(from, to)| (ProcessId::new(from), ProcessId::new(to)))
            .collect();
        assert!(!busy.is_empty(), "clone-plane reference went quiescent");

        match scheduler.next_event(&busy, deliveries) {
            rrfd::sims::async_net::NetEvent::Crash(p) => {
                crashed.insert(p);
            }
            rrfd::sims::async_net::NetEvent::Deliver { from, to } => {
                if crashed.contains(to) {
                    continue;
                }
                let Some(msg) = channels[from.index()][to.index()].pop_front() else {
                    continue;
                };
                deliveries += 1;
                let mut out = Outbox::new(n);
                let verdict = processes[to.index()].on_message(deliveries, from, msg, &mut out);
                flush(out, to, &mut channels);
                if let Control::Decide(v) = verdict {
                    outputs[to.index()].get_or_insert(v);
                }
            }
        }
    }
}

#[test]
fn async_net_arc_channels_match_the_clone_plane() {
    let n = 5;
    let sz = size(n);
    for seed in 0..12u64 {
        // Quorum n − 1 tolerates the single allowed crash.
        let shared = AsyncNetSim::new(sz)
            .run(
                AsyncGather::fleet(n, n - 1),
                &mut RandomNetScheduler::new(seed, 1).crash_prob(0.01),
            )
            .unwrap();
        let (ref_outputs, ref_crashed, ref_deliveries) = run_async_net_clone_plane(
            sz,
            AsyncGather::fleet(n, n - 1),
            &mut RandomNetScheduler::new(seed, 1).crash_prob(0.01),
        );
        assert_eq!(shared.outputs, ref_outputs, "seed {seed}");
        assert_eq!(shared.crashed, ref_crashed, "seed {seed}");
        assert_eq!(shared.deliveries, ref_deliveries, "seed {seed}");
    }
}
