//! Property tests for the powers-of-4 histogram (`rrfd_obs::hist`),
//! cross-checked against the exact sample-quantile definition every
//! bench binary uses (`rrfd_bench::quantile`).
//!
//! Two contracts:
//!
//! 1. **Bucket boundaries.** Every observation lands in the bucket whose
//!    inclusive upper bound is the smallest `4^k ≥ value`; boundary
//!    values `4^k` and `4^k + 1` fall on opposite sides.
//! 2. **Quantile bracketing.** For any sample, the histogram's
//!    `q`-quantile is exactly the smallest bucket bound at or above the
//!    exact ceiling-nearest-rank quantile of the raw sample — the
//!    tightest upper bound the bucket layout can express — and `None`
//!    precisely when the exact quantile overflows the largest bound.

use proptest::prelude::*;
use rrfd::obs::{Histogram, BUCKET_BOUNDS};
use rrfd_bench::quantile;

/// The smallest finite bucket bound at or above `value`, `None` when the
/// value overflows the layout.
fn tightest_bound(value: u64) -> Option<u64> {
    BUCKET_BOUNDS.iter().copied().find(|&b| value <= b)
}

#[test]
fn boundary_values_split_exactly_at_powers_of_four() {
    for (k, &bound) in BUCKET_BOUNDS.iter().enumerate() {
        // 4^k itself is the last value of bucket k…
        let mut h = Histogram::new();
        h.observe(bound);
        assert_eq!(h.snapshot().buckets, vec![(bound, 1)], "at bound {bound}");
        // …and 4^k + 1 is the first value of bucket k+1 (or overflow).
        let mut h = Histogram::new();
        h.observe(bound + 1);
        let snap = h.snapshot();
        match BUCKET_BOUNDS.get(k + 1) {
            Some(&next) => assert_eq!(snap.buckets, vec![(next, 1)], "past bound {bound}"),
            None => assert!(snap.buckets.is_empty(), "overflow past {bound}"),
        }
        assert_eq!(snap.count, 1);
    }
}

proptest! {
    #[test]
    fn every_observation_lands_in_its_tightest_bucket(value in any::<u64>()) {
        let mut h = Histogram::new();
        h.observe(value);
        let snap = h.snapshot();
        match tightest_bound(value) {
            Some(bound) => prop_assert_eq!(snap.buckets, vec![(bound, 1)]),
            None => prop_assert!(snap.buckets.is_empty(), "overflow bucket is implicit"),
        }
        prop_assert_eq!(snap.count, 1);
        prop_assert_eq!(snap.sum, value);
    }

    #[test]
    fn histogram_quantile_is_the_tightest_bound_on_the_exact_quantile(
        values in prop::collection::vec(0u64..(1u64 << 34), 1..120),
        q_pick in 0usize..=100,
    ) {
        let q = q_pick as f64 / 100.0;
        let mut h = Histogram::new();
        for &v in &values {
            h.observe(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let exact = quantile(&sorted, q);
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        match snap.quantile(q) {
            Some(bound) => {
                // The bound brackets the exact quantile from above…
                prop_assert!(bound >= exact, "bound {bound} < exact {exact}");
                // …and is the tightest bound the layout can express.
                prop_assert_eq!(Some(bound), tightest_bound(exact));
            }
            None => prop_assert!(
                tightest_bound(exact).is_none(),
                "histogram reported overflow but exact quantile {exact} fits"
            ),
        }
    }

    #[test]
    fn quantiles_are_monotone_in_q(
        values in prop::collection::vec(0u64..(1u64 << 31), 1..80),
        lo_pick in 0usize..=100,
        hi_pick in 0usize..=100,
    ) {
        let (lo, hi) = if lo_pick <= hi_pick { (lo_pick, hi_pick) } else { (hi_pick, lo_pick) };
        let mut h = Histogram::new();
        for &v in &values {
            h.observe(v);
        }
        let snap = h.snapshot();
        let q_lo = snap.quantile(lo as f64 / 100.0);
        let q_hi = snap.quantile(hi as f64 / 100.0);
        match (q_lo, q_hi) {
            (Some(a), Some(b)) => prop_assert!(a <= b, "q{lo}={a} > q{hi}={b}"),
            // Once a quantile falls in the overflow bucket, every higher
            // quantile must too.
            (None, Some(b)) => prop_assert!(false, "q{lo} overflowed but q{hi}={b} did not"),
            _ => {}
        }
    }
}
