//! End-to-end tests for the causal tracing plane and the crash flight
//! recorder:
//!
//! * both engine substrates emit the same span hierarchy
//!   (`run → round → phase`) through an attached `Obs`, exportable as
//!   Chrome trace-event JSON;
//! * the no-op handle retains no spans (tracing is opt-in);
//! * a threaded run that ends in a [`RunError`] leaves a post-mortem
//!   flight dump covering the last K rounds — and only the last K;
//! * a pool batch whose instances error mid-batch stashes per-shard
//!   flight dumps in its report.

use rrfd::core::{AnyPattern, Control, Delivery, Engine, Round, RoundProtocol, SystemSize};
use rrfd::models::adversary::NoFailures;
use rrfd::obs::span::to_chrome;
use rrfd::obs::{json, Obs, SpanKind, SpanPhase};
use rrfd::pool::{run_batch, MixSpec, PoolConfig};
use rrfd::protocols::kset::FloodMin;
use rrfd::runtime::{RunError, ThreadedEngine};

fn n(v: usize) -> SystemSize {
    SystemSize::new(v).unwrap()
}

/// A protocol that never decides: forces `RoundLimitExceeded`.
struct Stall;
impl RoundProtocol for Stall {
    type Msg = ();
    type Output = ();
    fn emit(&mut self, _r: Round) {}
    fn deliver(&mut self, _d: Delivery<'_, ()>) -> Control<()> {
        Control::Continue
    }
}

/// Checks the span invariants shared by every substrate: exactly one run
/// span, every round span a child of it, every phase span a child of its
/// round, and the whole set renderable as parseable Chrome trace JSON.
fn assert_span_hierarchy(spans: &[rrfd::obs::SpanRecord], instance: u64) {
    assert!(!spans.is_empty(), "instrumented run retained no spans");
    let runs: Vec<_> = spans.iter().filter(|s| s.kind == SpanKind::Run).collect();
    assert_eq!(runs.len(), 1, "{spans:#?}");
    let run = runs[0];
    assert_eq!(run.instance, instance);
    for span in spans {
        assert_eq!(span.instance, instance);
        assert!(span.end_ns >= span.start_ns);
        match span.kind {
            SpanKind::Run => {}
            SpanKind::Round => assert_eq!(span.parent_id(), run.id()),
            SpanKind::Phase(_) => {
                let round = spans
                    .iter()
                    .find(|r| r.kind == SpanKind::Round && r.round == span.round)
                    .unwrap_or_else(|| panic!("phase span {span:?} has no round"));
                assert_eq!(span.parent_id(), round.id());
            }
        }
    }
    // Every executed round has an emit and a deliver phase.
    let rounds: Vec<u32> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Round)
        .map(|s| s.round)
        .collect();
    for &r in &rounds {
        for phase in [SpanPhase::Emit, SpanPhase::Deliver] {
            assert!(
                spans
                    .iter()
                    .any(|s| s.kind == SpanKind::Phase(phase) && s.round == r),
                "round {r} is missing its {phase:?} phase span"
            );
        }
    }
    // The set renders as loadable Chrome trace JSON.
    let chrome = to_chrome(spans);
    let parsed = json::parse(&chrome).expect("chrome export parses");
    let events = parsed
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    assert_eq!(events.len(), spans.len());
}

#[test]
fn engine_runs_emit_the_span_hierarchy() {
    let size = n(4);
    let obs = Obs::logical();
    Engine::new(size)
        .obs(obs.clone())
        .instance(7)
        .run(
            (0..4).map(|v| FloodMin::new(v, 2)).collect(),
            &mut NoFailures::new(size),
            &AnyPattern::new(size),
        )
        .unwrap();
    assert_span_hierarchy(&obs.spans(), 7);
    // Decide phases carry the deciding process.
    assert!(obs
        .spans()
        .iter()
        .any(|s| s.kind == SpanKind::Phase(SpanPhase::Decide) && s.process.is_some()));
}

#[test]
fn threaded_runs_emit_the_span_hierarchy() {
    let size = n(3);
    let obs = Obs::logical();
    ThreadedEngine::new(size)
        .obs(obs.clone())
        .instance(3)
        .run(
            (0..3).map(|v| FloodMin::new(v, 2)).collect(),
            &mut NoFailures::new(size),
            &AnyPattern::new(size),
        )
        .unwrap();
    assert_span_hierarchy(&obs.spans(), 3);
}

#[test]
fn noop_handle_retains_no_spans() {
    let size = n(3);
    let obs = Obs::noop();
    Engine::new(size)
        .obs(obs.clone())
        .run(
            (0..3).map(|v| FloodMin::new(v, 2)).collect(),
            &mut NoFailures::new(size),
            &AnyPattern::new(size),
        )
        .unwrap();
    assert!(obs.spans().is_empty());
}

#[test]
fn threaded_run_error_leaves_a_flight_dump_of_the_last_k_rounds() {
    let size = n(3);
    let engine = ThreadedEngine::new(size).max_rounds(6).flight_rounds(3);
    let err = engine
        .run(
            vec![Stall, Stall, Stall],
            &mut NoFailures::new(size),
            &AnyPattern::new(size),
        )
        .unwrap_err();
    assert!(matches!(
        err,
        RunError::RoundLimitExceeded { max_rounds: 6 }
    ));

    let dump = engine.take_flight_dump().expect("failed run leaves a dump");
    let mut lines = dump.lines();
    assert_eq!(lines.next(), Some("rrfd-flight v1"));
    assert!(
        dump.contains("no full decision after 6 rounds"),
        "dump must name the terminal error:\n{dump}"
    );
    // Last K = 3 rounds retained: 4, 5, 6 — earlier rounds evicted.
    for r in [4, 5, 6] {
        assert!(
            dump.contains(&format!("round {r}:")),
            "missing round {r}:\n{dump}"
        );
    }
    for r in [1, 2, 3] {
        assert!(
            !dump.contains(&format!("round {r}:")),
            "round {r} should have been evicted:\n{dump}"
        );
    }
    // The dump is consumed by taking it…
    assert!(engine.take_flight_dump().is_none());

    // …and a successful run leaves none.
    let engine = ThreadedEngine::new(size).flight_rounds(3);
    engine
        .run(
            (0..3).map(|v| FloodMin::new(v, 2)).collect(),
            &mut NoFailures::new(size),
            &AnyPattern::new(size),
        )
        .unwrap();
    assert!(engine.take_flight_dump().is_none());
}

#[test]
fn pool_mid_batch_errors_stash_shard_flight_dumps() {
    // The stall class errors every instance; with flight armed each
    // shard must stash a post-mortem capture.
    let mix = MixSpec::parse("stall:n=4:rounds=4:w=1,kset:n=4:k=2:w=1").unwrap();
    let config = PoolConfig::new(2).seed(11).flight(true);
    let report = run_batch(&mix, 30, &config);
    assert!(report.errored > 0, "stall class must error");
    assert!(
        !report.flight_dumps.is_empty(),
        "mid-batch errors left no flight dump"
    );
    for dump in &report.flight_dumps {
        assert!(dump.starts_with("rrfd-flight v1"), "{dump}");
        assert!(dump.contains("errored mid-batch"), "{dump}");
    }

    // Without the flag the pool formats nothing.
    let report = run_batch(&mix, 30, &PoolConfig::new(2).seed(11));
    assert!(report.flight_dumps.is_empty());
}
