//! Determinism properties of the observability layer.
//!
//! Two contracts from the `rrfd-obs` design notes, held by proptest:
//!
//! 1. **Byte-identical snapshots.** Two `Engine::run_traced` runs under
//!    the same seeded adversary, each recording into a fresh logical-clock
//!    `Obs`, must produce byte-identical JSONL and Prometheus exports —
//!    metrics are as replayable as the traces they describe.
//! 2. **The no-op recorder is invisible.** Running with `Obs::noop()`
//!    yields exactly the trace of an uninstrumented engine, records
//!    nothing, and matches the instrumented run's trace too: observation
//!    never perturbs the observed execution.

use proptest::prelude::*;
use rrfd::core::{Engine, SystemSize};
use rrfd::models::adversary::RandomAdversary;
use rrfd::models::predicates::Crash;
use rrfd::obs::{Obs, Snapshot};
use rrfd::protocols::kset::FloodMin;

/// Runs flood-set under a seeded crash adversary, optionally through an
/// observability handle, and returns the run's full trace text (outcome
/// included, so even failing runs compare meaningfully).
fn flood_trace(n: usize, f: usize, seed: u64, obs: Option<Obs>) -> String {
    let size = SystemSize::new(n).unwrap();
    let model = Crash::new(size, f);
    let protos: Vec<_> = (0..n as u64)
        .map(|v| FloodMin::new(1000 + v, f as u32 + 1))
        .collect();
    let mut adv = RandomAdversary::new(model, seed);
    let mut engine = Engine::new(size);
    if let Some(obs) = obs {
        engine = engine.obs(obs);
    }
    let (_, trace) = engine.run_traced(protos, &mut adv, &model);
    trace.to_string()
}

proptest! {
    #[test]
    fn identical_runs_produce_byte_identical_metric_snapshots(
        n in 2usize..7,
        f_pick in 0usize..100,
        seed in any::<u64>(),
    ) {
        let f = f_pick % n;
        let obs_a = Obs::logical();
        let trace_a = flood_trace(n, f, seed, Some(obs_a.clone()));
        let obs_b = Obs::logical();
        let trace_b = flood_trace(n, f, seed, Some(obs_b.clone()));
        prop_assert_eq!(&trace_a, &trace_b);

        let (snap_a, snap_b) = (obs_a.snapshot(), obs_b.snapshot());
        prop_assert_eq!(snap_a.to_jsonl(), snap_b.to_jsonl());
        prop_assert_eq!(snap_a.to_prometheus(), snap_b.to_prometheus());

        // The deterministic export also round-trips losslessly.
        let parsed = Snapshot::from_jsonl(&snap_a.to_jsonl()).unwrap();
        prop_assert_eq!(parsed.to_jsonl(), snap_a.to_jsonl());
    }

    #[test]
    fn noop_recorder_changes_no_observable_output(
        n in 2usize..7,
        f_pick in 0usize..100,
        seed in any::<u64>(),
    ) {
        let f = f_pick % n;
        let noop = Obs::noop();
        let with_noop = flood_trace(n, f, seed, Some(noop.clone()));
        let uninstrumented = flood_trace(n, f, seed, None);
        let instrumented = flood_trace(n, f, seed, Some(Obs::logical()));
        prop_assert_eq!(&with_noop, &uninstrumented);
        prop_assert_eq!(&with_noop, &instrumented);
        prop_assert!(noop.snapshot().entries().is_empty());
    }
}
