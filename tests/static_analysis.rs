//! End-to-end tests for the syntax-aware static-analysis framework:
//!
//! * the seeded fixture tree under `tests/fixtures/static_analysis/`
//!   fires all eight passes (and the unfenced fixture crate fires none
//!   of the fence-gated ones);
//! * the five lexer-ported lints reproduce the frozen line-oriented
//!   scanner (`rrfd_analyze::legacy`) finding-for-finding on that tree;
//! * span fingerprints survive unrelated line insertions and expire
//!   when the flagged code changes;
//! * the allowlist lifecycle: malformed entries are parse errors, stale
//!   entries are ratchet notices, and notices fail under `--strict`;
//! * the real workspace plus `lint.allow` is clean under `--strict`.

use rrfd_analyze::legacy;
use rrfd_analyze::lint::{self, AllowSpec, Allowance};
use rrfd_analyze::passes::{self, Finding};
use rrfd_analyze::syntax::SourceFile;
use rrfd_analyze::workspace::{self, Fence};
use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn fixture_root() -> PathBuf {
    repo_root().join("tests/fixtures/static_analysis")
}

fn scan_fixtures() -> Vec<Finding> {
    lint::scan_root(&fixture_root()).expect("fixture tree scans")
}

const ALL_PASSES: &[&str] = &[
    "panic-family",
    "wall-clock",
    "obs",
    "direct-index",
    "msg-clone",
    "round-closure",
    "span-guard",
    "lock-order",
];

#[test]
fn fixture_tree_fires_every_pass() {
    let findings = scan_fixtures();
    for pass in ALL_PASSES {
        assert!(
            findings.iter().any(|f| f.pass == *pass),
            "pass {pass} fired nothing on the seeded fixtures:\n{findings:#?}"
        );
    }
}

#[test]
fn unfenced_fixture_crate_is_silent() {
    // fixture-plain contains HashMap, Instant::now and msg.clone() —
    // the same constructs flagged in the fenced fixtures — but carries
    // no fences, so nothing may fire there.
    let findings = scan_fixtures();
    let plain: Vec<_> = findings
        .iter()
        .filter(|f| f.path.contains("fixture-plain"))
        .collect();
    assert!(plain.is_empty(), "unfenced crate was flagged: {plain:#?}");
}

#[test]
fn lock_order_reports_the_seeded_cycle() {
    let findings = scan_fixtures();
    let cycles: Vec<_> = findings.iter().filter(|f| f.pass == "lock-order").collect();
    assert_eq!(cycles.len(), 1, "{cycles:#?}");
    assert!(cycles[0].message.contains("alpha"), "{}", cycles[0].message);
    assert!(cycles[0].message.contains("beta"), "{}", cycles[0].message);
}

/// The legacy crate-name fences, mapped onto the fixture crates so the
/// frozen scanner applies the same rules the framework derives from
/// `Cargo.toml` metadata.
fn legacy_alias(crate_name: &str) -> &'static str {
    match crate_name {
        "fixture-protocols" => "rrfd-protocols", // deterministic
        "fixture-runtime" => "rrfd-runtime",     // instrumented + message-plane
        _ => "fixture-plain",                    // unfenced either way
    }
}

#[test]
fn ported_lints_reproduce_the_legacy_scanner_on_the_fixture_tree() {
    let root = fixture_root();
    let crates = workspace::discover(&root).expect("fixture crates discover");
    let files = workspace::load_files(&root, &crates).expect("fixture files load");

    let legacy_pass_names = [
        "panic-family",
        "wall-clock",
        "obs",
        "direct-index",
        "msg-clone",
    ];
    let mut framework: Vec<(String, String, usize)> = passes::run_all(&files)
        .into_iter()
        .filter(|f| legacy_pass_names.contains(&f.pass))
        .map(|f| (f.pass.to_owned(), f.path, f.line))
        .collect();
    framework.sort();

    let mut legacy_findings = Vec::new();
    for info in &crates {
        let src_dir = info.dir.join("src");
        for entry in std::fs::read_dir(&src_dir).expect("src dir") {
            let path = entry.expect("dir entry").path();
            if path.extension().is_some_and(|e| e == "rs") {
                let text = std::fs::read_to_string(&path).expect("fixture source");
                let rel = workspace::relative_display(&root, &path);
                legacy::scan_file(legacy_alias(&info.name), &rel, &text, &mut legacy_findings);
            }
        }
    }
    let mut golden: Vec<(String, String, usize)> = legacy_findings
        .into_iter()
        .map(|f| (f.kind.name().to_owned(), f.path, f.line))
        .collect();
    golden.sort();
    golden.dedup(); // the framework counts one finding per (pass, line)

    assert_eq!(
        framework, golden,
        "lexer-ported lints diverged from the frozen scanner"
    );
}

#[test]
fn ported_lints_match_legacy_on_tricky_token_shapes() {
    // Comments, strings, and a cfg(test) module: the constructs the
    // line heuristics handled correctly must keep producing identical
    // findings from the lexer.
    let src = "\
// msg.clone() in a comment\n\
/* received[0] inside\n   a block comment */\n\
const DOC: &str = \"panic! is fine in a string\";\n\
fn lib(messages: &[u8]) {\n\
    let a = value.unwrap();\n\
    let b = messages[0].clone();\n\
}\n\
#[cfg(test)]\n\
mod tests {\n\
    fn t() { x.unwrap(); }\n\
}\n";
    let file = SourceFile::parse(
        "rrfd-sims",
        "crates/rrfd-sims/src/frozen.rs",
        &[Fence::Deterministic, Fence::MessagePlane],
        src.to_owned(),
    );
    let mut framework: Vec<(String, usize)> = passes::run_all(&[file])
        .into_iter()
        .map(|f| (f.pass.to_owned(), f.line))
        .collect();
    framework.sort();

    let mut legacy_findings = Vec::new();
    legacy::scan_file(
        "rrfd-sims",
        "crates/rrfd-sims/src/frozen.rs",
        src,
        &mut legacy_findings,
    );
    let mut golden: Vec<(String, usize)> = legacy_findings
        .into_iter()
        .map(|f| (f.kind.name().to_owned(), f.line))
        .collect();
    golden.sort();
    golden.dedup();

    assert_eq!(framework, golden);
    assert_eq!(framework.len(), 2, "{framework:?}"); // unwrap + table clone
}

fn single_finding(src: &str) -> Finding {
    let file = SourceFile::parse("fixture", "crates/fixture/src/lib.rs", &[], src.to_owned());
    let mut findings = passes::run_all(&[file]);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    findings.remove(0)
}

#[test]
fn fingerprints_survive_unrelated_insertions_and_expire_on_change() {
    let before = single_finding("fn f() {\n    value.unwrap();\n}\n");
    // Insert unrelated lines above: the span moves, the fingerprint
    // must not.
    let shifted = single_finding("//! docs\n\nfn other() {}\n\nfn f() {\n    value.unwrap();\n}\n");
    assert_ne!(before.line, shifted.line);
    assert_eq!(before.fingerprint, shifted.fingerprint);
    // Change the flagged line itself: the fingerprint expires.
    let changed = single_finding("fn f() {\n    other_value.unwrap();\n}\n");
    assert_ne!(before.fingerprint, changed.fingerprint);
}

#[test]
fn malformed_allowlists_are_parse_errors() {
    // Unknown pass name.
    let err = lint::parse_allowlist("no-such-pass crates/x/src/a.rs 1\n").unwrap_err();
    assert_eq!(err.line, 1);
    // Bad fingerprint (wrong length).
    assert!(lint::parse_allowlist("panic-family crates/x/src/a.rs fp:abc\n").is_err());
    // Missing column.
    assert!(lint::parse_allowlist("panic-family crates/x/src/a.rs\n").is_err());
    // Trailing junk.
    let err = lint::parse_allowlist("# fine\npanic-family a.rs 1 extra\n").unwrap_err();
    assert_eq!(err.line, 2);
    // Comments and blanks are fine.
    assert!(lint::parse_allowlist("# only comments\n\n")
        .unwrap()
        .is_empty());
}

#[test]
fn stale_allowlist_entries_are_notices_and_fail_strict() {
    let finding = single_finding("fn f() {\n    value.unwrap();\n}\n");
    let pinned = Allowance {
        pass: "panic-family".to_owned(),
        path: finding.path.clone(),
        spec: AllowSpec::Fingerprint(finding.fingerprint.clone()),
    };
    let stale = Allowance {
        pass: "msg-clone".to_owned(),
        path: "crates/gone/src/lib.rs".to_owned(),
        spec: AllowSpec::Budget(2),
    };

    // Pin alone: clean even under strict.
    let report = lint::reconcile(
        std::slice::from_ref(&finding),
        std::slice::from_ref(&pinned),
    );
    assert!(report.is_clean(true), "{report:#?}");

    // Pin plus a stale budget: clean lax, dirty strict.
    let report = lint::reconcile(std::slice::from_ref(&finding), &[pinned, stale]);
    assert!(report.violations.is_empty(), "{report:#?}");
    assert_eq!(report.notices.len(), 1, "{report:#?}");
    assert!(report.is_clean(false));
    assert!(!report.is_clean(true));

    // No allowlist at all: the finding is a violation.
    let report = lint::reconcile(std::slice::from_ref(&finding), &[]);
    assert_eq!(report.violations.len(), 1, "{report:#?}");
}

#[test]
fn real_workspace_is_clean_under_strict() {
    let root = repo_root();
    let findings = lint::scan_root(&root).expect("workspace scans");
    let allow_text = std::fs::read_to_string(root.join("lint.allow")).expect("lint.allow");
    let allowances = lint::parse_allowlist(&allow_text).expect("lint.allow parses");
    let report = lint::reconcile(&findings, &allowances);
    assert!(
        report.is_clean(true),
        "workspace lint drifted:\nviolations: {:#?}\nnotices: {:#?}",
        report.violations,
        report.notices
    );
}
