//! Seeded violations for the fenced passes: round-closure (all three
//! rule families), wall-clock, panic-family and direct-index. Each
//! marked line must produce exactly one finding; the integration tests
//! and the CI `--expect-findings` step pin that.

use std::cell::RefCell; // round-closure: interior mutability
use std::collections::HashMap; // round-closure: hash-order nondeterminism
use std::time::Instant;

/// round-closure: a `Delivery` stored in protocol state escapes its
/// round method.
struct StashingProtocol<'a, M> {
    stash: Option<Delivery<'a, M>>, // round-closure: delivery escape
    table: &'a [Option<M>],         // round-closure: emission-table escape
    order: HashMap<u64, u32>,       // round-closure: hash-order
    scratch: RefCell<Vec<u32>>,     // round-closure: interior mutability
}

static mut ROUND_COUNTER: u64 = 0; // round-closure: global mutable state

impl<'a, M: Clone> StashingProtocol<'a, M> {
    fn deliver(&mut self, delivery: Delivery<'a, M>) -> u32 {
        let started = Instant::now(); // wall-clock: deterministic crate
        let callback = Box::new(move || delivery.round()); // round-closure: move capture
        let first = self.received[0].unwrap(); // direct-index + panic-family
        let _ = (started, callback, first);
        0
    }
}
