//! The same constructs the fenced fixtures are flagged for, in a crate
//! with no fences: none of the fence-gated passes may fire here. The
//! integration tests assert this file yields zero findings.

use std::collections::HashMap; // no `deterministic` fence: not flagged
use std::time::Instant;

struct Unfenced {
    order: HashMap<u64, u32>,
}

impl Unfenced {
    fn tick(&self) -> Instant {
        Instant::now() // no `deterministic`/`instrumented` fence: not flagged
    }

    fn drain<M: Clone>(&self, messages: &[Option<M>], out: &mut Vec<M>) {
        for msg in messages.iter().flatten() {
            out.push(msg.clone()); // no `message-plane` fence: not flagged
        }
    }
}
