//! Seeded violations for the instrumented/message-plane passes: a
//! two-lock ordering cycle (lock-order), a Clock-bypassing time read
//! (obs), payload clones in a delivery loop (msg-clone), and round-span
//! guards stored across rounds / dropped without close (span-guard).

use std::sync::Mutex;
use std::time::Instant;

struct Pool<M> {
    alpha: Mutex<Vec<M>>,
    beta: Mutex<Vec<M>>,
}

impl<M: Clone> Pool<M> {
    /// Acquires alpha before beta…
    fn forward(&self) {
        let a = self.alpha.lock();
        let started = Instant::now(); // obs: Clock-bypassing time read
        let b = self.beta.lock();
        let _ = (a, b, started);
    }

    /// …while this path acquires beta before alpha: lock-order cycle.
    fn backward(&self) {
        let b = self.beta.lock();
        let a = self.alpha.lock();
        let _ = (a, b);
    }

    fn drain(&self, messages: &[Option<M>], out: &mut Vec<M>) {
        for msg in messages.iter().flatten() {
            out.push(msg.clone()); // msg-clone: payload deep copy
        }
        let copied = messages[0].clone(); // msg-clone: emission-table clone
        let _ = copied;
    }
}

struct Stopwatch {
    open: RoundSpan, // span-guard: a guard held across round boundaries
}

impl Stopwatch {
    fn leak(&mut self, obs: &Obs) {
        // span-guard: round_enter with no round_exit/close_span in this fn.
        self.open = obs.round_enter(Labels::round(1));
    }
}
