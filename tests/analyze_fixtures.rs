//! The CI fixtures under `tests/fixtures/` exercised end to end: the race
//! checker must flag the seeded defects and pass the clean captures, and
//! the covering-violation fixture must replay under [`ReplayDetector`].
//!
//! `events_clean.txt` is a genuine capture from an instrumented threaded
//! run; regenerate it after changing the instrumentation with
//! `REGEN_FIXTURES=1 cargo test --test analyze_fixtures`.

use rrfd_analyze::races::{self, FindingKind};
use rrfd_core::{
    AnyPattern, Control, Delivery, Engine, EngineError, Round, RoundProtocol, RunTrace, SystemSize,
};
use rrfd_models::adversary::{NoFailures, ReplayDetector};
use rrfd_runtime::{EventSink, ThreadedEngine};
use std::path::PathBuf;

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// A protocol that never decides: enough to re-drive recorded adversary
/// moves through the engine.
struct Idle;
impl RoundProtocol for Idle {
    type Msg = ();
    type Output = ();
    fn emit(&mut self, _r: Round) {}
    fn deliver(&mut self, _d: Delivery<'_, ()>) -> Control<()> {
        Control::Continue
    }
}

#[test]
fn covering_violation_fixture_is_flagged_and_replays() {
    let text = fixture("trace_covering_violation.txt");
    let findings = races::analyze_text(&text).unwrap();
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].kind, FindingKind::CoveringViolation);
    assert!(findings[0].detail.contains("p0"), "{}", findings[0].detail);

    // The fixture is a complete RunTrace: the recorded adversary moves
    // re-drive through the engine via a replay detector. The run is legal
    // (the defect is in what the runtime *delivered*, not in the fault
    // pattern), so the replay simply exhausts the recorded round.
    let trace: RunTrace = text.parse().unwrap();
    let n = trace.system_size();
    let mut replay = ReplayDetector::from_trace(&trace);
    let err = Engine::new(n)
        .max_rounds(trace.rounds().len() as u32)
        .run(vec![Idle, Idle, Idle], &mut replay, &AnyPattern::new(n))
        .unwrap_err();
    assert!(
        matches!(err, EngineError::RoundLimitExceeded { .. }),
        "{err}"
    );
}

#[test]
fn clean_trace_fixture_passes() {
    let findings = races::analyze_text(&fixture("trace_clean.txt")).unwrap();
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn racy_events_fixture_is_flagged() {
    let findings = races::analyze_text(&fixture("events_racy.txt")).unwrap();
    assert!(
        findings.iter().any(|f| f.kind == FindingKind::DataRace),
        "{findings:?}"
    );
}

/// A two-round broadcast: decide after the second delivery.
struct TwoRounds;
impl RoundProtocol for TwoRounds {
    type Msg = u8;
    type Output = u8;
    fn emit(&mut self, _r: Round) -> u8 {
        1
    }
    fn deliver(&mut self, d: Delivery<'_, u8>) -> Control<u8> {
        if d.round.get() >= 2 {
            Control::Decide(0)
        } else {
            Control::Continue
        }
    }
}

fn capture_clean_events() -> String {
    let n = SystemSize::new(3).unwrap();
    let sink = EventSink::new(n);
    ThreadedEngine::new(n)
        .event_sink(sink.clone())
        .run(
            vec![TwoRounds, TwoRounds, TwoRounds],
            &mut NoFailures::new(n),
            &AnyPattern::new(n),
        )
        .unwrap();
    sink.snapshot().to_string()
}

#[test]
fn stats_goldens_are_current() {
    // The CI `obs` job runs `rrfd-analyze stats --check` against these
    // goldens; this test catches drift locally first. Regenerate with
    // `REGEN_FIXTURES=1 cargo test --test analyze_fixtures`.
    for (capture, golden) in [
        ("trace_clean.txt", "stats_trace_clean.golden"),
        ("events_clean.txt", "stats_events_clean.golden"),
    ] {
        let rendered = rrfd_analyze::stats::render(&fixture(capture)).unwrap();
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("tests/fixtures")
            .join(golden);
        if std::env::var_os("REGEN_FIXTURES").is_some() {
            std::fs::write(&path, &rendered).unwrap();
        }
        assert_eq!(
            rendered,
            fixture(golden),
            "{golden} is stale — regenerate with REGEN_FIXTURES=1"
        );
    }
}

#[test]
fn chrome_trace_golden_is_current() {
    // `rrfd-analyze stats --trace-out` synthesizes a Chrome trace-event
    // JSON file from a trace capture's causal structure; the CI
    // `obs-trace` job loads this golden. Regenerate with
    // `REGEN_FIXTURES=1 cargo test --test analyze_fixtures`.
    let chrome = rrfd_analyze::stats::chrome_trace_text(&fixture("trace_clean.txt")).unwrap();
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/chrome_trace_clean.golden.json");
    if std::env::var_os("REGEN_FIXTURES").is_some() {
        std::fs::write(&path, &chrome).unwrap();
    }
    assert_eq!(
        chrome,
        fixture("chrome_trace_clean.golden.json"),
        "chrome_trace_clean.golden.json is stale — regenerate with REGEN_FIXTURES=1"
    );
    // Sanity: the golden is well-formed Chrome trace JSON with the
    // run-level span first after canonical ordering.
    let parsed = rrfd_obs::json::parse(&chrome).expect("golden parses as JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    assert_eq!(events[0].get("name").and_then(|n| n.as_str()), Some("run"));
}

#[test]
fn clean_events_fixture_passes_and_matches_real_instrumentation() {
    if std::env::var_os("REGEN_FIXTURES").is_some() {
        let path =
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/events_clean.txt");
        std::fs::write(&path, capture_clean_events()).unwrap();
    }
    let findings = races::analyze_text(&fixture("events_clean.txt")).unwrap();
    assert!(findings.is_empty(), "{findings:?}");

    // And a freshly captured run is clean too — event order differs run to
    // run (that is the point of the vector clocks), but the analysis must
    // not depend on it.
    let fresh = races::analyze_text(&capture_clean_events()).unwrap();
    assert!(fresh.is_empty(), "{fresh:?}");
}
