//! Property-based tests (proptest) over the core data structures,
//! predicates, and protocols.

use proptest::prelude::*;
use rrfd::core::task::{AdoptCommitSpec, Grade, KSetAgreement, Value};
use rrfd::core::{FaultPattern, IdSet, ProcessId, RoundFaults, RrfdPredicate, SystemSize};

fn pid_set(n: usize) -> impl Strategy<Value = IdSet> {
    prop::collection::btree_set(0..n, 0..=n)
        .prop_map(|s| s.into_iter().map(ProcessId::new).collect())
}

/// A strategy for one round's worth of suspicion sets over `n` processes,
/// with every `D(i,r) ≠ S` (well-formed).
fn round_faults(n: usize) -> impl Strategy<Value = RoundFaults> {
    prop::collection::vec(pid_set(n), n).prop_map(move |mut sets| {
        let size = SystemSize::new(n).unwrap();
        let universe = IdSet::universe(size);
        for (i, d) in sets.iter_mut().enumerate() {
            if *d == universe {
                d.remove(ProcessId::new(i));
            }
        }
        RoundFaults::from_sets(size, sets)
    })
}

proptest! {
    // ---------- IdSet algebra ----------

    #[test]
    fn idset_union_is_commutative_and_associative(
        a in pid_set(16), b in pid_set(16), c in pid_set(16)
    ) {
        prop_assert_eq!(a | b, b | a);
        prop_assert_eq!((a | b) | c, a | (b | c));
    }

    #[test]
    fn idset_de_morgan(a in pid_set(16), b in pid_set(16)) {
        let n = SystemSize::new(16).unwrap();
        prop_assert_eq!(
            (a | b).complement(n),
            a.complement(n) & b.complement(n)
        );
        prop_assert_eq!(
            (a & b).complement(n),
            a.complement(n) | b.complement(n)
        );
    }

    #[test]
    fn idset_difference_laws(a in pid_set(16), b in pid_set(16)) {
        prop_assert!((a - b).is_disjoint(b));
        prop_assert_eq!((a - b) | (a & b), a);
        prop_assert_eq!(a - b, {
            let n = SystemSize::new(16).unwrap();
            a & b.complement(n)
        });
    }

    #[test]
    fn idset_len_inclusion_exclusion(a in pid_set(16), b in pid_set(16)) {
        prop_assert_eq!(
            (a | b).len() + (a & b).len(),
            a.len() + b.len()
        );
    }

    #[test]
    fn idset_iteration_is_sorted_and_faithful(a in pid_set(32)) {
        let xs: Vec<usize> = a.iter().map(ProcessId::index).collect();
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(&xs, &sorted);
        prop_assert_eq!(xs.len(), a.len());
        let back: IdSet = xs.into_iter().map(ProcessId::new).collect();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn idset_min_max_bracket_members(a in pid_set(32)) {
        if let (Some(lo), Some(hi)) = (a.min(), a.max()) {
            prop_assert!(a.contains(lo));
            prop_assert!(a.contains(hi));
            for p in a.iter() {
                prop_assert!(lo <= p && p <= hi);
            }
        } else {
            prop_assert!(a.is_empty());
        }
    }

    // ---------- RoundFaults / FaultPattern ----------

    #[test]
    fn uncertainty_is_union_minus_intersection(rf in round_faults(8)) {
        prop_assert_eq!(rf.uncertainty(), rf.union() - rf.intersection());
        prop_assert!(rf.intersection().is_subset(rf.union()));
    }

    #[test]
    fn cumulative_union_is_monotone(rounds in prop::collection::vec(round_faults(6), 1..6)) {
        let n = SystemSize::new(6).unwrap();
        let mut pattern = FaultPattern::new(n);
        let mut prev = IdSet::empty();
        for rf in rounds {
            pattern.push(rf);
            let cu = pattern.cumulative_union();
            prop_assert!(prev.is_subset(cu));
            prev = cu;
        }
    }

    // ---------- Predicate structure ----------

    #[test]
    fn k_uncertainty_is_monotone_in_k(rf in round_faults(8), k in 1usize..7) {
        use rrfd::models::predicates::KUncertainty;
        let n = SystemSize::new(8).unwrap();
        let h = FaultPattern::new(n);
        let tight = KUncertainty::new(n, k);
        let loose = KUncertainty::new(n, k + 1);
        if tight.admits(&h, &rf) {
            prop_assert!(loose.admits(&h, &rf));
        }
    }

    #[test]
    fn async_resilience_is_monotone_in_f(rf in round_faults(8), f in 0usize..6) {
        use rrfd::models::predicates::AsyncResilient;
        let n = SystemSize::new(8).unwrap();
        let h = FaultPattern::new(n);
        let tight = AsyncResilient::new(n, f);
        let loose = AsyncResilient::new(n, f + 1);
        if tight.admits(&h, &rf) {
            prop_assert!(loose.admits(&h, &rf));
        }
    }

    #[test]
    fn identical_views_implies_every_k_uncertainty(shared in pid_set(8), k in 1usize..7) {
        use rrfd::models::predicates::{IdenticalViews, KUncertainty};
        let n = SystemSize::new(8).unwrap();
        let mut shared = shared;
        if shared == IdSet::universe(n) {
            shared.remove(ProcessId::new(0));
        }
        let rf = RoundFaults::from_sets(n, vec![shared; 8]);
        let h = FaultPattern::new(n);
        prop_assert!(IdenticalViews::new(n).admits(&h, &rf));
        prop_assert!(KUncertainty::new(n, k).admits(&h, &rf));
    }

    #[test]
    fn snapshot_rounds_satisfy_swmr(seed in any::<u64>()) {
        use rrfd::models::adversary::{RandomAdversary, SampleModel};
        use rrfd::models::predicates::{Snapshot, Swmr};
        let n = SystemSize::new(7).unwrap();
        let model = Snapshot::new(n, 3);
        let _ = RandomAdversary::new(model.clone(), seed);
        let mut rng = {
            use rand::SeedableRng;
            rand::rngs::StdRng::seed_from_u64(seed)
        };
        let h = FaultPattern::new(n);
        let rf = model.sample_round(&mut rng, &h);
        prop_assert!(Swmr::new(n, 3).admits(&h, &rf));
    }

    // ---------- Task specifications ----------

    #[test]
    fn kset_check_accepts_subsets_of_k_values(
        k in 1usize..5,
        choices in prop::collection::vec(0usize..4, 1..8)
    ) {
        // Decisions drawn from the first min(k, 4) inputs always pass.
        let inputs: Vec<Value> = (0..4).collect();
        let task = KSetAgreement::new(k);
        let bound = k.min(4);
        let outs: Vec<Option<Value>> = choices
            .iter()
            .map(|&c| Some(inputs[c % bound]))
            .collect();
        prop_assert!(task.check(&inputs, &outs).is_ok());
    }

    #[test]
    fn kset_check_rejects_nonvalues(v in 100u64..200) {
        let inputs = [1u64, 2, 3];
        let task = KSetAgreement::new(3);
        prop_assert!(task.check(&inputs, &[Some(v)]).is_err());
    }

    // ---------- Adopt-commit under arbitrary inputs ----------

    #[test]
    fn adopt_commit_spec_holds_for_arbitrary_inputs(
        inputs in prop::collection::vec(0u64..5, 5),
        seed in any::<u64>()
    ) {
        use rrfd::protocols::adopt_commit::run_adopt_commit;
        use rrfd::sims::shared_mem::RandomScheduler;
        let n = SystemSize::new(5).unwrap();
        let mut sched = RandomScheduler::new(seed, 0);
        let outs = run_adopt_commit(n, &inputs, &mut sched).unwrap();
        prop_assert!(AdoptCommitSpec.check(&inputs, &outs).is_ok());
    }

    #[test]
    fn adopt_commit_commit_only_when_truly_unanimous_view(
        inputs in prop::collection::vec(0u64..3, 4),
        seed in any::<u64>()
    ) {
        use rrfd::protocols::adopt_commit::run_adopt_commit;
        use rrfd::sims::shared_mem::RandomScheduler;
        let n = SystemSize::new(4).unwrap();
        let mut sched = RandomScheduler::new(seed, 0);
        let outs = run_adopt_commit(n, &inputs, &mut sched).unwrap();
        // If two different inputs both got committed the spec is broken;
        // also: any commit of v means v is an input.
        let committed: Vec<Value> = outs
            .iter()
            .flatten()
            .filter(|(g, _)| *g == Grade::Commit)
            .map(|&(_, v)| v)
            .collect();
        for w in committed.windows(2) {
            prop_assert_eq!(w[0], w[1]);
        }
        for v in committed {
            prop_assert!(inputs.contains(&v));
        }
    }

    // ---------- One-round k-set agreement ----------

    #[test]
    fn one_round_kset_under_random_legal_detectors(
        seed in any::<u64>(),
        k in 1usize..4
    ) {
        use rrfd::models::adversary::RandomAdversary;
        use rrfd::models::predicates::KUncertainty;
        use rrfd::protocols::kset::one_round_kset;
        let n = SystemSize::new(6).unwrap();
        let inputs: Vec<Value> = (0..6).map(|i| 50 + i).collect();
        let mut adv = RandomAdversary::new(KUncertainty::new(n, k), seed);
        let decisions = one_round_kset(n, k, &inputs, &mut adv).unwrap();
        let outs: Vec<Option<Value>> = decisions.iter().map(|&d| Some(d)).collect();
        prop_assert!(KSetAgreement::new(k).check_terminating(&inputs, &outs).is_ok());
    }

    // ---------- Knowledge gossip ----------

    #[test]
    fn gossip_knowledge_is_monotone(
        rounds in prop::collection::vec(prop::collection::vec(pid_set(6), 6), 1..5)
    ) {
        use rrfd::core::KnowledgeMatrix;
        let n = SystemSize::new(6).unwrap();
        let mut matrix = KnowledgeMatrix::reflexive(n);
        let mut before: Vec<IdSet> = n.processes().map(|p| matrix.knows(p)).collect();
        for susp in rounds {
            matrix.gossip_round(&susp);
            for p in n.processes() {
                prop_assert!(before[p.index()].is_subset(matrix.knows(p)));
                before[p.index()] = matrix.knows(p);
            }
        }
    }
}
