//! Property tests for the capture → replay subsystem: a trace recorded
//! from a random adversary re-drives the *same* run — decisions, decision
//! rounds, and fault pattern — on both execution substrates (the
//! in-process `Engine` and the threaded runtime), and survives a
//! serialize → parse round trip unchanged.

use proptest::prelude::*;
use rrfd::core::{Control, Delivery, Engine, Round, RoundProtocol, RunTrace, TraceOutcome};
use rrfd::core::{ProcessId, SystemSize};
use rrfd::models::adversary::{RandomAdversary, ReplayDetector};
use rrfd::models::predicates::KUncertainty;
use rrfd::runtime::ThreadedEngine;

/// Sums everything heard; decides after a fixed number of rounds. The
/// output depends on every delivery, so two runs agree on outputs only if
/// they agree on the whole `D(i,r)` history.
#[derive(Clone)]
struct SumUntil {
    rounds: u32,
    acc: u64,
    me: u64,
}

impl RoundProtocol for SumUntil {
    type Msg = u64;
    type Output = u64;
    fn emit(&mut self, _r: Round) -> u64 {
        self.me
    }
    fn deliver(&mut self, d: Delivery<'_, u64>) -> Control<u64> {
        self.acc += d.values().sum::<u64>();
        if d.round.get() >= self.rounds {
            Control::Decide(self.acc)
        } else {
            Control::Continue
        }
    }
}

fn protocols(n: usize, rounds: u32) -> Vec<SumUntil> {
    (0..n)
        .map(|i| SumUntil {
            rounds,
            acc: 0,
            me: i as u64 + 1,
        })
        .collect()
}

proptest! {
    #[test]
    fn captured_traces_replay_identically_on_both_substrates(
        n in 3usize..8,
        k in 1usize..3,
        seed in any::<u64>(),
        rounds in 1u32..5,
    ) {
        let size = SystemSize::new(n).unwrap();
        let model = KUncertainty::new(size, k);

        // Capture: a random legal adversary drives the in-process engine.
        let (original, trace) = Engine::new(size).run_traced(
            protocols(n, rounds),
            &mut RandomAdversary::new(model, seed),
            &model,
        );
        let original = original.expect("decide-after protocols terminate");
        prop_assert_eq!(
            trace.outcome(),
            &TraceOutcome::Decided { rounds_executed: original.rounds_executed }
        );

        // The trace is self-consistent with the report.
        prop_assert_eq!(trace.pattern(), original.pattern.clone());
        for (i, d) in original.decisions.iter().enumerate() {
            prop_assert_eq!(
                trace.decision_rounds()[i],
                d.as_ref().map(|(_, r)| *r)
            );
        }

        // Replay on the in-process engine: bit-for-bit identical.
        let (replayed, retrace) = Engine::new(size).run_traced(
            protocols(n, rounds),
            &mut ReplayDetector::from_trace(&trace),
            &model,
        );
        let replayed = replayed.expect("replay terminates like the original");
        prop_assert_eq!(&retrace, &trace);
        prop_assert_eq!(replayed.decisions.clone(), original.decisions.clone());
        prop_assert_eq!(replayed.pattern.clone(), original.pattern.clone());
        prop_assert_eq!(replayed.rounds_executed, original.rounds_executed);

        // Replay on the threaded runtime: same FaultPattern, outputs, and
        // decision rounds across substrates.
        let (threaded, threaded_trace) = ThreadedEngine::new(size).run_traced(
            protocols(n, rounds),
            &mut ReplayDetector::from_trace(&trace),
            &model,
        );
        let threaded = threaded.expect("threaded replay terminates");
        prop_assert_eq!(&threaded_trace, &trace);
        prop_assert_eq!(threaded.decisions.clone(), original.decisions.clone());
        prop_assert_eq!(threaded.pattern.clone(), original.pattern.clone());
        prop_assert_eq!(threaded.rounds_executed, original.rounds_executed);

        // Serialize → parse → identical trace.
        let text = trace.to_string();
        let reparsed: RunTrace = text.parse().expect("trace text parses back");
        prop_assert_eq!(&reparsed, &trace);
    }

    #[test]
    fn heard_sets_respect_the_covering_property(
        n in 2usize..8,
        k in 1usize..3,
        seed in any::<u64>(),
    ) {
        // S(i,r) ∪ D(i,r) = S for every process and round: what a process
        // heard is exactly the complement of what it was told to suspect.
        let size = SystemSize::new(n).unwrap();
        let model = KUncertainty::new(size, k.min(n - 1).max(1));
        let (_, trace) = Engine::new(size).run_traced(
            protocols(n, 3),
            &mut RandomAdversary::new(model, seed),
            &model,
        );
        for round in trace.rounds() {
            for i in 0..n {
                let me = ProcessId::new(i);
                let heard = round.heard[i];
                let suspected = round.faults.of(me);
                prop_assert_eq!(
                    heard | suspected,
                    rrfd::core::IdSet::universe(size)
                );
                prop_assert!(heard.is_disjoint(suspected));
            }
        }
    }
}
