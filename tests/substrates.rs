//! Integration sweeps over the supporting substrates: immediate snapshots
//! (the iterated model of [4]), the ABD register emulation ([22]), and
//! detector-S consensus — the machinery the paper's §2 relies on.

use rrfd::core::task::{KSetAgreement, Value};
use rrfd::core::{Engine, IdSet, ProcessId, RrfdPredicate, SystemSize};
use rrfd::models::adversary::RandomAdversary;
use rrfd::models::predicates::{DetectorS, Snapshot};
use rrfd::protocols::abd::{check_clients, AbdClient, Op};
use rrfd::protocols::immediate_snapshot::{
    views_to_round, ImmediateSnapshot, IsDriver, IteratedIS,
};
use rrfd::protocols::s_consensus::SRotatingConsensus;
use rrfd::sims::async_net::{AsyncNetSim, RandomNetScheduler};
use rrfd::sims::shared_mem::{RandomScheduler, SharedMemSim};

fn n(v: usize) -> SystemSize {
    SystemSize::new(v).unwrap()
}

#[test]
fn immediate_snapshot_properties_sweep() {
    for nv in [2usize, 3, 5, 8, 12] {
        let size = n(nv);
        for seed in 0..15u64 {
            let procs: Vec<_> = size
                .processes()
                .map(|p| IsDriver::new(ImmediateSnapshot::new(size, p, 0)))
                .collect();
            let mut sched = RandomScheduler::new(seed, 0);
            let report = SharedMemSim::new(size, ImmediateSnapshot::BANKS)
                .with_snapshots()
                .run(procs, &mut sched)
                .unwrap();
            let views: Vec<IdSet> = report.outputs.into_iter().map(Option::unwrap).collect();
            // Self-inclusion + containment + immediacy.
            for (i, vi) in views.iter().enumerate() {
                assert!(vi.contains(ProcessId::new(i)), "n={nv} seed={seed}");
                for (j, vj) in views.iter().enumerate() {
                    assert!(
                        vi.is_subset(*vj) || vj.is_subset(*vi),
                        "n={nv} seed={seed}: incomparable views"
                    );
                    if vi.contains(ProcessId::new(j)) {
                        assert!(vj.is_subset(*vi), "n={nv} seed={seed}: immediacy");
                    }
                }
            }
            // And the complemented views are a snapshot-predicate round.
            let round = views_to_round(size, &views);
            let model = Snapshot::new(size, nv - 1);
            assert!(
                model.admits(&rrfd::core::FaultPattern::new(size), &round),
                "n={nv} seed={seed}"
            );
        }
    }
}

#[test]
fn iterated_is_full_pattern_sweep() {
    for &(nv, rounds) in &[(3usize, 3u32), (5, 4), (8, 3)] {
        let size = n(nv);
        let model = Snapshot::new(size, nv - 1);
        for seed in 0..10u64 {
            let procs: Vec<_> = size
                .processes()
                .map(|p| IteratedIS::new(size, p, rounds))
                .collect();
            let mut sched = RandomScheduler::new(seed, 0);
            let report = SharedMemSim::new(size, IteratedIS::banks_needed(rounds))
                .with_snapshots()
                .run(procs, &mut sched)
                .unwrap();
            let all: Vec<Vec<IdSet>> = report.outputs.into_iter().map(Option::unwrap).collect();
            let mut pattern = rrfd::core::FaultPattern::new(size);
            for r in 0..rounds as usize {
                let views: Vec<IdSet> = all.iter().map(|v| v[r]).collect();
                pattern.push(views_to_round(size, &views));
            }
            assert!(
                model.admits_pattern(&pattern),
                "n={nv} rounds={rounds} seed={seed}"
            );
        }
    }
}

#[test]
fn abd_atomicity_sweep() {
    let size = n(5);
    let f = 2;
    let p0 = ProcessId::new(0);
    let p3 = ProcessId::new(3);
    let scripts: Vec<Vec<Op>> = vec![
        vec![Op::Write(1), Op::Write(2), Op::Write(3)],
        vec![Op::Read(p0); 3],
        vec![Op::Read(p0), Op::Read(p3)],
        vec![Op::Write(50), Op::Read(p0), Op::Write(51)],
        vec![Op::Read(p3), Op::Read(p3)],
    ];
    for seed in 0..40u64 {
        let procs: Vec<_> = size
            .processes()
            .map(|p| AbdClient::new(p, size, f, scripts[p.index()].clone()))
            .collect();
        let mut sched = RandomNetScheduler::new(seed, f).crash_prob(0.002);
        let report = AsyncNetSim::new(size).run(procs, &mut sched).unwrap();
        check_clients(&report.processes).unwrap_or_else(|v| panic!("seed {seed}: {v:?}"));
    }
}

#[test]
fn s_consensus_sweep() {
    for nv in [3usize, 6, 10] {
        let size = n(nv);
        let inputs: Vec<Value> = (0..nv as u64).map(|i| 40 + i).collect();
        let task = KSetAgreement::consensus();
        for seed in 0..15u64 {
            let protos: Vec<_> = inputs
                .iter()
                .map(|&v| SRotatingConsensus::new(size, v))
                .collect();
            let model = DetectorS::new(size);
            let mut adv = RandomAdversary::new(model, seed);
            let report = Engine::new(size).run(protos, &mut adv, &model).unwrap();
            let outs = report.outputs();
            task.check_terminating(&inputs, &outs)
                .unwrap_or_else(|v| panic!("n={nv} seed={seed}: {v}"));
            assert!(report.rounds_executed <= nv as u32);
        }
    }
}
