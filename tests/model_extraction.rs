//! Experiment E1: every classical simulator's executions, read off as
//! `D(i,r)` families exactly as §2 prescribes, satisfy the corresponding
//! RRFD predicate.
//!
//! These are the paper's "System N implements A" directions, checked
//! mechanically across seeds and system sizes.

use rrfd::core::{
    Control, Delivery, FaultPattern, IdSet, ProcessId, Round, RoundProtocol, RrfdPredicate,
    SystemSize,
};
use rrfd::models::predicates::{AsyncResilient, Crash, DetectorS, IdenticalViews, SendOmission};
use rrfd::sims::async_net::{AsyncNetSim, RandomNetScheduler};
use rrfd::sims::async_rounds::RoundedAsync;
use rrfd::sims::detector_s::SAugmentedSystem;
use rrfd::sims::semi_sync::{RandomSemiSync, SemiSyncSim};
use rrfd::sims::sync_net::{RandomCrash, RandomOmission, SyncNetSim};

fn n(v: usize) -> SystemSize {
    SystemSize::new(v).unwrap()
}

fn ids(xs: &[usize]) -> IdSet {
    xs.iter().map(|&i| ProcessId::new(i)).collect()
}

/// A protocol that just runs for a fixed number of rounds.
struct RunFor(u32);

impl RoundProtocol for RunFor {
    type Msg = ();
    type Output = ();
    fn emit(&mut self, _r: Round) {}
    fn deliver(&mut self, d: Delivery<'_, ()>) -> Control<()> {
        if d.round.get() >= self.0 {
            Control::Decide(())
        } else {
            Control::Continue
        }
    }
}

#[test]
fn e1_sync_omission_executions_satisfy_eq1() {
    for &(nv, faulty, prob) in &[
        (5usize, &[1usize][..], 0.5),
        (8, &[0, 3, 6][..], 0.3),
        (12, &[2, 5, 7, 9][..], 0.7),
    ] {
        let size = n(nv);
        let model = SendOmission::new(size, faulty.len());
        for seed in 0..12u64 {
            let injector = RandomOmission::new(size, ids(faulty), prob, seed);
            let protos: Vec<_> = (0..nv).map(|_| RunFor(6)).collect();
            let report = SyncNetSim::new(size).run(protos, injector).unwrap();
            assert!(
                model.admits_pattern(&report.pattern),
                "n={nv} seed={seed}: omission extraction broke eq. 1"
            );
        }
    }
}

#[test]
fn e1_sync_crash_executions_satisfy_eq1_and_eq2() {
    for &(nv, fcount) in &[(5usize, 2usize), (8, 3), (10, 4)] {
        let size = n(nv);
        let model = Crash::new(size, fcount);
        for seed in 0..12u64 {
            let faulty: IdSet = (0..fcount).map(ProcessId::new).collect();
            let injector = RandomCrash::new(size, faulty, 4, seed);
            let protos: Vec<_> = (0..nv).map(|_| RunFor(6)).collect();
            let report = SyncNetSim::new(size).run(protos, injector).unwrap();
            assert!(
                model.admits_pattern(&report.pattern),
                "n={nv} f={fcount} seed={seed}: crash extraction broke eq. 1+2: {:?}",
                report.pattern
            );
        }
    }
}

#[test]
fn e1_async_round_overlay_satisfies_eq3() {
    // Item 3: discard-late/buffer-early with n−f quorums yields |D| ≤ f.
    for &(nv, f) in &[(5usize, 1usize), (6, 2), (9, 3)] {
        let size = n(nv);
        for seed in 0..10u64 {
            let procs: Vec<_> = size
                .processes()
                .map(|p| RoundedAsync::new(p, size, f, RunFor(4)))
                .collect();
            let mut sched = RandomNetScheduler::new(seed, f).crash_prob(0.004);
            let report = AsyncNetSim::new(size).run(procs, &mut sched).unwrap();
            for proc_ in &report.processes {
                for d in proc_.fault_log() {
                    assert!(
                        d.len() <= f,
                        "n={nv} f={f} seed={seed}: |D| = {} > f",
                        d.len()
                    );
                }
            }
        }
    }
}

#[test]
fn e1_detector_s_system_satisfies_p6() {
    for &nv in &[4usize, 7, 10] {
        let size = n(nv);
        let model = DetectorS::new(size);
        for seed in 0..12u64 {
            let mut system = SAugmentedSystem::random(size, 5, seed);
            let mut history = FaultPattern::new(size);
            for r in 1..=8 {
                let round =
                    rrfd::core::FaultDetector::next_round(&mut system, Round::new(r), &history);
                assert!(
                    model.admits(&history, &round),
                    "n={nv} seed={seed} round={r}: P6 violated"
                );
                history.push(round);
            }
        }
    }
}

#[test]
fn e1_semi_sync_two_step_rounds_satisfy_eq5() {
    use rrfd::protocols::semi_sync_consensus::TwoStepConsensus;
    for &nv in &[3usize, 6, 10] {
        let size = n(nv);
        let model = IdenticalViews::new(size);
        for seed in 0..15u64 {
            let procs: Vec<_> = size
                .processes()
                .map(|p| TwoStepConsensus::new(size, p, p.index() as u64))
                .collect();
            let mut sched = RandomSemiSync::new(seed, nv - 1).crash_prob(0.05);
            let report = SemiSyncSim::new(size).run(procs, &mut sched).unwrap();

            // Assemble the single extracted round across deciders and pad
            // crashed processes with the deciders' (identical) view.
            let views: Vec<IdSet> = report
                .processes
                .iter()
                .filter_map(TwoStepConsensus::suspected)
                .collect();
            if views.is_empty() {
                continue; // everyone crashed: no round to check
            }
            let shared = views[0];
            let round = rrfd::core::RoundFaults::from_sets(size, vec![shared; size.get()]);
            let mut history = FaultPattern::new(size);
            assert!(model.admits(&history, &round), "n={nv} seed={seed}");
            history.push(round);
            // And all real views must agree with the padded one.
            for (i, v) in views.iter().enumerate() {
                assert_eq!(*v, shared, "n={nv} seed={seed}: view {i} differs");
            }
        }
    }
}

#[test]
fn e1_reverse_direction_rrfd_drives_protocols() {
    // The "A implements N" direction: RRFD adversaries drive protocols to
    // the same observable outcomes the simulators produce; spot-check with
    // the async model on both substrates.
    use rrfd::models::adversary::RandomAdversary;

    let size = n(6);
    let f = 2;

    // Count rounds to completion on the RRFD engine.
    let model = AsyncResilient::new(size, f);
    let mut adv = RandomAdversary::new(model, 9);
    let protos: Vec<_> = (0..6).map(|_| RunFor(4)).collect();
    let report = rrfd::core::Engine::new(size)
        .run(protos, &mut adv, &model)
        .unwrap();
    assert_eq!(report.rounds_executed, 4);
    assert!(report.all_decided());
}
