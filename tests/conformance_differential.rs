//! The conformance monitor's differential suite: on every substrate
//! that can feed it, the online incremental verdict must equal offline
//! replay-based predicate checking over the run's captured trace.
//!
//! The offline side is recomputed here from scratch — each zoo predicate
//! replayed over fault-pattern prefixes of the trace — sharing nothing
//! with `ConformanceMonitor` beyond the predicates themselves. Four
//! substrates are driven by proptest:
//!
//! 1. the in-process [`Engine`] via its [`RoundHook`] seam,
//! 2. the [`ThreadedEngine`] via its `conformance` builder,
//! 3. the batch pool via `PoolConfig::conformance` (per instance),
//! 4. a serialized-then-reparsed [`RunTrace`] fed round by round —
//!    monitoring a capture must agree with having monitored the run.

use proptest::prelude::*;
use rrfd::core::{Engine, RoundFaults, RoundHook, RunTrace, SystemSize};
use rrfd::models::adversary::RandomAdversary;
use rrfd::models::conformance::ConformanceMonitor;
use rrfd::models::predicates::Crash;
use rrfd::models::zoo::zoo;
use rrfd::pool::{run_batch, MixSpec, PoolConfig};
use rrfd::protocols::kset::FloodMin;
use rrfd::runtime::ThreadedEngine;
use std::sync::{Arc, Mutex};

/// Offline replay: each zoo predicate checked over prefixes of the
/// observed rounds, first rejection recorded. Round numbers are 1-based.
fn offline_firsts<'a>(
    n: SystemSize,
    rounds: impl Iterator<Item = &'a RoundFaults> + Clone,
) -> Vec<Option<u32>> {
    let family = zoo(n, 1);
    family
        .iter()
        .map(|predicate| {
            let mut prefix = rrfd::core::FaultPattern::new(n);
            let mut first = None;
            for (r, faults) in rounds.clone().enumerate() {
                if first.is_none() && !predicate.admits(&prefix, faults) {
                    first = Some(r as u32 + 1);
                }
                prefix.push(faults.clone());
            }
            first
        })
        .collect()
}

/// The monitor's verdict as per-predicate first-violation rounds, in
/// family order.
fn online_firsts(monitor: &ConformanceMonitor) -> Vec<Option<u32>> {
    monitor
        .verdict()
        .statuses
        .iter()
        .map(|s| s.first_violation.map(|r| r.get()))
        .collect()
}

fn shared_monitor(n: SystemSize) -> Arc<Mutex<ConformanceMonitor>> {
    Arc::new(Mutex::new(ConformanceMonitor::zoo(n, 1)))
}

fn flood_protocols(n: usize, f: usize) -> Vec<FloodMin> {
    (0..n as u64)
        .map(|v| FloodMin::new(1000 + v, f as u32 + 1))
        .collect()
}

proptest! {
    #[test]
    fn engine_hook_monitor_agrees_with_offline_replay(
        n in 3usize..8,
        f_pick in 0usize..100,
        seed in any::<u64>(),
    ) {
        let f = f_pick % n;
        let size = SystemSize::new(n).unwrap();
        let model = Crash::new(size, f);
        let monitor = shared_monitor(size);
        let mut run = Engine::new(size)
            .start_traced(
                flood_protocols(n, f),
                RandomAdversary::new(model, seed),
                model,
            )
            .unwrap();
        let feed = monitor.clone();
        run.set_round_hook(RoundHook::new(move |faults| {
            feed.lock().unwrap().observe(faults);
        }));
        let finished = run.run_to_completion();
        let trace = finished.trace.expect("start_traced arms the builder");

        let monitor = monitor.lock().unwrap();
        // The hook must see exactly the rounds the trace records.
        prop_assert_eq!(monitor.rounds_observed() as usize, trace.rounds().len());
        let offline = offline_firsts(size, trace.rounds().iter().map(|r| &r.faults));
        prop_assert_eq!(online_firsts(&monitor), offline);

        // 4th substrate, piggybacked: serialize, reparse, re-monitor.
        // Monitoring the capture must agree with having monitored the run.
        let reparsed: RunTrace = trace.to_string().parse().unwrap();
        let mut replayed = ConformanceMonitor::zoo(size, 1);
        for round in reparsed.rounds() {
            replayed.observe(&round.faults);
        }
        prop_assert_eq!(online_firsts(&replayed), online_firsts(&monitor));
    }

    #[test]
    fn threaded_runtime_monitor_agrees_with_offline_replay(
        // n ≥ 3: System B's `2t < n, f < t` side conditions make the zoo
        // undefined at n = 2.
        n in 3usize..5,
        f_pick in 0usize..100,
        seed in any::<u64>(),
    ) {
        let f = f_pick % n;
        let size = SystemSize::new(n).unwrap();
        let model = Crash::new(size, f);
        let monitor = shared_monitor(size);
        let engine = ThreadedEngine::new(size).conformance(monitor.clone());
        let mut adv = RandomAdversary::new(model, seed);
        let (_, trace) = engine.run_traced(flood_protocols(n, f), &mut adv, &model);

        let monitor = monitor.lock().unwrap();
        prop_assert_eq!(monitor.rounds_observed() as usize, trace.rounds().len());
        let offline = offline_firsts(size, trace.rounds().iter().map(|r| &r.faults));
        prop_assert_eq!(online_firsts(&monitor), offline);
    }

    #[test]
    fn pool_instance_verdicts_agree_with_offline_replay(
        instances in 5u64..40,
        seed in any::<u64>(),
    ) {
        let mix = MixSpec::default_mix();
        let config = PoolConfig::new(2)
            .seed(seed)
            .conformance(true)
            .capture_traces(true)
            .keep_results(true);
        let report = run_batch(&mix, instances, &config);
        let mut checked = 0;
        for result in &report.results {
            let (Some(trace), Some(online)) = (&result.trace, &result.conformance) else {
                continue;
            };
            checked += 1;
            let n = trace.system_size();
            let offline = offline_firsts(n, trace.rounds().iter().map(|r| &r.faults));
            let family = zoo(n, 1);
            // The pool folds verdicts into (name, round) pairs; rebuild
            // the same shape from the offline replay and compare.
            let offline_violations: Vec<(String, u32)> = family
                .iter()
                .zip(&offline)
                .filter_map(|(p, first)| first.map(|r| (p.name(), r)))
                .collect();
            prop_assert_eq!(&online.violations, &offline_violations);
        }
        prop_assert!(checked > 0, "no pool instance captured both trace and verdict");
    }
}
