//! Differential tests of the parallel explorer against the sequential
//! one: on random small symmetric protocols and random predicates, both
//! walkers must agree on (i) whether a counterexample exists, (ii) the
//! set of violating final-state fingerprints, and (iii) every parallel
//! counterexample must replay — through `ScheduleReplay`, from the
//! serialized certificate — to the same violation. Plus a determinism
//! regression: the same configuration yields byte-identical stats and
//! the identical counterexample on repeated runs.

use proptest::prelude::*;
use rrfd::core::{ProcessId, SystemSize};
use rrfd::sims::digest::{DigestWriter, StateDigest};
use rrfd::sims::explore::explore_schedules_checked;
use rrfd::sims::explore::semi_sync::explore_semi_sync_checked;
use rrfd::sims::explore_par::{
    explore_semi_sync_par, explore_shared_mem_par, mem_output_fingerprint, no_fingerprint,
    ParConfig, ParExploreError,
};
use rrfd::sims::semi_sync::{SemiSyncProcess, SemiSyncReport, SemiSyncSim};
use rrfd::sims::shared_mem::{Action, MemProcess, MemRunReport, Observation, SharedMemSim};
use rrfd::sims::trace::ScheduleReplay;
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::sync::Mutex;

/// One instruction of the scripted protocol. Every process runs the same
/// program, so instances are id-symmetric by construction.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    /// Write this value to the process's own cell of bank 0.
    Write(u64),
    /// Snapshot bank 0 and add the number of filled cells to the
    /// accumulator.
    Snap,
}

/// A tiny interpreter over shared memory: execute the program one op per
/// step (folding snapshot results into an accumulator), then decide the
/// accumulator.
#[derive(Debug, Clone)]
struct Scripted {
    ops: Vec<Op>,
    pc: usize,
    acc: u64,
}

impl MemProcess<u64> for Scripted {
    type Output = u64;
    fn step(&mut self, obs: Observation<u64>) -> Action<u64, u64> {
        if let Observation::SnapshotView(view) = &obs {
            self.acc += view.iter().flatten().count() as u64;
        }
        match self.ops.get(self.pc) {
            Some(&op) => {
                self.pc += 1;
                match op {
                    Op::Write(v) => Action::Write { bank: 0, value: v },
                    Op::Snap => Action::Snapshot { bank: 0 },
                }
            }
            None => Action::Decide(self.acc),
        }
    }
}

impl StateDigest for Scripted {
    fn digest(&self, w: &mut DigestWriter) {
        self.pc.digest(w);
        self.acc.digest(w);
    }
}

fn program() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (0u8..3).prop_map(|t| match t {
            0 => Op::Snap,
            v => Op::Write(u64::from(v)),
        }),
        1..=2,
    )
}

/// The random predicate: "no process decides a value ≥ threshold".
/// Low thresholds produce counterexamples, high ones do not, so both
/// branches of the differential get exercised.
fn violates(report: &MemRunReport<Scripted, u64>, threshold: u64) -> bool {
    report.outputs.iter().flatten().any(|&v| v >= threshold)
}

proptest! {
    #[test]
    fn parallel_matches_sequential_on_scripted_protocols(
        ops in program(),
        n in 2usize..=3,
        threshold in 0u64..8,
    ) {
        let size = SystemSize::new(n).unwrap();
        let sim = SharedMemSim::new(size, 1).with_snapshots();
        let make = || {
            (0..n)
                .map(|_| Scripted { ops: ops.clone(), pc: 0, acc: 0 })
                .collect::<Vec<_>>()
        };
        let check = |report: &MemRunReport<Scripted, u64>| {
            if violates(report, threshold) {
                Err(format!("an output reached {threshold}"))
            } else {
                Ok(())
            }
        };

        let seq = explore_schedules_checked(&sim, make, check, 100_000);

        // (ii) the set of violating final-state fingerprints, collected
        // with a never-failing check so the walkers cover everything.
        let seq_set = RefCell::new(BTreeSet::new());
        let collect_seq = |report: &MemRunReport<Scripted, u64>| {
            if violates(report, threshold) {
                seq_set.borrow_mut().insert(mem_output_fingerprint(report));
            }
            Ok(())
        };
        let seq_total = explore_schedules_checked(&sim, make, collect_seq, 100_000).unwrap();
        let seq_set = seq_set.into_inner();

        for workers in [1usize, 2, 8] {
            for pruning in [false, true] {
                let config = ParConfig::new(workers).hash_pruning(pruning);
                let par_set = Mutex::new(BTreeSet::new());
                let collect_par = |report: &MemRunReport<Scripted, u64>| {
                    if violates(report, threshold) {
                        par_set
                            .lock()
                            .unwrap()
                            .insert(mem_output_fingerprint(report));
                    }
                    Ok(())
                };
                let covered =
                    explore_shared_mem_par(&sim, make, collect_par, no_fingerprint, &config)
                        .unwrap();
                let par_fingerprints = par_set.into_inner().unwrap();
                prop_assert!(
                    par_fingerprints == seq_set,
                    "violating fingerprints disagree (workers {}, pruning {}): {:?} vs {:?}",
                    workers,
                    pruning,
                    par_fingerprints,
                    seq_set
                );
                if !pruning {
                    // Without pruning the walkers enumerate the exact
                    // same set of complete schedules.
                    prop_assert_eq!(covered.schedules, seq_total.schedules);
                    prop_assert_eq!(covered.max_depth, seq_total.max_depth);
                }

                // (i) counterexample existence agrees; (iii) the parallel
                // certificate replays to the same violation.
                let par = explore_shared_mem_par(&sim, make, check, no_fingerprint, &config);
                match (&seq, &par) {
                    (Ok(_), Ok(_)) => {}
                    (Err(_), Err(ParExploreError::Counterexample(cex))) => {
                        let reparsed = cex.schedule.to_string().parse().unwrap();
                        let mut replay = ScheduleReplay::from_trace(&reparsed);
                        let report = sim.run(make(), &mut replay).unwrap();
                        prop_assert!(
                            violates(&report, threshold),
                            "replayed certificate must reproduce the violation"
                        );
                    }
                    (s, p) => prop_assert!(
                        false,
                        "existence disagreement (workers {}, pruning {}): seq {:?} vs par {:?}",
                        workers, pruning, s.is_ok(), p.is_ok()
                    ),
                }
            }
        }

        // Symmetry reduction accepts the (symmetric-by-construction)
        // instance and preserves counterexample existence.
        let sym = explore_shared_mem_par(
            &sim,
            make,
            check,
            mem_output_fingerprint,
            &ParConfig::new(2).symmetry(true),
        );
        match (&seq, &sym) {
            (Ok(_), Ok(_)) => {}
            (Err(_), Err(ParExploreError::Counterexample(_))) => {}
            (s, p) => prop_assert!(
                false,
                "symmetry run disagrees on existence: seq {:?} vs sym {:?}",
                s.is_ok(),
                p.is_ok()
            ),
        }
    }
}

/// A broadcast-once, decide-after-`rounds`-steps semi-synchronous
/// process; deciding on how many distinct processes it heard from.
#[derive(Debug, Clone)]
struct Hearer {
    rounds: u64,
    steps: u64,
    heard: rrfd::core::IdSet,
    sent: bool,
}

impl SemiSyncProcess for Hearer {
    type Msg = ();
    type Output = usize;
    fn step(
        &mut self,
        received: &[(ProcessId, std::sync::Arc<()>)],
    ) -> (Option<()>, rrfd::core::Control<usize>) {
        self.steps += 1;
        for &(from, _) in received {
            self.heard.insert(from);
        }
        let msg = (!self.sent).then(|| self.sent = true);
        if self.steps >= self.rounds {
            (msg, rrfd::core::Control::Decide(self.heard.len()))
        } else {
            (msg, rrfd::core::Control::Continue)
        }
    }
}

impl StateDigest for Hearer {
    fn digest(&self, w: &mut DigestWriter) {
        self.rounds.digest(w);
        self.steps.digest(w);
        self.heard.digest(w);
        self.sent.digest(w);
    }
}

proptest! {
    #[test]
    fn semi_sync_parallel_matches_sequential(
        rounds in 2u64..=3,
        crashes in 0usize..=1,
        quorum in 1usize..=2,
    ) {
        let size = SystemSize::new(2).unwrap();
        let sim = SemiSyncSim::new(size);
        let make = || {
            (0..2)
                .map(|_| Hearer {
                    rounds,
                    steps: 0,
                    heard: rrfd::core::IdSet::empty(),
                    sent: false,
                })
                .collect::<Vec<_>>()
        };
        let check = |report: &SemiSyncReport<Hearer>| {
            if report.outputs.iter().flatten().any(|(h, _)| *h < quorum) {
                Err(format!("someone heard fewer than {quorum}"))
            } else {
                Ok(())
            }
        };

        let seq = explore_semi_sync_checked(&sim, crashes, make, check, 200_000);
        for workers in [1usize, 4] {
            let config = ParConfig::new(workers).hash_pruning(false);
            let par = explore_semi_sync_par(&sim, crashes, make, check, no_fingerprint, &config);
            match (&seq, &par) {
                (Ok(s), Ok(p)) => prop_assert_eq!(s.schedules, p.schedules),
                (Err(_), Err(ParExploreError::Counterexample(cex))) => {
                    let mut replay = ScheduleReplay::from_trace(&cex.schedule);
                    let report = sim.run(make(), &mut replay).unwrap();
                    prop_assert!(
                        report.outputs.iter().flatten().any(|(h, _)| *h < quorum),
                        "replayed semi-sync certificate must reproduce the violation"
                    );
                }
                (s, p) => prop_assert!(
                    false,
                    "semi-sync existence disagreement: seq {:?} vs par {:?}",
                    s.is_ok(),
                    p.is_ok()
                ),
            }
        }
    }
}

/// Same configuration in, byte-identical stats and the identical chosen
/// counterexample out — twice in a row, and per worker count.
#[test]
fn exploration_is_a_deterministic_function_of_its_configuration() {
    let size = SystemSize::new(3).unwrap();
    let sim = SharedMemSim::new(size, 1).with_snapshots();
    let make = || {
        (0..3)
            .map(|_| Scripted {
                ops: vec![Op::Write(1), Op::Snap],
                pc: 0,
                acc: 0,
            })
            .collect::<Vec<_>>()
    };
    // Fails on schedules where someone's snapshot saw all three writes.
    let check = |report: &MemRunReport<Scripted, u64>| {
        if violates(report, 3) {
            Err("saw a full snapshot".to_owned())
        } else {
            Ok(())
        }
    };

    for workers in [1usize, 4] {
        let config = ParConfig::new(workers);
        let runs: Vec<_> = (0..2)
            .map(|_| {
                explore_shared_mem_par(&sim, make, check, no_fingerprint, &config).unwrap_err()
            })
            .collect();
        let [one, two] = runs.as_slice() else {
            unreachable!()
        };
        let (ParExploreError::Counterexample(a), ParExploreError::Counterexample(b)) = (one, two)
        else {
            panic!("expected counterexamples, got {one:?} / {two:?}");
        };
        assert_eq!(
            format!("{:?}", a.stats),
            format!("{:?}", b.stats),
            "stats must be byte-identical at {workers} workers"
        );
        assert_eq!(a.choices, b.choices);
        assert_eq!(a.message, b.message);
        assert_eq!(a.schedule.to_string(), b.schedule.to_string());
        assert_eq!(a.stats.workers, workers.min(a.stats.wall_splits.max(1)));
    }
}

/// The suite honours `RRFD_EXPLORE_WORKERS`: a `from_env` configuration
/// must produce the same answers as any explicit worker count (CI runs
/// this file at 1 and 4 workers).
#[test]
fn from_env_configuration_agrees_with_explicit_workers() {
    let size = SystemSize::new(3).unwrap();
    let sim = SharedMemSim::new(size, 1).with_snapshots();
    let make = || {
        (0..3)
            .map(|_| Scripted {
                ops: vec![Op::Snap],
                pc: 0,
                acc: 0,
            })
            .collect::<Vec<_>>()
    };
    let env_stats = explore_shared_mem_par(
        &sim,
        make,
        |_| Ok(()),
        no_fingerprint,
        &ParConfig::from_env(),
    )
    .unwrap();
    let one_stats =
        explore_shared_mem_par(&sim, make, |_| Ok(()), no_fingerprint, &ParConfig::new(1)).unwrap();
    assert_eq!(env_stats.schedules, one_stats.schedules);
    assert_eq!(env_stats.max_depth, one_stats.max_depth);
    assert_eq!(env_stats.pruned_by_hash, one_stats.pruned_by_hash);
    assert!(env_stats.workers >= 1);
}
