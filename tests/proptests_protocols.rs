//! Property-based tests over the protocol layer: consensus protocols,
//! register emulation, immediate snapshots, and the predicate lattice
//! combinators.

use proptest::prelude::*;
use rrfd::core::task::{KSetAgreement, Value};
use rrfd::core::{
    And, Engine, FaultPattern, IdSet, Or, ProcessId, RoundFaults, RrfdPredicate, SystemSize,
};
use rrfd::models::adversary::{RandomAdversary, StaggeredCrash};
use rrfd::models::predicates::{AsyncResilient, Crash, KUncertainty, Snapshot};

fn pid_set(n: usize) -> impl Strategy<Value = IdSet> {
    prop::collection::btree_set(0..n, 0..n)
        .prop_map(|s| s.into_iter().map(ProcessId::new).collect())
}

fn round_faults(n: usize) -> impl Strategy<Value = RoundFaults> {
    prop::collection::vec(pid_set(n), n)
        .prop_map(move |sets| RoundFaults::from_sets(SystemSize::new(n).unwrap(), sets))
}

proptest! {
    // ---------- Lattice combinators ----------

    #[test]
    fn and_implies_or_pointwise(rf in round_faults(6), f in 0usize..5, k in 1usize..5) {
        let n = SystemSize::new(6).unwrap();
        let a = AsyncResilient::new(n, f);
        let b = KUncertainty::new(n, k);
        let h = FaultPattern::new(n);
        let conj = And::new(a, b);
        let disj = Or::new(a, b);
        if conj.admits(&h, &rf) {
            prop_assert!(a.admits(&h, &rf) && b.admits(&h, &rf));
            prop_assert!(disj.admits(&h, &rf));
        }
        if !disj.admits(&h, &rf) {
            prop_assert!(!a.admits(&h, &rf) && !b.admits(&h, &rf));
            prop_assert!(!conj.admits(&h, &rf));
        }
    }

    #[test]
    fn and_or_are_commutative_on_rounds(rf in round_faults(5), f in 0usize..4, k in 1usize..4) {
        let n = SystemSize::new(5).unwrap();
        let a = AsyncResilient::new(n, f);
        let b = KUncertainty::new(n, k);
        let h = FaultPattern::new(n);
        prop_assert_eq!(
            And::new(a, b).admits(&h, &rf),
            And::new(b, a).admits(&h, &rf)
        );
        prop_assert_eq!(
            Or::new(a, b).admits(&h, &rf),
            Or::new(b, a).admits(&h, &rf)
        );
    }

    // ---------- Early-stopping consensus ----------

    #[test]
    fn early_stopping_agrees_with_floodmin_under_random_crashes(
        seed in any::<u64>(),
        f in 1usize..4
    ) {
        use rrfd::protocols::early_stopping::EarlyStoppingConsensus;
        use rrfd::protocols::kset::FloodMin;

        let n = SystemSize::new(6).unwrap();
        let inputs: Vec<Value> = (0..6).map(|i| 500 + i).collect();
        let model = Crash::new(n, f);

        // Same seeded adversary for both protocols.
        let run_early = {
            let protos: Vec<_> = inputs
                .iter()
                .map(|&v| EarlyStoppingConsensus::new(v, f))
                .collect();
            let mut adv = RandomAdversary::new(model, seed);
            Engine::new(n).run(protos, &mut adv, &model).unwrap()
        };
        let run_flood = {
            let protos: Vec<_> = inputs
                .iter()
                .map(|&v| FloodMin::new(v, f as u32 + 1))
                .collect();
            let mut adv = RandomAdversary::new(model, seed);
            Engine::new(n)
                .run(protos, &mut adv, &model)
                .unwrap()
        };

        // The early-stopper never takes longer than the fixed-round
        // flood, and both satisfy consensus among never-suspected
        // processes. (Values may differ between the two runs only if the
        // adversary history diverged — it cannot, same seed — or if a
        // crashed process's value is lost; among the never-suspected the
        // decisions must agree within each run.)
        prop_assert!(run_early.rounds_executed <= run_flood.rounds_executed);
        for report in [&run_early, &run_flood] {
            let crashed = report.pattern.cumulative_union();
            let outs: Vec<Option<Value>> = report
                .outputs()
                .into_iter()
                .enumerate()
                .map(|(i, v)| v.filter(|_| !crashed.contains(ProcessId::new(i))))
                .collect();
            prop_assert!(KSetAgreement::consensus().check(&inputs, &outs).is_ok());
        }
    }

    #[test]
    fn early_stopping_round_count_tracks_actual_failures(f_actual in 0usize..5) {
        use rrfd::protocols::early_stopping::EarlyStoppingConsensus;
        let f = 5usize;
        let n = SystemSize::new(8).unwrap();
        let inputs: Vec<Value> = (0..8).collect();
        let protos: Vec<_> = inputs
            .iter()
            .map(|&v| EarlyStoppingConsensus::new(v, f))
            .collect();
        let model = Crash::new(n, f);
        let mut adv = StaggeredCrash::new(n, f_actual);
        let report = Engine::new(n).run(protos, &mut adv, &model).unwrap();
        prop_assert!(report.rounds_executed as usize <= (f_actual + 2).min(f + 1));
    }

    // ---------- One-round k-set agreement vs snapshot detector ----------

    #[test]
    fn snapshot_rounds_solve_f_plus_1_set_agreement(seed in any::<u64>(), f in 1usize..5) {
        // P5(f) ⇒ Pk(f+1): a snapshot-model round solves (f+1)-set
        // agreement in one round — the Corollary 3.2 bridge.
        use rrfd::protocols::kset::one_round_kset;
        let n = SystemSize::new(7).unwrap();
        let inputs: Vec<Value> = (0..7).map(|i| 900 + i).collect();
        let snap = Snapshot::new(n, f);
        let mut adv = RandomAdversary::new(snap, seed);
        // Run under the k-uncertainty model with k = f + 1: the snapshot
        // adversary's rounds must be legal for it.
        let decisions = one_round_kset(n, f + 1, &inputs, &mut adv).unwrap();
        let outs: Vec<Option<Value>> = decisions.iter().map(|&d| Some(d)).collect();
        prop_assert!(KSetAgreement::new(f + 1)
            .check_terminating(&inputs, &outs)
            .is_ok());
    }

    // ---------- ABD with generated scripts ----------

    #[test]
    fn abd_atomicity_for_generated_scripts(
        seed in any::<u64>(),
        ops in prop::collection::vec(
            prop::collection::vec((0usize..5, 0u64..50), 0..4),
            5
        )
    ) {
        use rrfd::protocols::abd::{check_clients, AbdClient, Op};
        use rrfd::sims::async_net::{AsyncNetSim, RandomNetScheduler};

        let n = SystemSize::new(5).unwrap();
        let mut scripts: Vec<Vec<Op>> = ops
            .into_iter()
            .map(|script| {
                script
                    .into_iter()
                    .map(|(target, v)| {
                        if v % 2 == 0 {
                            Op::Write(v)
                        } else {
                            Op::Read(ProcessId::new(target))
                        }
                    })
                    .collect()
            })
            .collect();
        // An all-empty workload never puts a message on the wire, so
        // finished clients can never announce their (empty) histories and
        // the network reports quiescence. Guarantee one operation.
        scripts[0].insert(0, Op::Write(1));
        let procs: Vec<_> = n
            .processes()
            .map(|p| AbdClient::new(p, n, 2, scripts[p.index()].clone()))
            .collect();
        let mut sched = RandomNetScheduler::new(seed, 0);
        let report = AsyncNetSim::new(n).run(procs, &mut sched).unwrap();
        prop_assert!(check_clients(&report.processes).is_ok());
    }

    // ---------- Immediate snapshots ----------

    #[test]
    fn immediate_snapshot_properties_proptest(seed in any::<u64>(), nv in 2usize..8) {
        use rrfd::protocols::immediate_snapshot::{ImmediateSnapshot, IsDriver};
        use rrfd::sims::shared_mem::{RandomScheduler, SharedMemSim};

        let n = SystemSize::new(nv).unwrap();
        let procs: Vec<_> = n
            .processes()
            .map(|p| IsDriver::new(ImmediateSnapshot::new(n, p, 0)))
            .collect();
        let mut sched = RandomScheduler::new(seed, 0);
        let report = SharedMemSim::new(n, ImmediateSnapshot::BANKS)
            .with_snapshots()
            .run(procs, &mut sched)
            .unwrap();
        let views: Vec<IdSet> = report.outputs.into_iter().map(Option::unwrap).collect();
        for (i, vi) in views.iter().enumerate() {
            prop_assert!(vi.contains(ProcessId::new(i)));
            for (j, vj) in views.iter().enumerate() {
                prop_assert!(vi.is_subset(*vj) || vj.is_subset(*vi));
                if vi.contains(ProcessId::new(j)) {
                    prop_assert!(vj.is_subset(*vi));
                }
            }
        }
    }
}
