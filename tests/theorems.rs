//! Integration sweeps over the paper's headline results, crossing every
//! crate: models drive protocols over the core engine, the simulators, and
//! the threaded runtime.

use rrfd::core::task::{KSetAgreement, Value};
use rrfd::core::{Engine, ProcessId, RrfdPredicate, SystemSize};
use rrfd::models::adversary::{RandomAdversary, SilencingCrash};
use rrfd::models::predicates::{Crash, KUncertainty, Snapshot};
use rrfd::protocols::kset::{one_round_kset, FloodMin, SnapshotKSet};
use rrfd::protocols::sync_sim::{run_as_omission, run_crash_simulation};
use std::collections::BTreeSet;

fn n(v: usize) -> SystemSize {
    SystemSize::new(v).unwrap()
}

fn inputs(count: usize) -> Vec<Value> {
    (0..count as u64).map(|i| 10_000 + i).collect()
}

#[test]
fn theorem_3_1_sweep() {
    // One-round k-set agreement across a grid of (n, k) and seeds.
    for nv in [3usize, 5, 8, 13, 21] {
        for k in [1usize, 2, 3, 5] {
            if k >= nv {
                continue;
            }
            let size = n(nv);
            let ins = inputs(nv);
            let task = KSetAgreement::new(k);
            for seed in 0..10u64 {
                let mut adv = RandomAdversary::new(KUncertainty::new(size, k), seed);
                let decisions = one_round_kset(size, k, &ins, &mut adv)
                    .unwrap_or_else(|e| panic!("n={nv} k={k} seed={seed}: {e}"));
                task.check_terminating(
                    &ins,
                    &decisions.iter().map(|&d| Some(d)).collect::<Vec<_>>(),
                )
                .unwrap_or_else(|v| panic!("n={nv} k={k} seed={seed}: {v}"));
            }
        }
    }
}

#[test]
fn corollary_3_2_sweep() {
    // k-set agreement on snapshot memory with k − 1 crashes.
    use rrfd::sims::shared_mem::{RandomScheduler, SharedMemSim};
    for &(nv, k) in &[(4usize, 2usize), (6, 3), (9, 4), (12, 5)] {
        let size = n(nv);
        let ins = inputs(nv);
        let task = KSetAgreement::new(k);
        for seed in 0..8u64 {
            let procs: Vec<_> = ins.iter().map(|&v| SnapshotKSet::new(size, k, v)).collect();
            let mut sched = RandomScheduler::new(seed, k - 1).crash_prob(0.04);
            let report = SharedMemSim::new(size, 1)
                .with_snapshots()
                .run(procs, &mut sched)
                .unwrap();
            assert!(report.all_correct_decided(), "n={nv} k={k} seed={seed}");
            task.check(&ins, &report.outputs)
                .unwrap_or_else(|v| panic!("n={nv} k={k} seed={seed}: {v}"));
        }
    }
}

#[test]
fn theorem_4_1_sweep() {
    // Snapshot runs with k failures are send-omission runs with f = k·⌊f/k⌋.
    for &(nv, f, k) in &[(6usize, 3usize, 1usize), (8, 5, 2), (12, 8, 4), (16, 10, 5)] {
        let size = n(nv);
        let budget = (f / k) as u32;
        for seed in 0..8u64 {
            let protos: Vec<_> = inputs(nv)
                .into_iter()
                .map(|v| FloodMin::new(v, budget))
                .collect();
            let mut adv = RandomAdversary::new(Snapshot::new(size, k), seed);
            let report = run_as_omission(size, f, k, protos, &mut adv).unwrap();
            assert!(report.omission_certified, "n={nv} f={f} k={k} seed={seed}");
        }
    }
}

#[test]
fn theorem_4_3_sweep() {
    use rrfd::sims::shared_mem::RandomScheduler;
    for &(nv, f, k) in &[(5usize, 2usize, 1usize), (6, 4, 2), (9, 6, 3)] {
        let size = n(nv);
        let budget = (f / k) as u32;
        for seed in 0..8u64 {
            let protos: Vec<_> = inputs(nv)
                .into_iter()
                .map(|v| FloodMin::new(v, budget))
                .collect();
            let mut sched = RandomScheduler::new(seed, k).crash_prob(0.02);
            let report = run_crash_simulation(size, k, f, budget, protos, &mut sched).unwrap();
            assert!(
                report.crash_certified,
                "n={nv} f={f} k={k} seed={seed}: {:?}",
                report.pattern
            );
        }
    }
}

#[test]
fn corollary_4_4_lower_bound_both_arms() {
    for &(nv, f, k) in &[(6usize, 3usize, 1usize), (10, 4, 2), (13, 6, 3), (26, 8, 4)] {
        let size = n(nv);
        let model = Crash::new(size, f);
        let run = |budget: u32| {
            let ins: Vec<Value> = (0..nv as u64).collect();
            let protos: Vec<_> = ins.iter().map(|&v| FloodMin::new(v, budget)).collect();
            let mut adv = SilencingCrash::new(size, f, k);
            let report = Engine::new(size).run(protos, &mut adv, &model).unwrap();
            let crashed = report.pattern.cumulative_union();
            report
                .outputs()
                .into_iter()
                .enumerate()
                .filter(|(i, _)| !crashed.contains(ProcessId::new(*i)))
                .map(|(_, v)| v.unwrap())
                .collect::<BTreeSet<Value>>()
                .len()
        };
        let floor = (f / k) as u32;
        assert!(run(floor) > k, "n={nv} f={f} k={k}: short budget survived");
        assert!(run(floor + 1) <= k, "n={nv} f={f} k={k}: bound not tight");
    }
}

#[test]
fn theorem_5_1_sweep() {
    use rrfd::protocols::semi_sync_consensus::TwoStepConsensus;
    use rrfd::sims::semi_sync::{RandomSemiSync, SemiSyncSim};
    for nv in [2usize, 4, 7, 11, 16] {
        let size = n(nv);
        let ins = inputs(nv);
        let task = KSetAgreement::consensus();
        for seed in 0..10u64 {
            let procs: Vec<_> = size
                .processes()
                .map(|p| TwoStepConsensus::new(size, p, ins[p.index()]))
                .collect();
            let mut sched = RandomSemiSync::new(seed, nv - 1).crash_prob(0.06);
            let report = SemiSyncSim::new(size).run(procs, &mut sched).unwrap();
            assert!(report.all_correct_decided(), "n={nv} seed={seed}");
            let outs: Vec<Option<Value>> = report
                .outputs
                .iter()
                .map(|o| o.as_ref().map(|&(v, _)| v))
                .collect();
            task.check(&ins, &outs)
                .unwrap_or_else(|v| panic!("n={nv} seed={seed}: {v}"));
            for out in report.outputs.iter().flatten() {
                assert_eq!(out.1, 2, "n={nv} seed={seed}: more than 2 steps");
            }
        }
    }
}

#[test]
fn theorem_3_3_sweep() {
    use rrfd::protocols::detector_from_kset::build_detector_pattern;
    use rrfd::sims::shared_mem::RandomScheduler;
    for &(nv, k) in &[(4usize, 1usize), (6, 2), (9, 3), (12, 4)] {
        let size = n(nv);
        let model = KUncertainty::new(size, k);
        for seed in 0..8u64 {
            let mut sched = RandomScheduler::new(seed, 0);
            let pattern = build_detector_pattern(size, k, 4, seed ^ 0xF00D, &mut sched).unwrap();
            assert!(
                model.admits_pattern(&pattern),
                "n={nv} k={k} seed={seed}: constructed detector exceeded uncertainty"
            );
        }
    }
}

#[test]
fn engine_and_threads_agree_on_theorem_3_1() {
    use rrfd::runtime::ThreadedEngine;
    let size = n(6);
    let k = 2;
    let ins = inputs(6);
    let model = KUncertainty::new(size, k);
    let task = KSetAgreement::new(k);
    for seed in 0..6u64 {
        // Same adversary seed on both substrates ⇒ same fault pattern ⇒
        // same decisions.
        let mut adv_a = RandomAdversary::new(model, seed);
        let engine_out = one_round_kset(size, k, &ins, &mut adv_a).unwrap();

        let protos: Vec<_> = ins
            .iter()
            .map(|&v| rrfd::protocols::kset::OneRoundKSet::new(v))
            .collect();
        let mut adv_b = RandomAdversary::new(model, seed);
        let threaded = ThreadedEngine::new(size)
            .run(protos, &mut adv_b, &model)
            .unwrap();
        let threaded_out: Vec<Value> = threaded.outputs().into_iter().map(Option::unwrap).collect();

        assert_eq!(engine_out, threaded_out, "seed {seed}");
        task.check_terminating(
            &ins,
            &threaded_out.iter().map(|&v| Some(v)).collect::<Vec<_>>(),
        )
        .unwrap();
    }
}

#[test]
fn majority_echo_and_cycle_experiments() {
    use rrfd::models::predicates::{AsyncResilient, Swmr};
    use rrfd::protocols::equivalence::{majority_echo_pattern, rounds_until_known_by_all};

    // E11a: 2 rounds of eq.3 (2f < n) make SWMR rounds.
    for &(nv, f) in &[(5usize, 2usize), (9, 4), (13, 6)] {
        let size = n(nv);
        let swmr = Swmr::new(size, f);
        for seed in 0..8u64 {
            let mut adv = RandomAdversary::new(AsyncResilient::new(size, f), seed);
            let sim = majority_echo_pattern(size, f, &mut adv, 4);
            assert!(swmr.admits_pattern(&sim), "n={nv} f={f} seed={seed}");
        }
    }

    // E11b: the ring reaches global knowledge within n rounds.
    use rrfd::models::adversary::RingMiss;
    for nv in [3usize, 6, 11, 20] {
        let size = n(nv);
        let mut det = RingMiss::new(size);
        let rounds =
            rounds_until_known_by_all(size, &mut det, 2 * nv as u32).expect("paper's bound");
        assert!(rounds <= nv as u32, "n={nv}: {rounds} rounds");
    }
}
