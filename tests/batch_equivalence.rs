//! Differential proof that the multi-tenant batch pool is behaviorally
//! invisible.
//!
//! The pool multiplexes many [`rrfd::core::EngineRun`]s over few threads,
//! recycles emission buffers across instance turnover, and interleaves
//! admissions with retirements — none of which may change what any single
//! instance computes. These tests pit [`rrfd::pool::run_batch`] against
//! [`rrfd::pool::run_sequential`] — the naive one-`Engine::run`-per-
//! instance loop — and demand *exact* equality per instance: same
//! decision summary or same [`EngineError`], and byte-identical
//! [`RunTrace`]s, for every protocol class in the mix. The mix includes
//! the `stall` class, whose instances always die in
//! `RoundLimitExceeded` mid-batch, so the suite also proves failure
//! containment: an erroring instance never poisons its shard's
//! neighbors.

use rrfd::core::EngineError;
use rrfd::pool::{run_batch, run_sequential, BatchReport, MixSpec, PoolConfig};

/// Runs batch and sequential on the same `(mix, instances, seed)` with
/// full result and trace retention, and diffs them instance by instance.
fn assert_batch_matches_sequential(mix: &MixSpec, instances: u64, shards: usize, seed: u64) {
    let batch_config = PoolConfig::new(shards)
        .seed(seed)
        .keep_results(true)
        .capture_traces(true);
    let seq_config = PoolConfig::new(1)
        .seed(seed)
        .keep_results(true)
        .capture_traces(true);
    let batch = run_batch(mix, instances, &batch_config);
    let seq = run_sequential(mix, instances, &seq_config);

    assert_eq!(batch.completed, seq.completed);
    assert_eq!(batch.errored, seq.errored);
    assert_eq!(batch.rounds, seq.rounds);
    assert_eq!(batch.classes, seq.classes);
    assert_eq!(batch.results.len(), instances as usize);
    assert_eq!(seq.results.len(), instances as usize);
    for (b, s) in batch.results.iter().zip(&seq.results) {
        assert_eq!(b.instance, s.instance);
        assert_eq!(b.class, s.class, "instance {}", b.instance);
        assert_eq!(b.outcome, s.outcome, "instance {}", b.instance);
        assert_eq!(
            b.trace, s.trace,
            "trace diverged on instance {} ({})",
            b.instance, b.class
        );
        assert!(b.trace.is_some(), "instance {} lost its trace", b.instance);
    }
}

#[test]
fn default_mix_is_trace_identical_across_shard_counts() {
    let mix = MixSpec::default_mix();
    for shards in [1usize, 2, 3, 8] {
        assert_batch_matches_sequential(&mix, 63, shards, 0xBA7C4);
    }
}

#[test]
fn default_mix_is_trace_identical_across_seeds() {
    let mix = MixSpec::default_mix();
    for seed in [0u64, 1, 0x5EED_CAFE_F00D_0002] {
        assert_batch_matches_sequential(&mix, 36, 4, seed);
    }
}

#[test]
fn single_class_mixes_are_trace_identical() {
    for spec in [
        "kset:n=8:k=2:w=1",
        "floodmin:n=6:f=2:k=1:w=1",
        "sconsensus:n=5:w=1",
        "early:n=6:f=2:w=1",
        "stall:n=4:rounds=3:w=1",
    ] {
        let mix = MixSpec::parse(spec).unwrap();
        assert_batch_matches_sequential(&mix, 24, 3, 9);
    }
}

#[test]
fn tiny_window_does_not_change_behavior() {
    // Window 1 maximizes admission/retirement interleaving (every
    // emission buffer is recycled immediately); the instances must not
    // notice.
    let mix = MixSpec::default_mix();
    let tight = PoolConfig::new(2)
        .window(1)
        .seed(5)
        .keep_results(true)
        .capture_traces(true);
    let roomy = PoolConfig::new(2)
        .seed(5)
        .keep_results(true)
        .capture_traces(true);
    let a = run_batch(&mix, 45, &tight);
    let b = run_batch(&mix, 45, &roomy);
    assert_eq!(a.results, b.results);
}

/// Shard-mates of an erroring instance, per the pool's deterministic
/// `id mod shards` placement.
fn shard_mates(report: &BatchReport, shards: usize, id: u64) -> Vec<u64> {
    report
        .results
        .iter()
        .map(|r| r.instance)
        .filter(|&other| other != id && other % shards as u64 == id % shards as u64)
        .collect()
}

#[test]
fn erroring_instances_fail_alone() {
    // Half the mix stalls into RoundLimitExceeded; every stall failure
    // must be contained to its own instance.
    let mix = MixSpec::parse("stall:n=3:rounds=2:w=1,kset:n=4:k=1:w=1").unwrap();
    let shards = 2usize;
    let config = PoolConfig::new(shards).seed(11).keep_results(true);
    let report = run_batch(&mix, 32, &config);
    assert_eq!(report.completed, 16);
    assert_eq!(report.errored, 16);

    let errored: Vec<u64> = report
        .results
        .iter()
        .filter(|r| r.outcome.is_err())
        .map(|r| r.instance)
        .collect();
    assert_eq!(errored.len(), 16);
    for &id in &errored {
        let by_id = |want: u64| report.results.iter().find(|r| r.instance == want).unwrap();
        assert!(
            matches!(
                by_id(id).outcome,
                Err(EngineError::RoundLimitExceeded { .. })
            ),
            "stall instance {id} should die at its round limit"
        );
        // Every kset instance sharing the shard still decided.
        for mate in shard_mates(&report, shards, id) {
            let mate_result = by_id(mate);
            if mate_result.class == "kset" {
                assert!(
                    mate_result.outcome.is_ok(),
                    "instance {mate} poisoned by shard-mate {id}"
                );
            }
        }
    }
}
