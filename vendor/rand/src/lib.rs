//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so the
//! workspace vendors the small slice of the rand 0.8 API it actually uses:
//! a seedable, clonable [`rngs::StdRng`] (xoshiro256++ core, SplitMix64
//! seeding), uniform integer sampling over ranges, `gen_bool`, and the
//! sequence helpers `SliceRandom` / `IteratorRandom`. The streams differ
//! from upstream rand, but every consumer in this workspace only needs
//! *deterministic* randomness, not rand's exact streams.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Types that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 — used to expand a `u64` seed into xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Random number generators.
pub mod rngs {
    use super::{splitmix64, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }
}

/// A type usable as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range. Panics when the range is empty.
    fn sample(self, rng: &mut rngs::StdRng) -> T;
}

/// Rejection-free-enough uniform draw in `[0, bound)` via Lemire reduction.
fn uniform_below(rng: &mut rngs::StdRng, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    // Widening multiply keeps the bias below 2^-64 per draw after one
    // rejection pass — indistinguishable for simulation purposes.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(bound);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )+};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// The user-facing generator interface.
pub trait Rng {
    /// Raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range`; panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: AsStdRng,
    {
        range.sample(self.as_std_rng())
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 high bits give a uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

/// Internal plumbing: the sampling code needs the concrete generator.
pub trait AsStdRng {
    fn as_std_rng(&mut self) -> &mut rngs::StdRng;
}

impl AsStdRng for rngs::StdRng {
    fn as_std_rng(&mut self) -> &mut rngs::StdRng {
        self
    }
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        rngs::StdRng::next_u64(self)
    }
}

/// Sequence-related helpers (`rand::seq`).
pub mod seq {
    use super::{rngs::StdRng, SampleRange};

    /// Random helpers on slices.
    pub trait SliceRandom {
        type Item;

        /// A uniformly chosen reference, or `None` on an empty slice.
        fn choose(&self, rng: &mut StdRng) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle(&mut self, rng: &mut StdRng);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose(&self, rng: &mut StdRng) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let idx = (0..self.len()).sample(rng);
                Some(&self[idx])
            }
        }

        fn shuffle(&mut self, rng: &mut StdRng) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample(rng);
                self.swap(i, j);
            }
        }
    }

    /// Random helpers on iterators (reservoir sampling).
    pub trait IteratorRandom: Iterator + Sized {
        /// A uniformly chosen element, or `None` on an empty iterator.
        fn choose(self, rng: &mut StdRng) -> Option<Self::Item> {
            let mut chosen = None;
            for (seen, item) in self.enumerate() {
                if (0..=seen).sample(rng) == 0 {
                    chosen = Some(item);
                }
            }
            chosen
        }

        /// Up to `amount` distinct elements; order is unspecified.
        fn choose_multiple(self, rng: &mut StdRng, amount: usize) -> Vec<Self::Item> {
            let mut reservoir: Vec<Self::Item> = Vec::with_capacity(amount);
            for (seen, item) in self.enumerate() {
                if reservoir.len() < amount {
                    reservoir.push(item);
                } else {
                    let j = (0..=seen).sample(rng);
                    if j < amount {
                        reservoir[j] = item;
                    }
                }
            }
            reservoir
        }
    }

    impl<I: Iterator> IteratorRandom for I {}
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{IteratorRandom, SliceRandom};
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn clone_preserves_stream() {
        let mut a = StdRng::seed_from_u64(7);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = rng.gen_range(1..=5);
            assert!((1..=5).contains(&y));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..6 should appear");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _: usize = rng.gen_range(5..5);
    }

    #[test]
    fn slice_choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(5);
        let items = [10, 20, 30];
        assert!(items.contains(items.choose(&mut rng).unwrap()));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());

        let mut perm: Vec<usize> = (0..10).collect();
        perm.shuffle(&mut rng);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn iterator_choose_multiple_is_distinct() {
        let mut rng = StdRng::seed_from_u64(6);
        let picked = (0..100).choose_multiple(&mut rng, 10);
        assert_eq!(picked.len(), 10);
        let mut dedup = picked.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10, "choose_multiple must not repeat elements");

        assert!((0..0).choose(&mut rng).is_none());
        assert_eq!((0..3).choose_multiple(&mut rng, 10).len(), 3);
    }
}
