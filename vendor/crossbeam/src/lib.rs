//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`channel`] is provided, backed by `std::sync::mpsc`. The std
//! `Sender` has been `Clone` since 1.0 and mpsc queues are unbounded, so the
//! semantics the runtime relies on (multi-producer fan-in to a coordinator,
//! blocking `recv`, `recv_timeout`) carry over directly.

#![forbid(unsafe_code)]

/// Multi-producer single-consumer channels (`crossbeam::channel`).
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError};

    /// The sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    // Derived Clone would demand T: Clone; the underlying sender never does.
    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends `msg`, failing only when every `Receiver` is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg)
        }
    }

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every `Sender` is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Returns an already-buffered message without blocking.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates an unbounded channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_in_from_clones() {
            let (tx, rx) = unbounded();
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let tx = tx.clone();
                    std::thread::spawn(move || tx.send(i).unwrap())
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            drop(tx);
            let mut got: Vec<i32> = std::iter::from_fn(|| rx.recv().ok()).collect();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
        }

        #[test]
        fn recv_timeout_expires() {
            let (_tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn recv_fails_when_senders_dropped() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert!(rx.recv().is_err());
        }
    }
}
