//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind the parking_lot calling convention:
//! [`Mutex::lock`] returns the guard directly (poisoning is swallowed — a
//! panicking holder does not wedge every later locker), and
//! [`Condvar::wait_for`] takes the guard by `&mut` rather than by value.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion primitive with parking_lot's panic-tolerant API.
#[derive(Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds an `Option` so [`Condvar::wait_for`] can momentarily hand the
/// underlying std guard to `Condvar::wait_timeout` (which takes it by value)
/// and slot it back afterwards; outside that window it is always `Some`.
pub struct MutexGuard<'a, T> {
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available. Unlike std, a panic in a
    /// previous holder does not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Consumes the mutex and returns the guarded value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &*guard).finish(),
            Err(_) => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present outside wait")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present outside wait")
    }
}

/// Result of a timed wait on a [`Condvar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` when the wait ended because the timeout elapsed.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Wakes a single waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Atomically releases the guard's lock and waits up to `timeout` for a
    /// notification; the lock is re-acquired before returning. Spurious
    /// wakeups are possible, exactly as in std and parking_lot.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.guard.take().expect("guard present outside wait");
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_mutates_through_guard() {
        let m = Mutex::new(0);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1, "lock must not stay poisoned");
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut guard = m.lock();
        assert!(cv
            .wait_for(&mut guard, Duration::from_millis(10))
            .timed_out());
    }

    #[test]
    fn wait_for_sees_notification() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                if cv.wait_for(&mut ready, Duration::from_secs(5)).timed_out() {
                    return false;
                }
            }
            true
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        assert!(waiter.join().unwrap());
    }
}
