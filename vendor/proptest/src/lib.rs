//! Offline stand-in for the `proptest` crate.
//!
//! Provides the surface this workspace's property tests use: the
//! [`Strategy`](strategy::Strategy) trait with `prop_map`, range /
//! tuple / `any::<T>()` strategies, `prop::collection::{vec, btree_set}`,
//! and the `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! The runner is deliberately simple: each test draws `PROPTEST_CASES`
//! (default 64) inputs from a generator seeded by the test's module path, so
//! failures are reproducible run-to-run, and every failure report includes
//! the generated inputs. There is no shrinking and no persistence — a
//! failing case prints its inputs instead of minimising them, which has
//! proven enough to debug with since the inputs here are small.

#![forbid(unsafe_code)]

pub use rand::rngs::StdRng as TestRng;
pub use rand::SeedableRng;

/// The `Strategy` trait and combinators.
pub mod strategy {
    use super::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `map`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, map }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )+};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    /// Always yields a clone of the given value (`proptest::strategy::Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy for [`super::arbitrary::Arbitrary`] types; built by
    /// [`super::arbitrary::any`].
    pub struct Any<A> {
        pub(crate) _marker: PhantomData<A>,
    }

    impl<A: super::arbitrary::Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }
}

/// `any::<T>()` and the `Arbitrary` trait backing it.
pub mod arbitrary {
    use super::strategy::Any;
    use super::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical unconstrained generation strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy of all values of `A` (`proptest::arbitrary::any`).
    #[must_use]
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any {
            _marker: PhantomData,
        }
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size band for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                lo: exact,
                hi: exact,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.lo..=self.hi)
        }
    }

    /// Strategy for `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s of values from `element`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `BTreeSet` strategy targeting a size drawn from `size`. If the
    /// element domain is too small to reach the target, the set saturates
    /// at whatever distinct values a bounded number of draws produced.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 20 + 50 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// The case runner behind the `proptest!` macro.
pub mod test_runner {
    use super::{SeedableRng, TestRng};
    use std::fmt;

    /// A failed property within one generated case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// FNV-1a, used to derive a per-test seed from its name.
    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }

    /// How many cases each property runs (`PROPTEST_CASES`, default 64).
    #[must_use]
    pub fn case_count() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// Drives `case` once per generated input set. `case` returns the
    /// pretty-printed inputs plus the (panic-caught) property outcome, so
    /// every failure mode reports what was generated.
    pub fn run_cases<F>(test_name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> (String, std::thread::Result<Result<(), TestCaseError>>),
    {
        let cases = case_count();
        let base = fnv1a(test_name.as_bytes());
        for i in 0..cases {
            let seed = base ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut rng = TestRng::seed_from_u64(seed);
            let (inputs, outcome) = case(&mut rng);
            match outcome {
                Ok(Ok(())) => {}
                Ok(Err(e)) => panic!(
                    "[{test_name}] case {i}/{cases} (seed {seed:#018x}) failed: {e}\n\
                     generated inputs: {inputs}"
                ),
                Err(payload) => {
                    eprintln!(
                        "[{test_name}] case {i}/{cases} (seed {seed:#018x}) panicked;\n\
                         generated inputs: {inputs}"
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

/// Sub-path namespace used by the prelude (`prop::collection::...`).
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_cases(
                    concat!(module_path!(), "::", stringify!($name)),
                    |__rng| {
                        $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                        let __inputs = format!(
                            concat!($(stringify!($arg), " = {:?}; "),+),
                            $(&$arg),+
                        );
                        let __outcome = ::std::panic::catch_unwind(
                            ::std::panic::AssertUnwindSafe(
                                move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                                    $body
                                    ::std::result::Result::Ok(())
                                },
                            ),
                        );
                        (__inputs, __outcome)
                    },
                );
            }
        )*
    };
}

/// Fails the current case (with early return) when `$cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

/// Fails the current case when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::{SeedableRng, TestRng};

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::seed_from_u64(0);
        for _ in 0..200 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = TestRng::seed_from_u64(1);
        let doubled = (1usize..5).prop_map(|v| v * 2).generate(&mut rng);
        assert!([2, 4, 6, 8].contains(&doubled));
    }

    #[test]
    fn vec_respects_size_band() {
        let mut rng = TestRng::seed_from_u64(2);
        for _ in 0..100 {
            let v = prop::collection::vec(0u64..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn btree_set_is_distinct_and_bounded() {
        let mut rng = TestRng::seed_from_u64(3);
        for _ in 0..100 {
            let s = prop::collection::btree_set(0usize..6, 0..=6).generate(&mut rng);
            assert!(s.len() <= 6);
            assert!(s.iter().all(|&v| v < 6));
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = TestRng::seed_from_u64(4);
        let (a, b) = (0usize..5, 10u64..20).generate(&mut rng);
        assert!(a < 5);
        assert!((10..20).contains(&b));
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(a in 0usize..10, b in any::<u64>()) {
            prop_assert!(a < 10);
            prop_assert_eq!(b, b);
            prop_assert_ne!(a, 10);
        }
    }

    #[test]
    fn failing_property_reports_inputs() {
        let caught = std::panic::catch_unwind(|| {
            crate::test_runner::run_cases("always_fails", |rng| {
                let v = (0usize..4).generate(rng);
                let inputs = format!("v = {v:?}");
                (
                    inputs,
                    Ok(Err(crate::test_runner::TestCaseError::fail("nope"))),
                )
            });
        });
        let msg = *caught.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("nope"), "{msg}");
        assert!(msg.contains("generated inputs"), "{msg}");
    }
}
