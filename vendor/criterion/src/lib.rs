//! Offline stand-in for the `criterion` crate.
//!
//! Implements the slice of the criterion 0.5 API the `rrfd-bench` benches
//! use — `Criterion`, `benchmark_group`, `bench_function` /
//! `bench_with_input`, `Bencher::iter`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros — on a simple wall-clock
//! timer. Like real criterion, the harness distinguishes *test mode*
//! (`cargo test` runs the bench binary with no `--bench` flag: each routine
//! executes once, silently, to prove it works) from *bench mode*
//! (`cargo bench` passes `--bench`: routines are timed over `sample_size`
//! batches and a mean per-iteration time is reported). No statistics, no
//! HTML reports — just enough to keep `cargo bench` informative offline.

#![forbid(unsafe_code)]

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    bench_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            // cargo bench passes `--bench`; cargo test does not.
            bench_mode: std::env::args().any(|a| a == "--bench"),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes in bench mode.
    #[must_use]
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Accepted for API compatibility; the stub takes no warm-up.
    #[must_use]
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility; sampling is count-based here.
    #[must_use]
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(&id.into().label, f);
    }

    fn run_one<F>(&mut self, label: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: if self.bench_mode { self.sample_size } else { 1 },
            iterations: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        if self.bench_mode && bencher.iterations > 0 {
            let per_iter = bencher.elapsed.as_nanos() / u128::from(bencher.iterations.max(1));
            println!(
                "{label:<60} {per_iter:>12} ns/iter ({} iters)",
                bencher.iterations
            );
        }
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark identified by `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        self.criterion.run_one(&label, f);
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        self.criterion.run_one(&label, |b| f(b, input));
    }

    /// Ends the group. (Real criterion prints summaries here; the stub
    /// prints as it goes.)
    pub fn finish(self) {}
}

/// Identifies one benchmark: a function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id like `"name/parameter"`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Hands the routine under measurement to the harness.
pub struct Bencher {
    samples: usize,
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, preventing the optimiser from discarding its result.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.elapsed += start.elapsed();
            self.iterations += 1;
        }
    }
}

/// Mirrors `criterion::criterion_group!`: defines a function running each
/// target against a shared `Criterion` configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirrors `criterion::criterion_main!`: a `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn test_mode_runs_routine_once() {
        let mut c = Criterion {
            sample_size: 10,
            bench_mode: false,
        };
        let count = AtomicU64::new(0);
        let mut group = c.benchmark_group("g");
        group.bench_function(BenchmarkId::new("f", 1), |b| {
            b.iter(|| count.fetch_add(1, Ordering::Relaxed))
        });
        group.finish();
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn bench_mode_takes_sample_size_iterations() {
        let mut c = Criterion {
            sample_size: 7,
            bench_mode: true,
        };
        let count = AtomicU64::new(0);
        c.bench_function("solo", |b| b.iter(|| count.fetch_add(1, Ordering::Relaxed)));
        assert_eq!(count.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn bench_with_input_passes_the_input() {
        let mut c = Criterion {
            sample_size: 1,
            bench_mode: false,
        };
        let mut group = c.benchmark_group("g");
        let mut seen = 0usize;
        group.bench_with_input(BenchmarkId::new("f", 9), &9usize, |b, &n| {
            b.iter(|| n);
            seen = n;
        });
        group.finish();
        assert_eq!(seen, 9);
    }

    #[test]
    fn id_renders_function_and_parameter() {
        assert_eq!(BenchmarkId::new("f", "n4").to_string(), "f/n4");
    }
}
