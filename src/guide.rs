//! # A guided tour: the paper, section by section, in code
//!
//! This module is documentation only — a map from every section of
//! *"Round-by-Round Fault Detectors: Unifying Synchrony and Asynchrony"*
//! to the code that reproduces it. Read it top to bottom alongside the
//! paper, or jump from a section heading to the linked items.
//!
//! ## §1 — The model
//!
//! The abstract algorithm skeleton
//!
//! ```text
//! r := 1
//! forever do
//!     compute messages m_{i,r} for round r
//!     emit m_{i,r}
//!     (wait until) ∀ p_j ∈ S: received m_{j,r} or p_j ∈ D(i,r)
//!     r := r + 1
//! end
//! ```
//!
//! is [`Engine`](crate::core::Engine): protocols implement
//! [`RoundProtocol`](crate::core::RoundProtocol) (an `emit` and a
//! `deliver`), the RRFD implements
//! [`FaultDetector`](crate::core::FaultDetector) (one
//! [`RoundFaults`](crate::core::RoundFaults) per round), and the engine
//! enforces the covering property `S(i,r) ∪ D(i,r) = S` plus the universal
//! well-formedness rule `D(i,r) ≠ S`
//! ([`ill_formed_process`](crate::core::ill_formed_process)).
//!
//! The same loop also runs on real OS threads with the detector as a
//! coordinator service: [`ThreadedEngine`](crate::runtime::ThreadedEngine).
//!
//! A model is a predicate over `{D(i,r)}`:
//! [`RrfdPredicate`](crate::core::RrfdPredicate), with lattice combinators
//! [`And`](crate::core::And) and [`Or`](crate::core::Or). The engine
//! validates every detector move against the model, so the detector is an
//! *adversary inside the system*, exactly as §1 frames it.
//!
//! ## §2 — The model zoo
//!
//! | Item | System | Predicate | Simulator |
//! |------|--------|-----------|-----------|
//! | 1 | synchronous send-omission | [`SendOmission`](crate::models::predicates::SendOmission) (eq. 1) | [`sync_net`](crate::sims::sync_net) with [`RandomOmission`](crate::sims::sync_net::RandomOmission) |
//! | 2 | synchronous crash | [`Crash`](crate::models::predicates::Crash) (eq. 1+2) | [`sync_net`](crate::sims::sync_net) with [`RandomCrash`](crate::sims::sync_net::RandomCrash) |
//! | 3 | asynchronous message passing | [`AsyncResilient`](crate::models::predicates::AsyncResilient) (eq. 3) | [`async_net`](crate::sims::async_net) + the round overlay [`async_rounds`](crate::sims::async_rounds) |
//! | 3 (B) | "System B" | [`SystemB`](crate::models::predicates::SystemB) | two-round echo: [`system_b_echo_pattern`](crate::protocols::equivalence::system_b_echo_pattern) |
//! | 4 | SWMR shared memory | [`Swmr`](crate::models::predicates::Swmr) (eq. 3+4), alternative clause [`AntiSymmetric`](crate::models::predicates::AntiSymmetric) | [`shared_mem`](crate::sims::shared_mem); majority echo [`majority_echo_pattern`](crate::protocols::equivalence::majority_echo_pattern); registers from messages: [`abd`](crate::protocols::abd) |
//! | 5 | atomic snapshot | [`Snapshot`](crate::models::predicates::Snapshot) | snapshot object in [`shared_mem`](crate::sims::shared_mem); its root, the Borowsky-Gafni immediate snapshot: [`immediate_snapshot`](crate::protocols::immediate_snapshot) |
//! | 6 | detector S | [`DetectorS`](crate::models::predicates::DetectorS) | [`detector_s`](crate::sims::detector_s); the payoff, consensus from `P6` alone: [`s_consensus`](crate::protocols::s_consensus) |
//!
//! The submodel relation (`A ⊆ B` iff `P_A ⇒ P_B`) is machine-checked by
//! sampling in [`submodel`](crate::models::submodel), and *exhaustively*
//! for `n ≤ 4` via [`enumerate`](crate::models::enumerate).
//!
//! The paper's item-4 discussion — the miss-ring that satisfies
//! antisymmetry but not eq. 4, and the claim that some process becomes
//! known to all within `n` rounds (conjectured: two) — is executable via
//! [`RingMiss`](crate::models::adversary::RingMiss) and
//! [`rounds_until_known_by_all`](crate::protocols::equivalence::rounds_until_known_by_all).
//! Measured answer: two rounds, in every sampled antisymmetric run
//! (experiment E11).
//!
//! ## §3 — k-set agreement
//!
//! The k-uncertainty detector
//! `|∪_i D(i,r) ∖ ∩_i D(i,r)| < k` is
//! [`KUncertainty`](crate::models::predicates::KUncertainty).
//!
//! * **Theorem 3.1** (one-round algorithm):
//!   [`one_round_kset`](crate::protocols::kset::one_round_kset). The test
//!   suite proves it by enumeration for `n ≤ 4` and exhibits the `k`-value
//!   worst case with
//!   [`SpreadKUncertainty`](crate::models::adversary::SpreadKUncertainty).
//! * **Corollary 3.2** (k-set agreement with `k − 1` crashes):
//!   [`SnapshotKSet`](crate::protocols::kset::SnapshotKSet) on the
//!   snapshot simulator.
//! * **Theorem 3.3** (detector from a k-set-consensus object):
//!   [`build_detector_pattern`](crate::protocols::detector_from_kset::build_detector_pattern),
//!   using the oracle objects of
//!   [`SharedMemSim::with_kset_objects`](crate::sims::shared_mem::SharedMemSim::with_kset_objects).
//!
//! ## §4 — Relating synchrony and asynchrony
//!
//! * **Theorem 4.1** (omission rounds from k-resilient snapshots):
//!   [`run_as_omission`](crate::protocols::sync_sim::run_as_omission) —
//!   the simulation is the identity; the theorem is predicate arithmetic,
//!   certified on every run.
//! * **§4.2 adopt-commit**:
//!   [`AdoptCommitMachine`](crate::protocols::adopt_commit::AdoptCommitMachine),
//!   verified over *all* 3432 two-process interleavings via
//!   [`explore_schedules`](crate::sims::explore::explore_schedules).
//! * **Theorem 4.3** (crash rounds via adopt-commit):
//!   [`run_crash_simulation`](crate::protocols::sync_sim::run_crash_simulation)
//!   — three asynchronous phases per simulated round, with the extracted
//!   pattern certified against the crash predicate.
//! * **Corollaries 4.2/4.4** (the `⌊f/k⌋ + 1` bound): the upper bound is
//!   [`FloodMin`](crate::protocols::kset::FloodMin); the lower bound's
//!   hard execution is
//!   [`SilencingCrash`](crate::models::adversary::SilencingCrash), which
//!   forces `k + 1` values at budget `⌊f/k⌋` and loses at `⌊f/k⌋ + 1`.
//!
//! ## §5 — The semi-synchronous model
//!
//! The Dolev-Dwork-Stockmeyer model is
//! [`SemiSyncSim`](crate::sims::semi_sync::SemiSyncSim) (atomic
//! receive-all/broadcast steps, synchronous broadcast delivery). The
//! 2-step round primitive of Theorem 5.1 and the resulting 2-step
//! consensus — the answer to DDS's open problem — are
//! [`TwoStepConsensus`](crate::protocols::semi_sync_consensus::TwoStepConsensus);
//! the 2n-step baseline shape is
//! [`RepeatedRounds`](crate::protocols::semi_sync_consensus::RepeatedRounds).
//! Equation 5 (identical views) is
//! [`IdenticalViews`](crate::models::predicates::IdenticalViews), and the
//! whole claim is proved by enumeration over every schedule and crash
//! placement for small `n`.
//!
//! ## §7 — "We advocate using them"
//!
//! The paper closes by proposing RRFDs as a setting for real algorithms.
//! The extensions here take that up:
//!
//! * [`EarlyStoppingConsensus`](crate::protocols::early_stopping::EarlyStoppingConsensus)
//!   — decide in `min(f′ + 2, f + 1)` rounds under the crash predicate.
//! * [`SRotatingConsensus`](crate::protocols::s_consensus::SRotatingConsensus)
//!   — consensus from `P6` alone.
//! * [`EventuallyStrong`](crate::models::predicates::EventuallyStrong) and
//!   [`DiamondSConsensus`](crate::protocols::diamond_s_consensus::DiamondSConsensus)
//!   — ◊S as an RRFD (stabilization round in the predicate) and the
//!   Chandra-Toueg-style quorum-locking consensus it supports, rederiving
//!   the classical failure-detector result inside the framework.
//! * The exhaustive explorers
//!   ([`explore`](crate::sims::explore),
//!   [`enumerate`](crate::models::enumerate)) — treat the predicate as a
//!   first-class object and *enumerate* adversaries, something only
//!   possible because the detector is part of the system.
//!
//! ## Reproducing the numbers
//!
//! `EXPERIMENTS.md` records paper-claim vs measured for every experiment
//! E1–E17; regenerate it with
//! `cargo run -p rrfd-bench --bin experiments --release`. The criterion
//! benches (`cargo bench --workspace`) produce the latency series, one
//! group per experiment.
