//! # RRFD — Round-by-Round Fault Detectors
//!
//! A production-quality Rust reproduction of Eli Gafni's PODC 1998 paper
//! *"Round-by-Round Fault Detectors: Unifying Synchrony and Asynchrony"*.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — the RRFD model itself: processes, fault patterns `D(i,r)`,
//!   predicates, the emit/receive round engine, and task specifications.
//! * [`models`] — the predicate zoo of Section 2 of the paper and the
//!   adversaries (random and worst-case) that drive each model.
//! * [`sims`] — the classical *non-RRFD* substrates the paper relates to:
//!   asynchronous message passing, SWMR/snapshot shared memory, synchronous
//!   message passing, the semi-synchronous DDS model, and detector-S systems.
//! * [`protocols`] — the paper's algorithms and simulations: one-round k-set
//!   agreement (Theorem 3.1), adopt-commit, flood-set, the synchronous-round
//!   simulations of Theorems 4.1/4.3, and the 2-step semi-synchronous
//!   consensus of Section 5.
//! * [`runtime`] — a threaded execution harness that runs RRFD algorithms on
//!   real OS threads with a coordinator fault detector.
//! * [`pool`] — the multi-tenant batch execution engine: thousands of
//!   independent protocol instances (mixed protocols, sizes, adversaries)
//!   multiplexed round-by-round across a sharded worker pool, with slab
//!   slot and emission-buffer reuse (DESIGN.md §13).
//! * [`obs`] — round-structured observability: deterministic counters,
//!   gauges, and histograms keyed by `(metric, process, round)`, with
//!   JSONL and Prometheus exporters and a pluggable clock.
//!
//! ## Quickstart
//!
//! Solve 2-set agreement in a single round among 8 processes, driving the
//! system with a random adversary constrained by the Theorem 3.1 predicate:
//!
//! ```
//! use rrfd::core::{ProcessId, SystemSize};
//! use rrfd::models::adversary::RandomAdversary;
//! use rrfd::models::predicates::KUncertainty;
//! use rrfd::protocols::kset::one_round_kset;
//!
//! let n = SystemSize::new(8).unwrap();
//! let inputs: Vec<u64> = (0..8).map(|i| 100 + i).collect();
//! let mut adversary = RandomAdversary::new(KUncertainty::new(n, 2), 0xC0FFEE);
//! let decisions = one_round_kset(n, 2, &inputs, &mut adversary).unwrap();
//!
//! let mut distinct: Vec<u64> = decisions.clone();
//! distinct.sort_unstable();
//! distinct.dedup();
//! assert!(distinct.len() <= 2);
//! for d in &decisions {
//!     assert!(inputs.contains(d));
//! }
//! ```

pub mod guide;

pub use rrfd_core as core;
pub use rrfd_engine_pool as pool;
pub use rrfd_models as models;
pub use rrfd_obs as obs;
pub use rrfd_protocols as protocols;
pub use rrfd_runtime as runtime;
pub use rrfd_sims as sims;
