//! Corollary 3.2 (Chaudhuri): k-set agreement is solvable in an
//! asynchronous shared-memory system with at most `k − 1` crash failures.
//!
//! The algorithm: write your input, snapshot until at least `n − (k − 1)`
//! inputs are visible, decide the minimum seen. Any `(n − k + 1)`-subset of
//! the inputs must contain one of the `k` smallest, so every decision lands
//! in the `k` smallest inputs — at most `k` distinct values.
//!
//! In the paper this is an immediate corollary of Theorem 3.1, since
//! `(k−1)`-resilient snapshot memory supports the k-uncertainty detector;
//! here we also implement it directly on the [`rrfd_sims::shared_mem`]
//! simulator so the claim is exercised against real adversarial
//! interleavings (experiment E4).

use rrfd_core::task::Value;
use rrfd_core::SystemSize;
use rrfd_sims::shared_mem::{Action, MemProcess, Observation};

/// The snapshot-based k-set agreement process.
#[derive(Debug, Clone)]
pub struct SnapshotKSet {
    input: Value,
    quorum: usize,
}

impl SnapshotKSet {
    /// Creates a process proposing `input` in a system of `n` processes
    /// with agreement parameter `k` (tolerating `k − 1` crashes).
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ k ≤ n`.
    #[must_use]
    pub fn new(n: SystemSize, k: usize, input: Value) -> Self {
        assert!(k >= 1 && k <= n.get(), "need 1 ≤ k ≤ n");
        SnapshotKSet {
            input,
            quorum: n.get() - (k - 1),
        }
    }

    /// The quorum `n − (k − 1)` of visible inputs required before deciding.
    #[must_use]
    pub fn quorum(&self) -> usize {
        self.quorum
    }
}

impl MemProcess<Value> for SnapshotKSet {
    type Output = Value;

    fn step(&mut self, obs: Observation<Value>) -> Action<Value, Value> {
        match obs {
            Observation::Start => Action::Write {
                bank: 0,
                value: self.input,
            },
            Observation::Written => Action::Snapshot { bank: 0 },
            Observation::SnapshotView(view) => {
                let seen: Vec<Value> = view.into_iter().flatten().collect();
                if seen.len() >= self.quorum {
                    Action::Decide(*seen.iter().min().expect("quorum ≥ 1"))
                } else {
                    Action::Snapshot { bank: 0 }
                }
            }
            other => unreachable!("snapshot k-set only writes and snapshots: {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrfd_core::task::KSetAgreement;
    use rrfd_core::ProcessId;
    use rrfd_sims::shared_mem::{FairScheduler, RandomScheduler, SharedMemSim};

    fn n(v: usize) -> SystemSize {
        SystemSize::new(v).unwrap()
    }

    #[test]
    fn fault_free_run_is_consensus_like() {
        let size = n(5);
        let inputs: Vec<Value> = vec![50, 40, 30, 20, 10];
        let procs: Vec<_> = inputs
            .iter()
            .map(|&v| SnapshotKSet::new(size, 1, v))
            .collect();
        let report = SharedMemSim::new(size, 1)
            .with_snapshots()
            .run(procs, &mut FairScheduler::new())
            .unwrap();
        // k = 1 with zero crashes: everyone waits for all inputs and
        // decides the global minimum.
        for out in report.outputs {
            assert_eq!(out, Some(10));
        }
    }

    #[test]
    fn k_minus_one_crashes_keep_at_most_k_values() {
        for &(nv, k) in &[(5usize, 2usize), (6, 3), (8, 4)] {
            let size = n(nv);
            let inputs: Vec<Value> = (0..nv as u64).map(|i| 1000 + i).collect();
            let task = KSetAgreement::new(k);
            for seed in 0..25u64 {
                let procs: Vec<_> = inputs
                    .iter()
                    .map(|&v| SnapshotKSet::new(size, k, v))
                    .collect();
                let mut sched = RandomScheduler::new(seed, k - 1).crash_prob(0.05);
                let report = SharedMemSim::new(size, 1)
                    .with_snapshots()
                    .run(procs, &mut sched)
                    .unwrap();
                assert!(report.all_correct_decided(), "n={nv} k={k} seed={seed}");
                task.check(&inputs, &report.outputs)
                    .unwrap_or_else(|v| panic!("n={nv} k={k} seed={seed}: {v}"));
            }
        }
    }

    #[test]
    fn decisions_come_from_the_k_smallest_inputs() {
        let size = n(6);
        let inputs: Vec<Value> = vec![60, 10, 50, 20, 40, 30];
        let k = 3;
        for seed in 0..20u64 {
            let procs: Vec<_> = inputs
                .iter()
                .map(|&v| SnapshotKSet::new(size, k, v))
                .collect();
            let mut sched = RandomScheduler::new(seed, k - 1).crash_prob(0.08);
            let report = SharedMemSim::new(size, 1)
                .with_snapshots()
                .run(procs, &mut sched)
                .unwrap();
            for (i, out) in report.outputs.iter().enumerate() {
                if let Some(v) = out {
                    assert!(
                        [10, 20, 30].contains(v),
                        "seed {seed}: {} decided {v}, outside the k smallest",
                        ProcessId::new(i)
                    );
                }
            }
        }
    }

    #[test]
    fn too_many_crashes_block_the_quorum() {
        // With k crashes (one more than tolerated), survivors may wait
        // forever: the step limit fires instead of a wrong decision.
        let size = n(4);
        let k = 2;
        let procs: Vec<_> = (0..4)
            .map(|v| SnapshotKSet::new(size, k, v as Value))
            .collect();

        struct CrashTwoThenFair {
            crashed: usize,
            inner: FairScheduler,
        }
        impl rrfd_sims::shared_mem::MemScheduler for CrashTwoThenFair {
            fn next_event(
                &mut self,
                runnable: rrfd_core::IdSet,
                step: u64,
            ) -> rrfd_sims::shared_mem::MemEvent {
                if self.crashed < 2 {
                    let victim = ProcessId::new(self.crashed);
                    self.crashed += 1;
                    return rrfd_sims::shared_mem::MemEvent::Crash(victim);
                }
                self.inner.next_event(runnable, step)
            }
        }

        let err = SharedMemSim::new(size, 1)
            .with_snapshots()
            .max_steps(10_000)
            .run(
                procs,
                &mut CrashTwoThenFair {
                    crashed: 0,
                    inner: FairScheduler::new(),
                },
            )
            .unwrap_err();
        assert!(matches!(
            err,
            rrfd_sims::shared_mem::MemSimError::StepLimitExceeded { .. }
        ));
    }
}
