//! Theorem 3.1: k-set agreement in **one round** under the k-uncertainty
//! detector.
//!
//! "Using this detector, k-set consensus can be solved in one round. A
//! process `p_i` emits its value and chooses the value of the process in
//! `S − D(i,1)` with the lowest process identifier."
//!
//! The agreement argument: if `v_1, v_2` are chosen values from `p_1 < p_2`,
//! then `p_1` is in the union of the suspicion sets (whoever chose `p_2`
//! suspected `p_1`) but not in the intersection (whoever chose `p_1` did
//! not), so all-but-the-greatest chosen origins sit inside the uncertainty
//! set, whose size is below `k`.

use rrfd_core::task::Value;
use rrfd_core::{
    Control, Delivery, Engine, EngineError, FaultDetector, Round, RoundProtocol, SystemSize,
};
use rrfd_models::predicates::KUncertainty;

/// The Theorem 3.1 process: emit the input, decide the lowest-id
/// unsuspected value after round 1.
#[derive(Debug, Clone)]
pub struct OneRoundKSet {
    input: Value,
}

impl OneRoundKSet {
    /// Creates a process proposing `input`.
    #[must_use]
    pub fn new(input: Value) -> Self {
        OneRoundKSet { input }
    }
}

impl RoundProtocol for OneRoundKSet {
    type Msg = Value;
    type Output = Value;

    fn emit(&mut self, _round: Round) -> Value {
        self.input
    }

    fn deliver(&mut self, d: Delivery<'_, Value>) -> Control<Value> {
        let winner = d
            .heard_from()
            .min()
            .expect("well-formedness guarantees D(i,r) ≠ S, so someone was heard");
        let value = *d.get(winner).expect("winner was heard");
        Control::Decide(value)
    }
}

/// Runs the one-round algorithm end to end: `n` processes with `inputs`,
/// driven by `detector`, validated against the `KUncertainty(n, k)`
/// predicate.
///
/// Returns the decisions by process.
///
/// # Errors
///
/// Propagates [`EngineError`] — in particular a
/// [`rrfd_core::PatternViolation`] if `detector` steps outside the
/// k-uncertainty model.
///
/// # Panics
///
/// Panics if `inputs.len() != n`.
pub fn one_round_kset<D>(
    n: SystemSize,
    k: usize,
    inputs: &[Value],
    detector: &mut D,
) -> Result<Vec<Value>, EngineError>
where
    D: FaultDetector + ?Sized,
{
    assert_eq!(inputs.len(), n.get(), "one input per process");
    let model = KUncertainty::new(n, k);
    let protocols: Vec<OneRoundKSet> = inputs.iter().map(|&v| OneRoundKSet::new(v)).collect();
    let report = Engine::new(n).run(protocols, detector, &model)?;
    debug_assert_eq!(report.rounds_executed, 1, "Theorem 3.1 is one-round");
    Ok(report
        .outputs()
        .into_iter()
        .map(|o| o.expect("every process decides in round 1"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrfd_core::task::KSetAgreement;
    use rrfd_core::{IdSet, ProcessId, RoundFaults};
    use rrfd_models::adversary::{NoFailures, RandomAdversary, ScriptedDetector};

    fn n(v: usize) -> SystemSize {
        SystemSize::new(v).unwrap()
    }

    fn inputs(count: usize) -> Vec<Value> {
        (0..count as u64).map(|i| 100 + i).collect()
    }

    #[test]
    fn fault_free_round_reaches_consensus() {
        let size = n(5);
        let ins = inputs(5);
        let decisions = one_round_kset(size, 1, &ins, &mut NoFailures::new(size)).unwrap();
        // Everyone hears everyone; all choose p0's value.
        assert!(decisions.iter().all(|&d| d == 100));
    }

    #[test]
    fn worst_case_uncertainty_still_within_k() {
        // Hand-build the k = 2 worst case: p0 contested (suspected by some).
        let size = n(4);
        let ins = inputs(4);
        let contested = IdSet::singleton(ProcessId::new(0));
        let sets = vec![IdSet::empty(), contested, IdSet::empty(), contested];
        let script = ScriptedDetector::new(size, vec![RoundFaults::from_sets(size, sets)]);
        let mut det = script;
        let decisions = one_round_kset(size, 2, &ins, &mut det).unwrap();
        // p0 and p2 decide v0; p1 and p3 decide v1: exactly 2 values.
        assert_eq!(decisions, vec![100, 101, 100, 101]);
        KSetAgreement::new(2)
            .check(
                &ins,
                &decisions.iter().map(|&d| Some(d)).collect::<Vec<_>>(),
            )
            .unwrap();
    }

    #[test]
    fn random_adversaries_never_break_the_task() {
        for &(nv, k) in &[(4usize, 1usize), (6, 2), (8, 3), (10, 5), (12, 1)] {
            let size = n(nv);
            let ins = inputs(nv);
            let task = KSetAgreement::new(k);
            for seed in 0..25u64 {
                let mut adv = RandomAdversary::new(KUncertainty::new(size, k), seed);
                let decisions = one_round_kset(size, k, &ins, &mut adv)
                    .unwrap_or_else(|e| panic!("n={nv} k={k} seed={seed}: {e}"));
                let outs: Vec<Option<Value>> = decisions.iter().map(|&d| Some(d)).collect();
                task.check_terminating(&ins, &outs)
                    .unwrap_or_else(|v| panic!("n={nv} k={k} seed={seed}: {v}"));
            }
        }
    }

    #[test]
    fn adversary_outside_the_model_is_rejected() {
        // Drive with uncertainty 2 but claim k = 1: the engine must catch it.
        let size = n(4);
        let ins = inputs(4);
        let sets = vec![
            IdSet::singleton(ProcessId::new(0)),
            IdSet::empty(),
            IdSet::empty(),
            IdSet::empty(),
        ];
        let mut det = ScriptedDetector::new(size, vec![RoundFaults::from_sets(size, sets)]);
        let err = one_round_kset(size, 1, &ins, &mut det).unwrap_err();
        assert!(matches!(err, EngineError::Violation(_)));
    }

    #[test]
    fn exhaustive_proof_for_small_systems() {
        // Enumerate EVERY Pk-legal round for n ≤ 4 and check the task on
        // each — Theorem 3.1 proved by enumeration at these sizes.
        use rrfd_models::enumerate::all_first_rounds;
        for nv in [2usize, 3, 4] {
            for k in 1..nv {
                let size = n(nv);
                let ins = inputs(nv);
                let task = KSetAgreement::new(k);
                let mut rounds_checked = 0usize;
                for round in all_first_rounds(KUncertainty::new(size, k)) {
                    rounds_checked += 1;
                    let mut det = ScriptedDetector::new(size, vec![round.clone()]);
                    let decisions = one_round_kset(size, k, &ins, &mut det)
                        .unwrap_or_else(|e| panic!("n={nv} k={k}: {e} on {round:?}"));
                    let outs: Vec<Option<Value>> = decisions.iter().map(|&d| Some(d)).collect();
                    task.check_terminating(&ins, &outs)
                        .unwrap_or_else(|v| panic!("n={nv} k={k}: {v} on round {round:?}"));
                }
                assert!(rounds_checked > 0, "n={nv} k={k}: nothing enumerated");
            }
        }
    }

    #[test]
    fn k_values_are_actually_reachable() {
        // Tightness: the adversary can force exactly k distinct decisions.
        // D(i,1) = {p0, …, p_{(i mod k) − 1}} has uncertainty k − 1 < k and
        // spreads decisions over the k smallest ids.
        for &(nv, k) in &[(4usize, 2usize), (6, 3), (8, 4), (10, 5)] {
            let size = n(nv);
            let ins = inputs(nv);
            let sets: Vec<IdSet> = (0..nv)
                .map(|i| (0..(i % k)).map(ProcessId::new).collect())
                .collect();
            let round = RoundFaults::from_sets(size, sets);
            let mut det = ScriptedDetector::new(size, vec![round]);
            let decisions = one_round_kset(size, k, &ins, &mut det).unwrap();
            let distinct: std::collections::BTreeSet<Value> = decisions.iter().copied().collect();
            assert_eq!(distinct.len(), k, "n={nv} k={k}: {decisions:?}");
        }
    }

    #[test]
    fn plain_async_model_defeats_one_round_consensus() {
        // The necessity direction: under eq. 3 alone (no uncertainty
        // bound), exhaustive search finds legal rounds on which the
        // one-round rule breaks consensus — Pk is what carries Theorem
        // 3.1, not the round structure.
        use rrfd_core::{AnyPattern, Engine};
        use rrfd_models::enumerate::all_first_rounds;
        use rrfd_models::predicates::AsyncResilient;

        let size = n(3);
        let ins = inputs(3);
        let task = KSetAgreement::consensus();
        let mut violations = 0usize;
        for round in all_first_rounds(AsyncResilient::new(size, 1)) {
            let protos: Vec<OneRoundKSet> = ins.iter().map(|&v| OneRoundKSet::new(v)).collect();
            let mut det = ScriptedDetector::new(size, vec![round]);
            let report = Engine::new(size)
                .run(protos, &mut det, &AnyPattern::new(size))
                .unwrap();
            let outs = report.outputs();
            if task.check(&ins, &outs).is_err() {
                violations += 1;
            }
        }
        assert!(
            violations > 0,
            "eq. 3 admitted no consensus-breaking round — it should"
        );
    }

    #[test]
    fn duplicate_inputs_are_handled() {
        let size = n(3);
        let ins = vec![7, 7, 7];
        let mut adv = RandomAdversary::new(KUncertainty::new(size, 2), 3);
        let decisions = one_round_kset(size, 2, &ins, &mut adv).unwrap();
        assert!(decisions.iter().all(|&d| d == 7));
    }
}
