//! Flood-min: the classical `⌊f/k⌋ + 1`-round k-set agreement algorithm for
//! synchronous systems with at most `f` crash (or send-omission) faults —
//! the upper bound matching Corollaries 4.2/4.4.
//!
//! Every process floods the smallest value it has seen; after `R` rounds it
//! decides that minimum. With at most `f` faults and `R = ⌊f/k⌋ + 1` rounds
//! there is at least one *clean* round in which fewer than `k` fresh
//! failures occur, which caps the number of distinct minima survivors can
//! hold at `k`. Run with budget `⌊f/k⌋` against the
//! [`rrfd_models::adversary::SilencingCrash`] adversary, the same protocol
//! is forced into `k + 1` distinct decisions — experiment E9's violation
//! arm.

use rrfd_core::task::Value;
use rrfd_core::{Control, Delivery, Round, RoundProtocol};

/// The flood-min process: relays its current minimum each round, decides it
/// after `budget` rounds.
#[derive(Debug, Clone)]
pub struct FloodMin {
    current_min: Value,
    budget: u32,
}

impl FloodMin {
    /// Creates a process proposing `input` and deciding after `budget`
    /// rounds.
    ///
    /// # Panics
    ///
    /// Panics if `budget == 0`.
    #[must_use]
    pub fn new(input: Value, budget: u32) -> Self {
        assert!(budget >= 1, "flood-min needs at least one round");
        FloodMin {
            current_min: input,
            budget,
        }
    }

    /// The round budget `⌊f/k⌋ + 1` that makes the protocol correct for a
    /// synchronous system with `f` faults and agreement parameter `k`.
    #[must_use]
    pub fn correct_budget(f: usize, k: usize) -> u32 {
        (f / k) as u32 + 1
    }

    /// The smallest value seen so far.
    #[must_use]
    pub fn current_min(&self) -> Value {
        self.current_min
    }
}

impl RoundProtocol for FloodMin {
    type Msg = Value;
    type Output = Value;

    fn emit(&mut self, _round: Round) -> Value {
        self.current_min
    }

    fn deliver(&mut self, d: Delivery<'_, Value>) -> Control<Value> {
        for v in d.values() {
            self.current_min = self.current_min.min(*v);
        }
        if d.round.get() >= self.budget {
            Control::Decide(self.current_min)
        } else {
            Control::Continue
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrfd_core::task::KSetAgreement;
    use rrfd_core::{Engine, ProcessId, SystemSize};
    use rrfd_models::adversary::{RandomAdversary, SilencingCrash};
    use rrfd_models::predicates::Crash;

    fn n(v: usize) -> SystemSize {
        SystemSize::new(v).unwrap()
    }

    fn run_floodmin(
        size: SystemSize,
        budget: u32,
        detector: &mut dyn rrfd_core::FaultDetector,
        model: &dyn rrfd_core::RrfdPredicate,
    ) -> (Vec<Value>, rrfd_core::FaultPattern) {
        let inputs: Vec<Value> = (0..size.get() as u64).collect();
        let protos: Vec<_> = inputs.iter().map(|&v| FloodMin::new(v, budget)).collect();
        let report = Engine::new(size).run(protos, detector, model).unwrap();
        let outs = report
            .outputs()
            .into_iter()
            .map(|o| o.expect("flood-min always decides at its budget"))
            .collect();
        (outs, report.pattern)
    }

    #[test]
    fn correct_budget_succeeds_under_random_crashes() {
        for &(nv, f, k) in &[(6usize, 2usize, 1usize), (8, 4, 2), (10, 6, 3)] {
            let size = n(nv);
            let budget = FloodMin::correct_budget(f, k);
            let task = KSetAgreement::new(k);
            for seed in 0..20u64 {
                let model = Crash::new(size, f);
                let mut adv = RandomAdversary::new(model, seed);
                let (outs, pattern) = run_floodmin(size, budget, &mut adv, &model);
                // Only processes never suspected (i.e. never crashed) are
                // held to the task: the paper's Corollary 4.4 lets crashed
                // simulated processes adopt later.
                let crashed = pattern.cumulative_union();
                let inputs: Vec<Value> = (0..nv as u64).collect();
                let outs: Vec<Option<Value>> = outs
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (!crashed.contains(ProcessId::new(i))).then_some(v))
                    .collect();
                task.check(&inputs, &outs)
                    .unwrap_or_else(|v| panic!("n={nv} f={f} k={k} seed={seed}: {v}"));
            }
        }
    }

    #[test]
    fn silencer_at_short_budget_forces_k_plus_one_values() {
        for &(nv, f, k) in &[(6usize, 3usize, 1usize), (10, 4, 2), (13, 6, 3)] {
            let size = n(nv);
            let short = FloodMin::correct_budget(f, k) - 1; // = ⌊f/k⌋
            let mut adv = SilencingCrash::new(size, f, k);
            let model = Crash::new(size, f);
            let (outs, pattern) = run_floodmin(size, short, &mut adv, &model);
            let crashed = pattern.cumulative_union();
            let live_values: std::collections::BTreeSet<Value> = outs
                .iter()
                .enumerate()
                .filter(|(i, _)| !crashed.contains(ProcessId::new(*i)))
                .map(|(_, &v)| v)
                .collect();
            assert!(
                live_values.len() > k,
                "n={nv} f={f} k={k}: adversary only forced {} values",
                live_values.len()
            );
        }
    }

    #[test]
    fn silencer_at_correct_budget_is_defeated() {
        // One extra round lets the chain values flood out: the same
        // adversary can no longer break the task.
        for &(nv, f, k) in &[(6usize, 3usize, 1usize), (10, 4, 2)] {
            let size = n(nv);
            let budget = FloodMin::correct_budget(f, k);
            let mut adv = SilencingCrash::new(size, f, k);
            let model = Crash::new(size, f);
            let (outs, pattern) = run_floodmin(size, budget, &mut adv, &model);
            let crashed = pattern.cumulative_union();
            let live_values: std::collections::BTreeSet<Value> = outs
                .iter()
                .enumerate()
                .filter(|(i, _)| !crashed.contains(ProcessId::new(*i)))
                .map(|(_, &v)| v)
                .collect();
            assert!(
                live_values.len() <= k,
                "n={nv} f={f} k={k}: {} values at the correct budget",
                live_values.len()
            );
        }
    }

    #[test]
    fn exhaustive_crash_proof_for_small_systems() {
        // Corollary 4.4's upper bound proved by enumeration: for n = 3,
        // f = k = 1, run flood-min at budget ⌊f/k⌋ + 1 = 2 against EVERY
        // legal 2-round crash pattern and check consensus among
        // never-suspected processes.
        use rrfd_core::task::Value;
        use rrfd_models::adversary::ScriptedDetector;
        use rrfd_models::enumerate::all_patterns;

        let size = n(3);
        let model = Crash::new(size, 1);
        let budget = FloodMin::correct_budget(1, 1); // 2 rounds
        let task = KSetAgreement::consensus();
        let inputs: Vec<Value> = vec![5, 6, 7];
        let patterns = all_patterns(&model, 2, 100_000);
        assert!(patterns.len() > 10, "only {} patterns", patterns.len());
        for pattern in &patterns {
            let script: Vec<_> = pattern.iter().map(|(_, rf)| rf.clone()).collect();
            let mut det = ScriptedDetector::new(size, script);
            let protos: Vec<_> = inputs.iter().map(|&v| FloodMin::new(v, budget)).collect();
            let report = Engine::new(size).run(protos, &mut det, &model).unwrap();
            let crashed = report.pattern.cumulative_union();
            let outs: Vec<Option<Value>> = report
                .outputs()
                .into_iter()
                .enumerate()
                .map(|(i, v)| v.filter(|_| !crashed.contains(ProcessId::new(i))))
                .collect();
            task.check(&inputs, &outs)
                .unwrap_or_else(|v| panic!("{v} on pattern {pattern:?}"));
        }
    }

    #[test]
    fn fault_free_flooding_reaches_global_min_in_one_round() {
        use rrfd_core::AnyPattern;
        use rrfd_models::adversary::NoFailures;
        let size = n(5);
        let protos: Vec<_> = (0..5).map(|v| FloodMin::new(v + 10, 1)).collect();
        let report = Engine::new(size)
            .run(protos, &mut NoFailures::new(size), &AnyPattern::new(size))
            .unwrap();
        for out in report.outputs() {
            assert_eq!(out.unwrap(), 10);
        }
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_budget_is_rejected() {
        let _ = FloodMin::new(0, 0);
    }
}
