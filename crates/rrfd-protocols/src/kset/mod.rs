//! The k-set agreement algorithms of §3 and §4.
//!
//! * [`one_round_kset`] / [`OneRoundKSet`] — Theorem 3.1's one-round
//!   algorithm under the k-uncertainty detector.
//! * [`SnapshotKSet`] — Corollary 3.2: k-set agreement on snapshot shared
//!   memory with `k − 1` crashes.
//! * [`FloodMin`] — the `⌊f/k⌋ + 1`-round synchronous algorithm matching
//!   the Corollary 4.2/4.4 lower bound.

mod flood_set;
mod one_round;
mod snapshot_kset;

pub use flood_set::FloodMin;
pub use one_round::{one_round_kset, OneRoundKSet};
pub use snapshot_kset::SnapshotKSet;
