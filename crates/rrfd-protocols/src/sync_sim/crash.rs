//! Theorem 4.3: simulating synchronous **crash**-fault rounds on
//! asynchronous atomic-snapshot shared memory with at most `k` crash
//! failures — three asynchronous rounds per simulated round.
//!
//! Per simulated round `r`, process `p_i`:
//!
//! 1. **Value phase** — writes its simulated round-`r` value to the round's
//!    value bank, then snapshots until at most `k` values are missing. The
//!    missing set `M_i` joins its *proposed-faulty* set `F_i` (snapshot
//!    containment makes `∪_i M_i ≤ k` fresh suspects per round).
//! 2. **Adopt-commit phase** — runs `n` adopt-commit instances, one per
//!    process `p_j`, proposing `p_j-faulty` if `j ∈ F_i` and `p_j-alive`
//!    (with `p_j`'s value) otherwise.
//! 3. **Resolution** — if the instance output is *commit faulty*, `p_j`'s
//!    round-`r` message is `⊥` (that is `j ∈ D(i,r)`); if *adopt faulty*,
//!    `p_j` joins `F_i` but its value is recovered from the value bank
//!    (some process proposed alive, hence the value was written); if the
//!    output is alive, the carried value is used.
//!
//! The correctness argument (Theorem 4.3's proof, machine-checked here):
//! `p_j` appears to fail at round `r` only if someone commits it faulty; by
//! adopt-commit agreement everyone then adopts-or-commits faulty, so at
//! round `r + 1` every process proposes `p_j-faulty`, adopt-commit
//! convergence makes everyone commit, and `p_j` is universally suspected
//! from then on — exactly equation 2. Each simulated round adds at most
//! `k` processes to `∪_i F_i`, so `⌊f/k⌋` rounds respect the footprint
//! bound `f`.

use crate::adopt_commit::{AcBank, AcCell, AcObs, AcOp, AcStep, AdoptCommitMachine};
use rrfd_core::task::{Grade, Value};
use rrfd_core::{Control, Delivery, IdSet, ProcessId, Round, RoundProtocol, SystemSize};
use rrfd_sims::shared_mem::{Action, MemProcess, Observation};

/// The register-cell type of the simulation's memory: simulated round
/// values and adopt-commit cells share one memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimCell {
    /// A simulated round-`r` value in a value bank.
    Val(Value),
    /// An adopt-commit phase-1 proposal (`FAULTY_SENTINEL` = "p_j-faulty").
    Prop(Value),
    /// An adopt-commit phase-2 vote.
    Vote(Grade, Value),
}

/// The adopt-commit input standing for "p_j-faulty". Simulated protocols
/// must not emit this value.
pub const FAULTY_SENTINEL: Value = Value::MAX;

/// What the simulation hands back when the inner protocol decides.
#[derive(Debug, Clone)]
pub struct CrashSimOutput<O> {
    /// The inner protocol's decision.
    pub decision: O,
    /// The simulated `D(i,r)` sets, one per completed simulated round.
    pub fault_log: Vec<IdSet>,
}

#[derive(Debug)]
enum Phase {
    /// About to write this round's simulated value.
    WriteValue,
    /// Snapshotting the value bank until ≤ k missing.
    ValueSnap,
    /// Driving the adopt-commit instance for process `j`.
    Ac {
        j: usize,
        machine: AdoptCommitMachine,
    },
    /// Reading the value bank cell of `j` to recover an adopt-faulty value.
    Recover { j: usize },
    /// Inner protocol decided; simulation halts.
    Finished,
}

/// The Theorem 4.3 simulation as a shared-memory step machine wrapping any
/// [`RoundProtocol`] with `u64` messages.
#[derive(Debug)]
pub struct CrashSim<P: RoundProtocol<Msg = Value>> {
    me: ProcessId,
    n: SystemSize,
    k: usize,
    inner: P,
    round: Round,
    phase: Phase,
    /// Processes this process proposes to have crashed.
    proposed_faulty: IdSet,
    /// The snapshot view of this round's value bank.
    view: Vec<Option<Value>>,
    /// Resolved per-sender round values (`None` = ⊥, i.e. `D(i,r)`).
    resolved: Vec<Option<Value>>,
    /// Recorded `D(i,r)` per completed round.
    fault_log: Vec<IdSet>,
    /// This round's own emitted value (always self-delivered: a process
    /// knows its own message through its local state, §1).
    my_value: Value,
    max_rounds: u32,
}

impl<P: RoundProtocol<Msg = Value>> CrashSim<P> {
    /// Wraps `inner` for process `me` in a system of `n` processes over
    /// snapshot memory tolerating `k` crashes, simulating at most
    /// `max_rounds` synchronous rounds (this fixes the memory layout).
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ k < n` and `max_rounds ≥ 1`.
    #[must_use]
    pub fn new(me: ProcessId, n: SystemSize, k: usize, max_rounds: u32, inner: P) -> Self {
        assert!(k >= 1 && k < n.get(), "need 1 ≤ k < n");
        assert!(max_rounds >= 1, "need at least one simulated round");
        CrashSim {
            me,
            n,
            k,
            inner,
            round: Round::FIRST,
            phase: Phase::WriteValue,
            proposed_faulty: IdSet::empty(),
            view: vec![None; n.get()],
            resolved: vec![None; n.get()],
            fault_log: Vec::new(),
            my_value: 0,
            max_rounds,
        }
    }

    /// Number of memory banks the simulation needs: per simulated round,
    /// one value bank plus two banks per adopt-commit instance.
    #[must_use]
    pub fn banks_needed(n: SystemSize, max_rounds: u32) -> usize {
        max_rounds as usize * (1 + 2 * n.get())
    }

    /// The recorded `D(me, r)` sets so far.
    #[must_use]
    pub fn fault_log(&self) -> &[IdSet] {
        &self.fault_log
    }

    fn banks_per_round(&self) -> usize {
        1 + 2 * self.n.get()
    }

    fn value_bank(&self) -> usize {
        self.round.index() * self.banks_per_round()
    }

    fn ac_bank(&self, j: usize, bank: AcBank) -> usize {
        let base = self.value_bank() + 1 + 2 * j;
        match bank {
            AcBank::First => base,
            AcBank::Second => base + 1,
        }
    }

    fn ac_action(&self, j: usize, op: AcOp) -> Action<SimCell, CrashSimOutput<P::Output>> {
        match op {
            AcOp::Write { bank, cell } => Action::Write {
                bank: self.ac_bank(j, bank),
                value: match cell {
                    AcCell::Proposal(v) => SimCell::Prop(v),
                    AcCell::Vote(g, v) => SimCell::Vote(g, v),
                },
            },
            AcOp::Read { bank, owner } => Action::Read {
                bank: self.ac_bank(j, bank),
                owner,
            },
        }
    }

    /// Starts the adopt-commit instance for process `j` of this round.
    fn start_ac(&mut self, j: usize) -> Action<SimCell, CrashSimOutput<P::Output>> {
        let target = ProcessId::new(j);
        let input = if self.proposed_faulty.contains(target) {
            FAULTY_SENTINEL
        } else {
            match self.view[j] {
                Some(v) => v,
                // Not in F_i yet not in the view either can't happen: F_i
                // absorbed the view's missing set in the value phase.
                None => unreachable!("missing value for a process not proposed faulty"),
            }
        };
        let (machine, first_op) = AdoptCommitMachine::start(self.n, self.me, input);
        let action = self.ac_action(j, first_op);
        self.phase = Phase::Ac { j, machine };
        action
    }

    /// Finishes instance `j` with output `(grade, value)` and moves on.
    fn resolve_ac(
        &mut self,
        j: usize,
        grade: Grade,
        value: Value,
    ) -> Action<SimCell, CrashSimOutput<P::Output>> {
        let target = ProcessId::new(j);
        if value == FAULTY_SENTINEL {
            self.proposed_faulty.insert(target);
            match grade {
                Grade::Commit => {
                    // p_j appears crashed this round: message is ⊥.
                    self.resolved[j] = None;
                    self.next_after(j)
                }
                Grade::Adopt => {
                    // Someone proposed alive, so the value bank has p_j's
                    // value: recover it.
                    self.phase = Phase::Recover { j };
                    Action::Read {
                        bank: self.value_bank(),
                        owner: target,
                    }
                }
            }
        } else {
            self.resolved[j] = Some(value);
            self.next_after(j)
        }
    }

    /// Advances to instance `j + 1`, or completes the round.
    fn next_after(&mut self, j: usize) -> Action<SimCell, CrashSimOutput<P::Output>> {
        if j + 1 < self.n.get() {
            self.start_ac(j + 1)
        } else {
            self.complete_round()
        }
    }

    /// Delivers the simulated round to the inner protocol.
    fn complete_round(&mut self) -> Action<SimCell, CrashSimOutput<P::Output>> {
        // Self-delivery: own value is always known locally, so a process
        // never appears in its own D(i,r).
        self.resolved[self.me.index()] = Some(self.my_value);
        let suspected: IdSet = (0..self.n.get())
            .filter(|&j| self.resolved[j].is_none())
            .map(ProcessId::new)
            .collect();
        self.fault_log.push(suspected);

        let received = std::mem::replace(&mut self.resolved, vec![None; self.n.get()]);
        let verdict = self
            .inner
            .deliver(Delivery::new(self.round, self.me, &received, suspected));

        if let Control::Decide(decision) = verdict {
            self.phase = Phase::Finished;
            return Action::Decide(CrashSimOutput {
                decision,
                fault_log: self.fault_log.clone(),
            });
        }

        assert!(
            self.round.get() < self.max_rounds,
            "inner protocol did not decide within the simulated-round budget"
        );
        self.round = self.round.next();
        self.view = vec![None; self.n.get()];
        self.phase = Phase::WriteValue;
        self.emit_value()
    }

    /// Emits the inner protocol's value for the current round.
    fn emit_value(&mut self) -> Action<SimCell, CrashSimOutput<P::Output>> {
        let v = self.inner.emit(self.round);
        assert!(
            v != FAULTY_SENTINEL,
            "simulated protocols must not emit the faulty sentinel"
        );
        self.my_value = v;
        self.phase = Phase::ValueSnap;
        Action::Write {
            bank: self.value_bank(),
            value: SimCell::Val(v),
        }
    }
}

impl<P: RoundProtocol<Msg = Value>> MemProcess<SimCell> for CrashSim<P> {
    type Output = CrashSimOutput<P::Output>;

    fn step(&mut self, obs: Observation<SimCell>) -> Action<SimCell, Self::Output> {
        // Move the phase out so helper methods may reassign it freely.
        let phase = std::mem::replace(&mut self.phase, Phase::Finished);
        match (phase, obs) {
            (Phase::WriteValue, Observation::Start) => self.emit_value(),
            (Phase::ValueSnap, Observation::Written) => {
                self.phase = Phase::ValueSnap;
                Action::Snapshot {
                    bank: self.value_bank(),
                }
            }
            (Phase::ValueSnap, Observation::SnapshotView(view)) => self.on_value_snapshot(view),
            (Phase::Ac { j, mut machine }, obs) => {
                let ac_obs = match obs {
                    Observation::Written => AcObs::Written,
                    Observation::Value(cell) => AcObs::Value(cell.map(|c| match c {
                        SimCell::Prop(v) => AcCell::Proposal(v),
                        SimCell::Vote(g, v) => AcCell::Vote(g, v),
                        SimCell::Val(_) => panic!("value cell in an adopt-commit bank"),
                    })),
                    other => unreachable!("bad observation in AC phase: {other:?}"),
                };
                match machine.on(ac_obs) {
                    AcStep::Op(op) => {
                        let action = self.ac_action(j, op);
                        self.phase = Phase::Ac { j, machine };
                        action
                    }
                    AcStep::Done((grade, value)) => self.resolve_ac(j, grade, value),
                }
            }
            (Phase::Recover { j }, Observation::Value(cell)) => match cell {
                Some(SimCell::Val(v)) => {
                    self.resolved[j] = Some(v);
                    self.next_after(j)
                }
                Some(_) => panic!("non-value cell in a value bank"),
                None => {
                    unreachable!("adopt-faulty guarantees an alive proposal, hence a written value")
                }
            },
            (Phase::Finished, _) => unreachable!("stepped after deciding"),
            (phase, obs) => unreachable!("observation {obs:?} in phase {phase:?}"),
        }
    }
}

impl<P: RoundProtocol<Msg = Value>> CrashSim<P> {
    /// Consumes a snapshot view of the value bank; returns the next action
    /// (another snapshot, or the first adopt-commit instance).
    fn on_value_snapshot(
        &mut self,
        view: Vec<Option<SimCell>>,
    ) -> Action<SimCell, CrashSimOutput<P::Output>> {
        let values: Vec<Option<Value>> = view
            .into_iter()
            .map(|c| {
                c.map(|c| match c {
                    SimCell::Val(v) => v,
                    _ => panic!("non-value cell in a value bank"),
                })
            })
            .collect();
        let missing: IdSet = values
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_none())
            .map(|(j, _)| ProcessId::new(j))
            .collect();
        if missing.len() <= self.k {
            self.view = values;
            self.proposed_faulty |= missing;
            self.start_ac(0)
        } else {
            self.phase = Phase::ValueSnap;
            Action::Snapshot {
                bank: self.value_bank(),
            }
        }
    }
}

/// Outcome of [`run_crash_simulation`].
#[derive(Debug, Clone)]
pub struct CrashSimReport<O> {
    /// Inner decisions by process (`None`: crashed before deciding).
    pub outputs: Vec<Option<O>>,
    /// The simulated synchronous fault pattern, assembled per round over
    /// the rounds *every* decider completed.
    pub pattern: rrfd_core::FaultPattern,
    /// Processes crashed by the asynchronous scheduler.
    pub crashed: IdSet,
    /// `true` iff the simulated pattern is admitted by the crash predicate
    /// with footprint `f` — Theorem 4.3's guarantee for runs of at most
    /// `⌊f/k⌋` simulated rounds.
    pub crash_certified: bool,
}

/// Runs `protocols` (one per process, `u64` messages) through the Theorem
/// 4.3 simulation on snapshot shared memory under `scheduler` (which may
/// crash at most `k` processes), simulating up to `max_rounds` synchronous
/// rounds, and certifies the extracted pattern against
/// [`rrfd_models::predicates::Crash`] with footprint `f`.
///
/// Crashed processes are excluded from the pattern assembly: their
/// suspicion sets are synthesised as "everything the deciders commonly
/// suspected plus themselves", the convention a really-crashed process's
/// unobservable detector output is mapped to (it cannot affect any
/// decider's view).
///
/// # Errors
///
/// Propagates [`rrfd_sims::shared_mem::MemSimError`].
///
/// # Panics
///
/// Panics if `protocols.len() != n` or a protocol outlives `max_rounds`.
pub fn run_crash_simulation<P, S>(
    n: SystemSize,
    k: usize,
    f: usize,
    max_rounds: u32,
    protocols: Vec<P>,
    scheduler: &mut S,
) -> Result<CrashSimReport<P::Output>, rrfd_sims::shared_mem::MemSimError>
where
    P: RoundProtocol<Msg = Value>,
    P::Output: Clone,
    S: rrfd_sims::shared_mem::MemScheduler + ?Sized,
{
    use rrfd_core::{FaultPattern, RoundFaults, RrfdPredicate};

    assert_eq!(protocols.len(), n.get(), "one protocol per process");
    let sims: Vec<CrashSim<P>> = protocols
        .into_iter()
        .enumerate()
        .map(|(i, p)| CrashSim::new(ProcessId::new(i), n, k, max_rounds, p))
        .collect();
    let banks = CrashSim::<P>::banks_needed(n, max_rounds);
    let report = rrfd_sims::shared_mem::SharedMemSim::new(n, banks)
        .with_snapshots()
        .run(sims, scheduler)?;

    let outputs: Vec<Option<P::Output>> = report
        .outputs
        .iter()
        .map(|o| o.as_ref().map(|out| out.decision.clone()))
        .collect();

    // Assemble the simulated pattern over the rounds every decider
    // completed (deciders all complete the same number: the inner
    // protocol's budget).
    let logs: Vec<&[IdSet]> = report.processes.iter().map(CrashSim::fault_log).collect();
    let rounds_done = report
        .outputs
        .iter()
        .enumerate()
        .filter(|(_, o)| o.is_some())
        .map(|(i, _)| logs[i].len())
        .min()
        .unwrap_or(0);

    let mut pattern = FaultPattern::new(n);
    for r in 0..rounds_done {
        // Crashed processes' unobservable rounds: suspect what every
        // decider commonly suspects plus everything previously suspected
        // (minus themselves — the self-exemption of eq. 2).
        let common: IdSet = report
            .outputs
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_some())
            .map(|(i, _)| logs[i][r])
            .fold(IdSet::universe(n), IdSet::intersection);
        let prev_union = pattern.last().map_or(IdSet::empty(), RoundFaults::union);
        let sets = n
            .processes()
            .map(|p| match logs[p.index()].get(r) {
                Some(&d) => d,
                None => (common | prev_union) - IdSet::singleton(p),
            })
            .collect();
        pattern.push(RoundFaults::from_sets(n, sets));
    }

    let crash_certified = rrfd_models::predicates::Crash::new(n, f).admits_pattern(&pattern);

    Ok(CrashSimReport {
        outputs,
        pattern,
        crashed: report.crashed,
        crash_certified,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kset::FloodMin;
    use rrfd_core::task::KSetAgreement;
    use rrfd_sims::shared_mem::{FairScheduler, RandomScheduler};

    fn n(v: usize) -> SystemSize {
        SystemSize::new(v).unwrap()
    }

    #[test]
    fn fault_free_simulation_is_clean() {
        let size = n(4);
        let protos: Vec<_> = (0..4u64).map(|v| FloodMin::new(v + 1, 2)).collect();
        let report =
            run_crash_simulation(size, 1, 2, 2, protos, &mut FairScheduler::new()).unwrap();
        assert!(report.crash_certified);
        assert!(report.pattern.cumulative_union().is_empty());
        for out in report.outputs {
            assert_eq!(out, Some(1));
        }
    }

    #[test]
    fn simulated_patterns_satisfy_the_crash_predicate() {
        // Theorem 4.3's core claim: k async crashes over ⌊f/k⌋ simulated
        // rounds always yield a legal f-crash synchronous pattern.
        for &(nv, f, k) in &[(5usize, 2usize, 1usize), (6, 4, 2), (8, 6, 2)] {
            let size = n(nv);
            let budget = (f / k) as u32;
            for seed in 0..15u64 {
                let protos: Vec<_> = (0..nv as u64)
                    .map(|v| FloodMin::new(v + 1, budget))
                    .collect();
                let mut sched = RandomScheduler::new(seed, k).crash_prob(0.02);
                let report = run_crash_simulation(size, k, f, budget, protos, &mut sched)
                    .unwrap_or_else(|e| panic!("n={nv} f={f} k={k} seed={seed}: {e}"));
                assert!(
                    report.crash_certified,
                    "n={nv} f={f} k={k} seed={seed}: pattern {:?} not crash-legal",
                    report.pattern
                );
            }
        }
    }

    #[test]
    fn floodmin_through_the_simulation_solves_kset() {
        // Corollary 4.4's positive direction: running the ⌊f/k⌋+1-round
        // flood-min through the simulation (budget permitting) yields k-set
        // agreement among deciders.
        let size = n(6);
        let (f, k) = (2usize, 2usize);
        let budget = FloodMin::correct_budget(f, k); // 2 rounds
        let inputs: Vec<Value> = (1..=6).collect();
        let task = KSetAgreement::new(k);
        for seed in 0..15u64 {
            let protos: Vec<_> = inputs.iter().map(|&v| FloodMin::new(v, budget)).collect();
            let mut sched = RandomScheduler::new(seed, k - 1).crash_prob(0.02);
            let report = run_crash_simulation(size, k, f + k, budget, protos, &mut sched).unwrap();
            // Deciders not simulated-crashed must agree k-set-wise.
            let sim_crashed = report.pattern.cumulative_union();
            let outs: Vec<Option<Value>> = report
                .outputs
                .iter()
                .enumerate()
                .map(|(i, o)| o.filter(|_| !sim_crashed.contains(ProcessId::new(i))))
                .collect();
            task.check(&inputs, &outs)
                .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        }
    }

    #[test]
    fn banks_layout_is_disjoint() {
        let n = SystemSize::new(4).unwrap();
        // All bank indices across 3 rounds must be distinct and within the
        // computed bank count.
        let total = CrashSim::<crate::kset::FloodMin>::banks_needed(n, 3);
        assert_eq!(total, 3 * (1 + 8));
        let mut sim = CrashSim::new(ProcessId::new(0), n, 1, 3, crate::kset::FloodMin::new(0, 3));
        let mut seen = std::collections::BTreeSet::new();
        for _round in 0..3 {
            assert!(seen.insert(sim.value_bank()));
            for j in 0..4 {
                assert!(seen.insert(sim.ac_bank(j, AcBank::First)));
                assert!(seen.insert(sim.ac_bank(j, AcBank::Second)));
            }
            sim.round = sim.round.next();
        }
        assert_eq!(seen.len(), total);
        assert!(*seen.iter().max().unwrap() < total);
    }
}
