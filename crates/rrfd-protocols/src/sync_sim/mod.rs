//! §4: simulating synchronous rounds on asynchronous snapshot memory.
//!
//! * [`omission`] — Theorem 4.1: `⌊f/k⌋` send-omission rounds from a
//!   k-resilient snapshot system, by predicate arithmetic.
//! * [`crash`] — Theorem 4.3: the adopt-commit-based strengthening to
//!   crash faults, three asynchronous rounds per simulated round.

pub mod crash;
pub mod omission;

pub use crash::{run_crash_simulation, CrashSim, CrashSimOutput, CrashSimReport, SimCell};
pub use omission::{run_as_omission, OmissionSimReport};
