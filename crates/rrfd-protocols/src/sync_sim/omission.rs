//! Theorem 4.1: an asynchronous RRFD atomic-snapshot system with at most
//! `k` failures implements the first `⌊f/k⌋` rounds of an RRFD
//! message-passing system with at most `f` **send-omission** failures.
//!
//! The simulation is round-for-round (each snapshot round *is* a
//! message-passing round); the content of the theorem is pure predicate
//! arithmetic: the snapshot predicate bounds each round's union by `k`, so
//! over `⌊f/k⌋` rounds the cumulative union is at most `k·⌊f/k⌋ ≤ f` —
//! exactly the send-omission footprint. [`run_as_omission`] executes a
//! protocol under any snapshot-model detector and certifies the produced
//! pattern against the omission predicate, which by the theorem can never
//! fail.

use rrfd_core::{
    Engine, EngineError, FaultDetector, RoundProtocol, RrfdPredicate, RunReport, SystemSize,
};
use rrfd_models::predicates::{SendOmission, Snapshot};

/// Outcome of a Theorem 4.1 run.
#[derive(Debug, Clone)]
pub struct OmissionSimReport<O> {
    /// The underlying engine run (under the snapshot model).
    pub run: RunReport<O>,
    /// `true` iff the produced pattern is admitted by
    /// `SendOmission(n, f)` — Theorem 4.1 says this always holds when the
    /// run is at most `⌊f/k⌋` rounds.
    pub omission_certified: bool,
    /// The number of rounds the certificate covers, `⌊f/k⌋`.
    pub certified_rounds: u32,
}

/// Runs `protocols` for at most `⌊f/k⌋` rounds under `detector`
/// (validated against the snapshot model with `k` failures) and checks the
/// produced pattern against the send-omission model with `f` failures.
///
/// # Errors
///
/// Propagates [`EngineError`]; in particular the protocols must decide
/// within `⌊f/k⌋` rounds (that is the extent of the simulation).
///
/// # Panics
///
/// Panics unless `f ≥ k ≥ 1`.
pub fn run_as_omission<P, D>(
    n: SystemSize,
    f: usize,
    k: usize,
    protocols: Vec<P>,
    detector: &mut D,
) -> Result<OmissionSimReport<P::Output>, EngineError>
where
    P: RoundProtocol,
    D: FaultDetector + ?Sized,
{
    assert!(k >= 1, "k must be at least 1");
    assert!(f >= k, "Theorem 4.1 requires f ≥ k > 0");
    let budget = (f / k) as u32;
    let snapshot_model = Snapshot::new(n, k);
    let run = Engine::new(n)
        .max_rounds(budget)
        .run(protocols, detector, &snapshot_model)?;
    let omission_model = SendOmission::new(n, f);
    let omission_certified = omission_model.admits_pattern(&run.pattern);
    Ok(OmissionSimReport {
        run,
        omission_certified,
        certified_rounds: budget,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kset::FloodMin;
    use rrfd_models::adversary::RandomAdversary;
    use rrfd_models::predicates::Snapshot;

    fn n(v: usize) -> SystemSize {
        SystemSize::new(v).unwrap()
    }

    #[test]
    fn snapshot_runs_are_always_omission_certified() {
        for &(nv, f, k) in &[(6usize, 4usize, 2usize), (8, 6, 2), (10, 9, 3), (5, 4, 4)] {
            let size = n(nv);
            let budget = (f / k) as u32;
            for seed in 0..20u64 {
                let protos: Vec<_> = (0..nv as u64).map(|v| FloodMin::new(v, budget)).collect();
                let mut adv = RandomAdversary::new(Snapshot::new(size, k), seed);
                let report = run_as_omission(size, f, k, protos, &mut adv)
                    .unwrap_or_else(|e| panic!("n={nv} f={f} k={k} seed={seed}: {e}"));
                assert!(
                    report.omission_certified,
                    "n={nv} f={f} k={k} seed={seed}: Theorem 4.1 violated"
                );
                assert!(report.run.rounds_executed <= report.certified_rounds);
            }
        }
    }

    #[test]
    fn cumulative_union_is_bounded_by_f() {
        let size = n(8);
        let (f, k) = (6usize, 2usize);
        for seed in 0..10u64 {
            let protos: Vec<_> = (0..8u64).map(|v| FloodMin::new(v, 3)).collect();
            let mut adv = RandomAdversary::new(Snapshot::new(size, k), seed);
            let report = run_as_omission(size, f, k, protos, &mut adv).unwrap();
            assert!(report.run.pattern.cumulative_union().len() <= f);
        }
    }

    #[test]
    fn protocols_slower_than_the_budget_fail_loudly() {
        let size = n(6);
        // Budget is ⌊4/2⌋ = 2 rounds, but the protocol wants 5.
        let protos: Vec<_> = (0..6u64).map(|v| FloodMin::new(v, 5)).collect();
        let mut adv = RandomAdversary::new(Snapshot::new(size, 2), 0);
        let err = run_as_omission(size, 4, 2, protos, &mut adv).unwrap_err();
        assert!(matches!(err, EngineError::RoundLimitExceeded { .. }));
    }

    #[test]
    #[should_panic(expected = "f ≥ k")]
    fn f_below_k_is_rejected() {
        let protos: Vec<FloodMin> = vec![];
        let mut adv = RandomAdversary::new(Snapshot::new(n(4), 2), 0);
        let _ = run_as_omission(n(4), 1, 2, protos, &mut adv);
    }
}
