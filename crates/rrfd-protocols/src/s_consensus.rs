//! Consensus in the detector-S RRFD system (§2 item 6).
//!
//! The paper reduces wait-free consensus with the Chandra-Toueg strong
//! detector S to consensus in the send-omission RRFD with `f = n − 1`,
//! "just by predicate manipulation": the S predicate `P6` is exactly the
//! footprint clause `|∪_{r>0} ∪_i D(i,r)| < n`. This module supplies the
//! algorithmic payoff: a rotating-coordinator consensus protocol that is
//! correct under `P6` *alone* — it exploits nothing but the existence of
//! one never-suspected process.
//!
//! Protocol (n rounds): in round `r` the coordinator is `p_{(r−1) mod n}`;
//! every process emits its current estimate; a process that *receives* the
//! coordinator's round message adopts the coordinator's estimate; after
//! round `n` everyone decides its estimate.
//!
//! Correctness under `P6`: some process `p*` is never suspected, so in the
//! round where `p*` coordinates, **every** process receives and adopts
//! `p*`'s estimate `v` — all estimates coincide from then on, and later
//! coordinators can only re-broadcast `v`. Validity holds because
//! estimates are always inputs; termination is the fixed `n`-round
//! schedule.

use rrfd_core::task::Value;
use rrfd_core::{Control, Delivery, ProcessId, Round, RoundProtocol, SystemSize};

/// The rotating-coordinator consensus process for detector-S systems.
#[derive(Debug, Clone)]
pub struct SRotatingConsensus {
    n: SystemSize,
    estimate: Value,
}

impl SRotatingConsensus {
    /// Creates a process proposing `input`.
    #[must_use]
    pub fn new(n: SystemSize, input: Value) -> Self {
        SRotatingConsensus { n, estimate: input }
    }

    /// The coordinator of round `r`: `p_{(r−1) mod n}`.
    #[must_use]
    pub fn coordinator(n: SystemSize, round: Round) -> ProcessId {
        ProcessId::new((round.get() as usize - 1) % n.get())
    }

    /// The current estimate.
    #[must_use]
    pub fn estimate(&self) -> Value {
        self.estimate
    }
}

impl RoundProtocol for SRotatingConsensus {
    type Msg = Value;
    type Output = Value;

    fn emit(&mut self, _round: Round) -> Value {
        self.estimate
    }

    fn deliver(&mut self, d: Delivery<'_, Value>) -> Control<Value> {
        let coordinator = Self::coordinator(self.n, d.round);
        if let Some(&v) = d.get(coordinator) {
            self.estimate = v;
        }
        if d.round.get() as usize >= self.n.get() {
            Control::Decide(self.estimate)
        } else {
            Control::Continue
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrfd_core::task::KSetAgreement;
    use rrfd_core::{Engine, FaultPattern, IdSet, RoundFaults};
    use rrfd_models::adversary::RandomAdversary;
    use rrfd_models::predicates::DetectorS;

    fn n(v: usize) -> SystemSize {
        SystemSize::new(v).unwrap()
    }

    fn run_consensus(size: SystemSize, detector: &mut dyn rrfd_core::FaultDetector) -> Vec<Value> {
        let inputs: Vec<Value> = (0..size.get() as u64).map(|i| 300 + i).collect();
        let protos: Vec<_> = inputs
            .iter()
            .map(|&v| SRotatingConsensus::new(size, v))
            .collect();
        let model = DetectorS::new(size);
        let report = Engine::new(size).run(protos, detector, &model).unwrap();
        report
            .outputs()
            .into_iter()
            .map(|o| o.expect("decides at round n"))
            .collect()
    }

    #[test]
    fn consensus_under_random_s_detectors() {
        for nv in [2usize, 4, 7, 11] {
            let size = n(nv);
            let inputs: Vec<Value> = (0..nv as u64).map(|i| 300 + i).collect();
            let task = KSetAgreement::consensus();
            for seed in 0..25u64 {
                let mut adv = RandomAdversary::new(DetectorS::new(size), seed);
                let decisions = run_consensus(size, &mut adv);
                let outs: Vec<Option<Value>> = decisions.iter().map(|&d| Some(d)).collect();
                task.check_terminating(&inputs, &outs)
                    .unwrap_or_else(|v| panic!("n={nv} seed={seed}: {v}"));
            }
        }
    }

    #[test]
    fn adversary_blocking_everyone_but_the_immortal_still_loses() {
        // Worst case for the protocol: every round, everyone suspects
        // everyone except the immortal (here p2), including all coordinators
        // other than p2.
        let size = n(5);

        struct AllButImmortal(SystemSize);
        impl rrfd_core::FaultDetector for AllButImmortal {
            fn system_size(&self) -> SystemSize {
                self.0
            }
            fn next_round(&mut self, _r: Round, _h: &FaultPattern) -> RoundFaults {
                let bad = IdSet::universe(self.0) - IdSet::singleton(ProcessId::new(2));
                RoundFaults::from_sets(self.0, vec![bad; self.0.get()])
            }
        }

        let decisions = run_consensus(size, &mut AllButImmortal(size));
        // Everyone must adopt p2's input in round 3 and keep it.
        assert!(decisions.iter().all(|&d| d == 302), "{decisions:?}");
    }

    #[test]
    fn agreement_locks_in_at_the_immortal_round() {
        // Drive by hand: immortal p0 coordinates round 1, so everyone
        // agrees immediately; later rounds cannot diverge even if later
        // coordinators are heard by only some processes.
        let size = n(4);

        struct FlakyLate(SystemSize);
        impl rrfd_core::FaultDetector for FlakyLate {
            fn system_size(&self) -> SystemSize {
                self.0
            }
            fn next_round(&mut self, r: Round, _h: &FaultPattern) -> RoundFaults {
                let mut rf = RoundFaults::none(self.0);
                if r.get() >= 2 {
                    // Half the processes miss the round's coordinator.
                    let coord = SRotatingConsensus::coordinator(self.0, r);
                    for i in 0..2 {
                        if ProcessId::new(i) != coord {
                            rf.set(ProcessId::new(i), IdSet::singleton(coord));
                        }
                    }
                }
                rf
            }
        }

        let decisions = run_consensus(size, &mut FlakyLate(size));
        assert!(decisions.windows(2).all(|w| w[0] == w[1]), "{decisions:?}");
        assert_eq!(decisions[0], 300, "round-1 coordinator's input wins");
    }

    #[test]
    fn without_p6_the_protocol_can_be_broken() {
        // Sanity for the reduction: an adversary outside P6 (suspecting
        // every process at some point) defeats rotating adoption. The
        // engine rejects it when run under the P6 model, demonstrating the
        // predicate is what carries the algorithm.
        let size = n(3);

        struct RotatingBlackout(SystemSize);
        impl rrfd_core::FaultDetector for RotatingBlackout {
            fn system_size(&self) -> SystemSize {
                self.0
            }
            fn next_round(&mut self, r: Round, _h: &FaultPattern) -> RoundFaults {
                // Everyone misses the round's coordinator, every round.
                let coord = SRotatingConsensus::coordinator(self.0, r);
                let sets = self
                    .0
                    .processes()
                    .map(|i| {
                        if i == coord {
                            IdSet::empty()
                        } else {
                            IdSet::singleton(coord)
                        }
                    })
                    .collect();
                RoundFaults::from_sets(self.0, sets)
            }
        }

        let inputs: Vec<Value> = vec![1, 2, 3];
        let protos: Vec<_> = inputs
            .iter()
            .map(|&v| SRotatingConsensus::new(size, v))
            .collect();
        let model = DetectorS::new(size);
        let err = Engine::new(size)
            .run(protos, &mut RotatingBlackout(size), &model)
            .unwrap_err();
        assert!(matches!(err, rrfd_core::EngineError::Violation(_)));
    }
}
