//! §5: consensus in **two steps** in the semi-synchronous model of Dolev,
//! Dwork and Stockmeyer — resolving their open problem on the existence of
//! an O(1)-time algorithm.
//!
//! The 2-step round primitive (Theorem 5.1): a process's execution occurs
//! in blocks of two atomic steps. At its first step of round `r`, if the
//! process has already received a round-`r` message it *suppresses* its own
//! broadcast (acting as if it omitted to send); otherwise it broadcasts its
//! round-`r` message. At the end of its second step it sets `D(i,r)` to the
//! processes from which no round-`r` message arrived. The first
//! receive/send acts as an atomic read-modify-write, and synchronous
//! communication delivers the round's (unique) broadcast to everyone before
//! their round ends — so every process computes the *same* `D(i,r)`:
//! equation 5 holds, the k = 1 uncertainty detector exists, and Theorem
//! 3.1's one-round algorithm gives consensus in two steps.
//!
//! [`TwoStepConsensus`] implements the single-round version;
//! [`RepeatedRounds`] iterates the primitive for `R` rounds (flood-min over
//! identical views), which doubles as the O(n)-step DDS-style baseline the
//! E10 experiment measures against (`R = n`, hence `2n` steps).

use rrfd_core::task::Value;
use rrfd_core::{Control, IdSet, ProcessId, SystemSize};
use rrfd_sims::semi_sync::SemiSyncProcess;
use std::sync::Arc;

/// A round-tagged broadcast of the 2-step primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundBroadcast {
    /// The 2-step round this message belongs to.
    pub round: u32,
    /// The sender's current value.
    pub value: Value,
    /// The sender (explicit, so suppressed processes can attribute
    /// buffered messages even after crashes).
    pub sender: ProcessId,
}

/// The §5 two-step consensus process.
#[derive(Debug, Clone)]
pub struct TwoStepConsensus {
    me: ProcessId,
    n: SystemSize,
    value: Value,
    step_in_round: u32,
    /// Round-1 messages received so far, by sender.
    received: Vec<Option<Value>>,
    /// The extracted `D(me, 1)` (for the equation-5 check), filled at
    /// decision time.
    suspected: Option<IdSet>,
}

impl TwoStepConsensus {
    /// Creates the process proposing `value`.
    #[must_use]
    pub fn new(n: SystemSize, me: ProcessId, value: Value) -> Self {
        TwoStepConsensus {
            me,
            n,
            value,
            step_in_round: 0,
            received: vec![None; n.get()],
            suspected: None,
        }
    }

    /// The extracted `D(me, 1)`, available after the decision.
    #[must_use]
    pub fn suspected(&self) -> Option<IdSet> {
        self.suspected
    }

    fn absorb(&mut self, received: &[(ProcessId, Arc<RoundBroadcast>)]) {
        for (_, msg) in received {
            if msg.round == 1 {
                self.received[msg.sender.index()] = Some(msg.value);
            }
        }
    }

    fn heard(&self) -> IdSet {
        self.received
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_some())
            .map(|(j, _)| ProcessId::new(j))
            .collect()
    }
}

impl SemiSyncProcess for TwoStepConsensus {
    type Msg = RoundBroadcast;
    type Output = Value;

    fn step(
        &mut self,
        received: &[(ProcessId, Arc<RoundBroadcast>)],
    ) -> (Option<RoundBroadcast>, Control<Value>) {
        self.absorb(received);
        self.step_in_round += 1;
        match self.step_in_round {
            1 => {
                // The atomic read-modify-write: broadcast only if no
                // round-1 message has arrived yet.
                if self.heard().is_empty() {
                    (
                        Some(RoundBroadcast {
                            round: 1,
                            value: self.value,
                            sender: self.me,
                        }),
                        Control::Continue,
                    )
                } else {
                    (None, Control::Continue)
                }
            }
            2 => {
                let heard = self.heard();
                self.suspected = Some(heard.complement(self.n));
                let winner = heard
                    .min()
                    .expect("synchronous delivery guarantees the round broadcast arrived");
                let value = self.received[winner.index()].expect("winner was heard");
                (None, Control::Decide(value))
            }
            _ => (None, Control::Continue),
        }
    }
}

/// The iterated 2-step primitive: `rounds` rounds of identical-view
/// flood-min, deciding after the last round. With `rounds = n` this is the
/// 2n-step baseline shape of the original DDS algorithm.
#[derive(Debug, Clone)]
pub struct RepeatedRounds {
    me: ProcessId,
    n: SystemSize,
    value: Value,
    rounds: u32,
    current_round: u32,
    step_in_round: u32,
    received: Vec<Option<Value>>,
    /// Early messages for future rounds.
    early: Vec<RoundBroadcast>,
}

impl RepeatedRounds {
    /// Creates the process proposing `value`, running `rounds` 2-step
    /// rounds.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    #[must_use]
    pub fn new(n: SystemSize, me: ProcessId, value: Value, rounds: u32) -> Self {
        assert!(rounds >= 1, "at least one round required");
        RepeatedRounds {
            me,
            n,
            value,
            rounds,
            current_round: 1,
            step_in_round: 0,
            received: vec![None; n.get()],
            early: Vec::new(),
        }
    }

    fn absorb(&mut self, received: &[(ProcessId, Arc<RoundBroadcast>)]) {
        for (_, msg) in received {
            self.note(**msg);
        }
        let pending = std::mem::take(&mut self.early);
        for msg in pending {
            self.note(msg);
        }
    }

    fn note(&mut self, msg: RoundBroadcast) {
        use std::cmp::Ordering;
        match msg.round.cmp(&self.current_round) {
            Ordering::Equal => self.received[msg.sender.index()] = Some(msg.value),
            Ordering::Greater => self.early.push(msg),
            Ordering::Less => {}
        }
    }

    fn any_current(&self) -> bool {
        self.received.iter().any(Option::is_some)
    }
}

impl SemiSyncProcess for RepeatedRounds {
    type Msg = RoundBroadcast;
    type Output = Value;

    fn step(
        &mut self,
        received: &[(ProcessId, Arc<RoundBroadcast>)],
    ) -> (Option<RoundBroadcast>, Control<Value>) {
        self.absorb(received);
        self.step_in_round += 1;
        if self.step_in_round == 1 {
            if self.any_current() {
                return (None, Control::Continue);
            }
            return (
                Some(RoundBroadcast {
                    round: self.current_round,
                    value: self.value,
                    sender: self.me,
                }),
                Control::Continue,
            );
        }

        // Second step: adopt the value of the lowest-id heard sender —
        // Theorem 3.1's rule with k = 1. Every process hears exactly the
        // round's unique broadcaster, so all values coincide after this.
        if let Some(v) = self.received.iter().flatten().next() {
            self.value = *v;
        }
        if self.current_round >= self.rounds {
            return (None, Control::Decide(self.value));
        }
        self.current_round += 1;
        self.step_in_round = 0;
        self.received = vec![None; self.n.get()];
        // Re-file buffered early messages for the new round.
        let pending = std::mem::take(&mut self.early);
        for msg in pending {
            self.note(msg);
        }
        (None, Control::Continue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrfd_core::task::KSetAgreement;
    use rrfd_sims::semi_sync::{FairSemiSync, RandomSemiSync, SemiSyncSim};

    fn n(v: usize) -> SystemSize {
        SystemSize::new(v).unwrap()
    }

    fn inputs(count: usize) -> Vec<Value> {
        (0..count as u64).map(|i| 500 + i).collect()
    }

    #[test]
    fn two_steps_suffice_under_fair_schedules() {
        let size = n(5);
        let ins = inputs(5);
        let procs: Vec<_> = size
            .processes()
            .map(|p| TwoStepConsensus::new(size, p, ins[p.index()]))
            .collect();
        let report = SemiSyncSim::new(size)
            .run(procs, &mut FairSemiSync::new())
            .unwrap();
        assert!(report.all_correct_decided());
        assert_eq!(report.max_steps_to_decide(), Some(2), "§5's headline bound");
        let values: Vec<Value> = report
            .outputs
            .iter()
            .map(|o| o.as_ref().unwrap().0)
            .collect();
        assert!(
            values.windows(2).all(|w| w[0] == w[1]),
            "consensus violated"
        );
    }

    #[test]
    fn consensus_holds_under_random_schedules_and_crashes() {
        let size = n(6);
        let ins = inputs(6);
        let task = KSetAgreement::consensus();
        for seed in 0..40u64 {
            let procs: Vec<_> = size
                .processes()
                .map(|p| TwoStepConsensus::new(size, p, ins[p.index()]))
                .collect();
            let mut sched = RandomSemiSync::new(seed, 5).crash_prob(0.05);
            let report = SemiSyncSim::new(size).run(procs, &mut sched).unwrap();
            assert!(report.all_correct_decided(), "seed {seed}");
            let outs: Vec<Option<Value>> = report
                .outputs
                .iter()
                .map(|o| o.as_ref().map(|&(v, _)| v))
                .collect();
            task.check(&ins, &outs)
                .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
            // Every decider used exactly 2 steps.
            for out in report.outputs.iter().flatten() {
                assert_eq!(out.1, 2, "seed {seed}");
            }
        }
    }

    #[test]
    fn views_are_identical_across_deciders() {
        // Theorem 5.1 / equation 5: every decider extracted the same D.
        let size = n(6);
        let ins = inputs(6);
        for seed in 0..30u64 {
            let procs: Vec<_> = size
                .processes()
                .map(|p| TwoStepConsensus::new(size, p, ins[p.index()]))
                .collect();
            let mut sched = RandomSemiSync::new(seed, 3).crash_prob(0.04);
            let report = SemiSyncSim::new(size).run(procs, &mut sched).unwrap();
            let views: Vec<IdSet> = report
                .processes
                .iter()
                .filter_map(TwoStepConsensus::suspected)
                .collect();
            assert!(
                views.windows(2).all(|w| w[0] == w[1]),
                "seed {seed}: equation 5 violated: {views:?}"
            );
        }
    }

    #[test]
    fn exhaustive_proof_for_small_systems() {
        // Enumerate EVERY semi-synchronous schedule (including every
        // possible crash placement within the budget) for n = 2 and 3:
        // Theorem 5.1 and the 2-step consensus, proved by enumeration.
        use rrfd_sims::explore::semi_sync::explore_semi_sync_checked;
        use rrfd_sims::semi_sync::SemiSyncSim;

        for (nv, crashes) in [(2usize, 1usize), (3, 1), (3, 2)] {
            let size = n(nv);
            let ins = inputs(nv);
            let task = KSetAgreement::consensus();
            let sim = SemiSyncSim::new(size);
            let make = || {
                size.processes()
                    .map(|p| TwoStepConsensus::new(size, p, ins[p.index()]))
                    .collect::<Vec<_>>()
            };
            let mut explored = 0usize;
            let total = explore_semi_sync_checked(
                &sim,
                crashes,
                make,
                |report| {
                    explored += 1;
                    // Consensus among deciders.
                    let outs: Vec<Option<Value>> = report
                        .outputs
                        .iter()
                        .map(|o| o.as_ref().map(|&(v, _)| v))
                        .collect();
                    task.check(&ins, &outs).map_err(|v| {
                        format!("n={nv} crashes={crashes} schedule #{explored}: {v}")
                    })?;
                    // Equation 5: identical views among deciders.
                    let views: Vec<IdSet> = report
                        .processes
                        .iter()
                        .filter_map(TwoStepConsensus::suspected)
                        .collect();
                    if !views.windows(2).all(|w| w[0] == w[1]) {
                        return Err(format!(
                            "n={nv} crashes={crashes} schedule #{explored}: {views:?}"
                        ));
                    }
                    // Two steps per decider.
                    for out in report.outputs.iter().flatten() {
                        if out.1 != 2 {
                            return Err(format!(
                                "n={nv} crashes={crashes} schedule #{explored}: \
                                 decided in {} steps, expected 2",
                                out.1
                            ));
                        }
                    }
                    Ok(())
                },
                2_000_000,
            )
            .unwrap_or_else(|cex| panic!("{cex}"));
            assert!(
                total.schedules > 10,
                "n={nv}: only {} schedules",
                total.schedules
            );
        }
    }

    #[test]
    fn repeated_rounds_match_single_round_outcome() {
        let size = n(5);
        let ins = inputs(5);
        let rounds = 5; // 2n steps: the DDS baseline shape.
        let procs: Vec<_> = size
            .processes()
            .map(|p| RepeatedRounds::new(size, p, ins[p.index()], rounds))
            .collect();
        let report = SemiSyncSim::new(size)
            .run(procs, &mut FairSemiSync::new())
            .unwrap();
        assert!(report.all_correct_decided());
        assert_eq!(report.max_steps_to_decide(), Some(2 * u64::from(rounds)));
        let values: Vec<Value> = report
            .outputs
            .iter()
            .map(|o| o.as_ref().unwrap().0)
            .collect();
        assert!(values.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn repeated_rounds_survive_random_schedules() {
        let size = n(4);
        let ins = inputs(4);
        let task = KSetAgreement::consensus();
        for seed in 0..25u64 {
            let procs: Vec<_> = size
                .processes()
                .map(|p| RepeatedRounds::new(size, p, ins[p.index()], 4))
                .collect();
            let mut sched = RandomSemiSync::new(seed, 3).crash_prob(0.03);
            let report = SemiSyncSim::new(size).run(procs, &mut sched).unwrap();
            assert!(report.all_correct_decided(), "seed {seed}");
            let outs: Vec<Option<Value>> = report
                .outputs
                .iter()
                .map(|o| o.as_ref().map(|&(v, _)| v))
                .collect();
            task.check(&ins, &outs)
                .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        }
    }
}
