//! The wait-free adopt-commit protocol of §4.2 (after Yang-Neiger-Gafni),
//! used to convert the omission-fault simulation of Theorem 4.1 into the
//! crash-fault simulation of Theorem 4.3.
//!
//! Over two arrays of SWMR registers `C_{·,1}` and `C_{·,2}`:
//!
//! ```text
//! write v_i to C_{i,1}
//! S := ∪_j read C_{j,1}
//! if S ∖ {⊥} = {v}  then C_{i,2} := "commit v"  else C_{i,2} := "adopt v_i"
//! S := ∪_j read C_{j,2}
//! if S ∖ {⊥} = {commit v}      then return (Commit, v)
//! else if "commit v" ∈ S       then return (Adopt, v)
//! else                              return (Adopt, v_i)
//! ```
//!
//! Guarantees (checked by [`rrfd_core::task::AdoptCommitSpec`]): if all
//! inputs are `v` everyone commits `v`; if anyone commits `v` everyone
//! outputs `v` (commit or adopt); outputs are inputs. The protocol is
//! wait-free: no step waits on another process.
//!
//! [`AdoptCommitMachine`] is the protocol as an abstract one-op-per-step
//! state machine, so it can run both directly on the shared-memory
//! simulator ([`AdoptCommitProcess`]) and *embedded* as a sub-protocol of
//! the Theorem 4.3 synchronous-round simulation.

use rrfd_core::task::{AdoptCommitOutput, Grade, Value};
use rrfd_core::{ProcessId, SystemSize};
use rrfd_sims::shared_mem::{Action, MemProcess, Observation};
use std::collections::BTreeSet;

/// Which of the protocol's two register arrays an operation touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcBank {
    /// The proposal array `C_{·,1}`.
    First,
    /// The vote array `C_{·,2}`.
    Second,
}

/// A register cell value of the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcCell {
    /// A phase-1 proposal.
    Proposal(Value),
    /// A phase-2 vote: `commit v` or `adopt v`.
    Vote(Grade, Value),
}

/// An abstract operation the machine asks its host to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcOp {
    /// Write `cell` into this process's register of `bank`.
    Write {
        /// Target array.
        bank: AcBank,
        /// Value to store.
        cell: AcCell,
    },
    /// Read the register of `owner` in `bank`.
    Read {
        /// Array to read.
        bank: AcBank,
        /// Whose register.
        owner: ProcessId,
    },
}

/// The host's answer to the previous [`AcOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcObs {
    /// The write completed.
    Written,
    /// The value read (`None` = still ⊥).
    Value(Option<AcCell>),
}

/// What the machine wants next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcStep {
    /// Perform this operation and call [`AdoptCommitMachine::on`] with the
    /// result.
    Op(AcOp),
    /// The protocol finished with this output.
    Done(AdoptCommitOutput),
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Phase {
    ReadFirst { next: usize },
    ReadSecond { next: usize },
    AwaitSecondWrite,
}

/// The adopt-commit protocol as a host-agnostic state machine.
#[derive(Debug, Clone)]
pub struct AdoptCommitMachine {
    me: ProcessId,
    n: SystemSize,
    input: Value,
    phase: Phase,
    seen_first: BTreeSet<Value>,
    seen_second: Vec<(Grade, Value)>,
}

impl AdoptCommitMachine {
    /// Starts the protocol; returns the machine and its first operation
    /// (the phase-1 write of `input`).
    #[must_use]
    pub fn start(n: SystemSize, me: ProcessId, input: Value) -> (Self, AcOp) {
        let machine = AdoptCommitMachine {
            me,
            n,
            input,
            phase: Phase::ReadFirst { next: 0 },
            seen_first: BTreeSet::new(),
            seen_second: Vec::new(),
        };
        let op = AcOp::Write {
            bank: AcBank::First,
            cell: AcCell::Proposal(input),
        };
        (machine, op)
    }

    /// Feeds the previous operation's result; returns the next step.
    ///
    /// # Panics
    ///
    /// Panics if the host feeds an observation inconsistent with the
    /// machine's last request (e.g. a `Value` after a write), or a cell
    /// from the wrong bank.
    pub fn on(&mut self, obs: AcObs) -> AcStep {
        match (&mut self.phase, obs) {
            // Phase 1 scan: after the initial write, and after each read.
            (Phase::ReadFirst { next }, AcObs::Written) => {
                assert_eq!(*next, 0, "unexpected write completion mid-scan");
                AcStep::Op(AcOp::Read {
                    bank: AcBank::First,
                    owner: ProcessId::new(0),
                })
            }
            (Phase::ReadFirst { next }, AcObs::Value(cell)) => {
                match cell {
                    Some(AcCell::Proposal(v)) => {
                        self.seen_first.insert(v);
                    }
                    Some(AcCell::Vote(..)) => panic!("phase-1 read returned a vote"),
                    None => {}
                }
                *next += 1;
                if *next < self.n.get() {
                    let owner = ProcessId::new(*next);
                    AcStep::Op(AcOp::Read {
                        bank: AcBank::First,
                        owner,
                    })
                } else {
                    // Scan done: vote.
                    let vote = if self.seen_first.len() == 1 {
                        let v = *self.seen_first.iter().next().expect("len checked");
                        AcCell::Vote(Grade::Commit, v)
                    } else {
                        AcCell::Vote(Grade::Adopt, self.input)
                    };
                    self.phase = Phase::AwaitSecondWrite;
                    AcStep::Op(AcOp::Write {
                        bank: AcBank::Second,
                        cell: vote,
                    })
                }
            }
            (Phase::AwaitSecondWrite, AcObs::Written) => {
                self.phase = Phase::ReadSecond { next: 0 };
                AcStep::Op(AcOp::Read {
                    bank: AcBank::Second,
                    owner: ProcessId::new(0),
                })
            }
            (Phase::ReadSecond { next }, AcObs::Value(cell)) => {
                match cell {
                    Some(AcCell::Vote(g, v)) => self.seen_second.push((g, v)),
                    Some(AcCell::Proposal(_)) => panic!("phase-2 read returned a proposal"),
                    None => {}
                }
                *next += 1;
                if *next < self.n.get() {
                    let owner = ProcessId::new(*next);
                    AcStep::Op(AcOp::Read {
                        bank: AcBank::Second,
                        owner,
                    })
                } else {
                    AcStep::Done(self.conclude())
                }
            }
            (phase, obs) => panic!("observation {obs:?} inconsistent with phase {phase:?}"),
        }
    }

    /// The paper's final case analysis over the phase-2 scan.
    fn conclude(&self) -> AdoptCommitOutput {
        let mut committed: BTreeSet<Value> = BTreeSet::new();
        let mut saw_adopt = false;
        for &(g, v) in &self.seen_second {
            match g {
                Grade::Commit => {
                    committed.insert(v);
                }
                Grade::Adopt => saw_adopt = true,
            }
        }
        // The scan always sees at least this process's own vote.
        if !saw_adopt && committed.len() == 1 {
            let v = *committed.iter().next().expect("len checked");
            return (Grade::Commit, v);
        }
        if let Some(&v) = committed.iter().next() {
            return (Grade::Adopt, v);
        }
        (Grade::Adopt, self.input)
    }

    /// Every phase-1 proposal this process read (its own included once the
    /// scan passes its own cell). The Theorem 4.3 host uses this to recover
    /// a `p_j-alive` value after adopting `p_j-faulty`.
    pub fn proposals_seen(&self) -> impl Iterator<Item = Value> + '_ {
        self.seen_first.iter().copied()
    }

    /// The input this machine proposed.
    #[must_use]
    pub fn input(&self) -> Value {
        self.input
    }

    /// The process running this machine.
    #[must_use]
    pub fn me(&self) -> ProcessId {
        self.me
    }
}

/// Runs one adopt-commit instance directly on the shared-memory simulator,
/// using memory banks `2·instance` (phase 1) and `2·instance + 1`
/// (phase 2).
#[derive(Debug, Clone)]
pub struct AdoptCommitProcess {
    machine: AdoptCommitMachine,
    pending: Option<AcOp>,
    base_bank: usize,
}

impl AdoptCommitProcess {
    /// Creates the process for `instance` (bank pair) proposing `input`.
    #[must_use]
    pub fn new(n: SystemSize, me: ProcessId, input: Value, instance: usize) -> Self {
        let (machine, first_op) = AdoptCommitMachine::start(n, me, input);
        AdoptCommitProcess {
            machine,
            pending: Some(first_op),
            base_bank: 2 * instance,
        }
    }

    fn bank(&self, b: AcBank) -> usize {
        match b {
            AcBank::First => self.base_bank,
            AcBank::Second => self.base_bank + 1,
        }
    }

    fn to_action(&self, op: AcOp) -> Action<AcCell, AdoptCommitOutput> {
        match op {
            AcOp::Write { bank, cell } => Action::Write {
                bank: self.bank(bank),
                value: cell,
            },
            AcOp::Read { bank, owner } => Action::Read {
                bank: self.bank(bank),
                owner,
            },
        }
    }
}

impl MemProcess<AcCell> for AdoptCommitProcess {
    type Output = AdoptCommitOutput;

    fn step(&mut self, obs: Observation<AcCell>) -> Action<AcCell, AdoptCommitOutput> {
        if let Observation::Start = obs {
            let op = self.pending.take().expect("first op staged at creation");
            return self.to_action(op);
        }
        let ac_obs = match obs {
            Observation::Written => AcObs::Written,
            Observation::Value(v) => AcObs::Value(v),
            Observation::Start => unreachable!("handled above"),
            other => unreachable!("adopt-commit never snapshots or proposes: {other:?}"),
        };
        match self.machine.on(ac_obs) {
            AcStep::Op(op) => self.to_action(op),
            AcStep::Done(out) => Action::Decide(out),
        }
    }
}

/// Convenience: run one adopt-commit instance over the shared-memory
/// simulator and return the outputs.
///
/// # Errors
///
/// Propagates [`rrfd_sims::shared_mem::MemSimError`].
///
/// # Panics
///
/// Panics if `inputs.len() != n`.
pub fn run_adopt_commit<S>(
    n: SystemSize,
    inputs: &[Value],
    scheduler: &mut S,
) -> Result<Vec<Option<AdoptCommitOutput>>, rrfd_sims::shared_mem::MemSimError>
where
    S: rrfd_sims::shared_mem::MemScheduler + ?Sized,
{
    assert_eq!(inputs.len(), n.get(), "one input per process");
    let procs: Vec<_> = n
        .processes()
        .map(|p| AdoptCommitProcess::new(n, p, inputs[p.index()], 0))
        .collect();
    let report = rrfd_sims::shared_mem::SharedMemSim::new(n, 2).run(procs, scheduler)?;
    Ok(report.outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrfd_core::task::AdoptCommitSpec;
    use rrfd_sims::shared_mem::{FairScheduler, RandomScheduler};

    fn n(v: usize) -> SystemSize {
        SystemSize::new(v).unwrap()
    }

    #[test]
    fn unanimous_inputs_commit() {
        let size = n(4);
        let outs = run_adopt_commit(size, &[9, 9, 9, 9], &mut FairScheduler::new()).unwrap();
        for out in outs {
            assert_eq!(out, Some((Grade::Commit, 9)));
        }
    }

    #[test]
    fn spec_holds_under_random_schedules() {
        let size = n(5);
        let spec = AdoptCommitSpec;
        let input_sets: &[&[Value]] = &[
            &[1, 1, 1, 1, 1],
            &[1, 2, 1, 2, 1],
            &[1, 2, 3, 4, 5],
            &[5, 5, 5, 5, 1],
        ];
        for inputs in input_sets {
            for seed in 0..30u64 {
                // Wait-free: crashes can never block others. Allow n−1.
                let mut sched = RandomScheduler::new(seed, 4).crash_prob(0.03);
                let outs = run_adopt_commit(size, inputs, &mut sched).unwrap();
                let deciders: Vec<AdoptCommitOutput> = outs.iter().copied().flatten().collect();
                if deciders.len() == outs.len() {
                    // Crash-free run: the full spec applies.
                    spec.check(inputs, &outs)
                        .unwrap_or_else(|v| panic!("inputs {inputs:?} seed {seed}: {v}"));
                    continue;
                }
                // With crashes, check the spec restricted to deciders:
                // validity, commit-agreement, and convergence.
                let unanimous = inputs.windows(2).all(|w| w[0] == w[1]).then(|| inputs[0]);
                for &(grade, v) in &deciders {
                    assert!(inputs.contains(&v), "seed {seed}: validity");
                    if let Some(u) = unanimous {
                        assert_eq!((grade, v), (Grade::Commit, u), "seed {seed}: convergence");
                    }
                }
                for &(grade, v) in &deciders {
                    if grade == Grade::Commit {
                        for &(_, w) in &deciders {
                            assert_eq!(w, v, "seed {seed}: commit agreement");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn commit_forces_everyone_onto_the_value() {
        let size = n(4);
        for seed in 0..50u64 {
            let inputs = [3, 3, 3, 8];
            let mut sched = RandomScheduler::new(seed, 0);
            let outs = run_adopt_commit(size, &inputs, &mut sched).unwrap();
            let outs: Vec<AdoptCommitOutput> = outs.into_iter().map(|o| o.unwrap()).collect();
            if outs.iter().any(|&(g, v)| g == Grade::Commit && v == 3) {
                for &(_, v) in &outs {
                    assert_eq!(v, 3, "seed {seed}: commit 3 but output {outs:?}");
                }
            }
        }
    }

    #[test]
    fn machine_is_wait_free_step_bounded() {
        // Exactly 2 writes + 2n reads per process, regardless of others.
        let size = n(6);
        let (mut m, first) = AdoptCommitMachine::start(size, ProcessId::new(0), 4);
        let mut ops = vec![first];
        let mut obs = AcObs::Written;
        loop {
            match m.on(obs) {
                AcStep::Op(op) => {
                    ops.push(op);
                    obs = match op {
                        AcOp::Write { .. } => AcObs::Written,
                        // Everyone else is ⊥: total isolation.
                        AcOp::Read { owner, .. } => {
                            if owner == ProcessId::new(0) {
                                // Own cells were written.
                                match ops.iter().rev().find(|o| matches!(o, AcOp::Write { .. })) {
                                    Some(AcOp::Write { cell, .. }) => AcObs::Value(Some(*cell)),
                                    _ => AcObs::Value(None),
                                }
                            } else {
                                AcObs::Value(None)
                            }
                        }
                    };
                }
                AcStep::Done(out) => {
                    // Solo run: must commit its own value.
                    assert_eq!(out, (Grade::Commit, 4));
                    break;
                }
            }
        }
        assert_eq!(ops.len(), 2 + 2 * 6, "2 writes + 2n reads");
    }

    #[test]
    fn exhaustive_two_process_verification() {
        // Enumerate EVERY interleaving of two adopt-commit participants
        // (each takes 2 writes + 4 reads + decide = 7 steps; C(14,7) = 3432
        // schedules) and check the full specification on each — a
        // proof-by-enumeration for n = 2.
        use rrfd_core::task::AdoptCommitSpec;
        use rrfd_sims::explore::explore_schedules_checked;
        use rrfd_sims::shared_mem::SharedMemSim;

        let size = n(2);
        for inputs in [[4u64, 4u64], [4, 9]] {
            let sim = SharedMemSim::new(size, 2);
            let make = || {
                vec![
                    AdoptCommitProcess::new(size, ProcessId::new(0), inputs[0], 0),
                    AdoptCommitProcess::new(size, ProcessId::new(1), inputs[1], 0),
                ]
            };
            let mut runs = 0usize;
            let total = explore_schedules_checked(
                &sim,
                make,
                |report| {
                    runs += 1;
                    AdoptCommitSpec
                        .check(&inputs, &report.outputs)
                        .map_err(|v| format!("inputs {inputs:?}, schedule #{runs}: {v}"))
                },
                10_000,
            )
            .unwrap_or_else(|cex| panic!("{cex}"));
            assert_eq!(total.schedules, 3432, "inputs {inputs:?}");
        }
    }

    #[test]
    fn outputs_are_always_inputs() {
        let size = n(3);
        for seed in 0..40u64 {
            let inputs = [11, 22, 33];
            let mut sched = RandomScheduler::new(seed, 1).crash_prob(0.05);
            let outs = run_adopt_commit(size, &inputs, &mut sched).unwrap();
            for out in outs.into_iter().flatten() {
                assert!(inputs.contains(&out.1), "seed {seed}: {out:?}");
            }
        }
    }
}
