//! Consensus under the **eventually strong** detector ◊S, as an RRFD —
//! rederiving the Chandra-Toueg result inside the framework (the §7
//! future-work direction, in the structured style of the paper's companion
//! reference \[16\]).
//!
//! Under [`EventuallyStrong`](rrfd_models::predicates::EventuallyStrong)
//! the adversary may suspect *everyone* before stabilization, so item 6's
//! simple rotation is unsafe; the classical remedy is coordinator phases
//! with quorum locking (`2f < n`). Each phase `φ` takes three rounds, with
//! coordinator `c_φ = p_{(φ−1) mod n}`:
//!
//! 1. **gather** — everyone emits its timestamped estimate `(v, ts)`; the
//!    coordinator selects the estimate with the highest `ts` among the
//!    `≥ n − f` it receives (eq. 3 guarantees that many).
//! 2. **propose** — the coordinator emits its selection `v_φ`; a process
//!    that hears the coordinator adopts `(v_φ, φ)`.
//! 3. **confirm** — everyone emits whether it adopted in this phase; a
//!    process that hears `≥ n − f` adopters decides `v_φ`.
//!
//! *Safety* is the Paxos/Synod argument: a decision at `φ` puts `(v_φ, φ)`
//! at `≥ n − f` processes; every later gather (also `≥ n − f`, quorums
//! intersect since `2f < n`) contains one of them, and by induction every
//! proposal after `φ` re-proposes `v_φ`. *Liveness*: once the detector
//! stabilizes, the immortal process's next coordination phase is heard by
//! everyone, everyone adopts, and everyone confirms.

use rrfd_core::task::Value;
use rrfd_core::{Control, Delivery, ProcessId, Round, RoundProtocol, SystemSize};

/// A phase message: the role depends on the round within the phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseMsg {
    /// Gather round: the sender's current `(estimate, timestamp)`.
    Estimate(Value, u32),
    /// Propose round: the coordinator's proposal (others send `Noop`).
    Proposal(Value),
    /// Confirm round: whether the sender adopted in this phase.
    Ack(bool),
    /// Filler for non-coordinators in the propose round.
    Noop,
}

/// The ◊S consensus process.
#[derive(Debug, Clone)]
pub struct DiamondSConsensus {
    me: ProcessId,
    n: SystemSize,
    f: usize,
    estimate: Value,
    timestamp: u32,
    /// The proposal staged by the coordinator between gather and propose.
    staged: Option<Value>,
    /// Whether this process adopted in the current phase.
    adopted: bool,
    decided: bool,
}

impl DiamondSConsensus {
    /// Creates a process proposing `input` in a system tolerating `f`
    /// suspicions per round.
    ///
    /// # Panics
    ///
    /// Panics unless `2f < n`.
    #[must_use]
    pub fn new(n: SystemSize, me: ProcessId, f: usize, input: Value) -> Self {
        assert!(2 * f < n.get(), "◊S consensus requires 2f < n");
        DiamondSConsensus {
            me,
            n,
            f,
            estimate: input,
            timestamp: 0,
            staged: None,
            adopted: false,
            decided: false,
        }
    }

    /// The phase of a round (1-based) and the position within it (0..3).
    fn phase_of(round: Round) -> (u32, u32) {
        let idx = round.get() - 1;
        (idx / 3 + 1, idx % 3)
    }

    /// The coordinator of phase `φ`.
    #[must_use]
    pub fn coordinator(n: SystemSize, phase: u32) -> ProcessId {
        ProcessId::new(((phase - 1) as usize) % n.get())
    }
}

impl RoundProtocol for DiamondSConsensus {
    type Msg = PhaseMsg;
    type Output = Value;

    fn emit(&mut self, round: Round) -> PhaseMsg {
        let (phase, slot) = Self::phase_of(round);
        match slot {
            0 => PhaseMsg::Estimate(self.estimate, self.timestamp),
            1 => {
                if Self::coordinator(self.n, phase) == self.me {
                    PhaseMsg::Proposal(self.staged.unwrap_or(self.estimate))
                } else {
                    PhaseMsg::Noop
                }
            }
            _ => PhaseMsg::Ack(self.adopted),
        }
    }

    fn deliver(&mut self, d: Delivery<'_, PhaseMsg>) -> Control<Value> {
        let (phase, slot) = Self::phase_of(d.round);
        let coordinator = Self::coordinator(self.n, phase);
        match slot {
            0 => {
                // Gather: the coordinator locks onto the highest-timestamp
                // estimate it received (eq. 3 guarantees ≥ n − f arrive).
                if coordinator == self.me {
                    let best = d
                        .values()
                        .filter_map(|m| match m {
                            PhaseMsg::Estimate(v, ts) => Some((*ts, *v)),
                            _ => None,
                        })
                        .max_by_key(|&(ts, _)| ts);
                    self.staged = best.map(|(_, v)| v);
                }
                self.adopted = false;
                Control::Continue
            }
            1 => {
                // Propose: adopt the coordinator's value if heard.
                if let Some(&PhaseMsg::Proposal(v)) = d.get(coordinator) {
                    self.estimate = v;
                    self.timestamp = phase;
                    self.adopted = true;
                }
                Control::Continue
            }
            _ => {
                // Confirm: decide on a quorum of adopters.
                let acks = d
                    .values()
                    .filter(|m| matches!(m, PhaseMsg::Ack(true)))
                    .count();
                if !self.decided && self.adopted && acks >= self.n.get() - self.f {
                    self.decided = true;
                    Control::Decide(self.estimate)
                } else {
                    Control::Continue
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrfd_core::task::KSetAgreement;
    use rrfd_core::{Engine, SystemSize};
    use rrfd_models::adversary::RandomAdversary;
    use rrfd_models::predicates::EventuallyStrong;

    fn n(v: usize) -> SystemSize {
        SystemSize::new(v).unwrap()
    }

    fn run(size: SystemSize, f: usize, stabilization: u32, seed: u64) -> (Vec<Option<Value>>, u32) {
        let inputs: Vec<Value> = (0..size.get() as u64).map(|i| 600 + i).collect();
        let protos: Vec<_> = size
            .processes()
            .map(|p| DiamondSConsensus::new(size, p, f, inputs[p.index()]))
            .collect();
        let model = EventuallyStrong::new(size, f, Round::new(stabilization));
        let mut adv = RandomAdversary::new(model, seed);
        let report = Engine::new(size)
            .max_rounds(3 * (stabilization + 3 * size.get() as u32 + 3))
            .run(protos, &mut adv, &model)
            .unwrap();
        (report.outputs(), report.rounds_executed)
    }

    #[test]
    fn consensus_under_random_diamond_s() {
        for &(nv, f) in &[(3usize, 1usize), (5, 2), (7, 3)] {
            let size = n(nv);
            let inputs: Vec<Value> = (0..nv as u64).map(|i| 600 + i).collect();
            let task = KSetAgreement::consensus();
            for seed in 0..20u64 {
                let (outs, _) = run(size, f, 6, seed);
                task.check_terminating(&inputs, &outs)
                    .unwrap_or_else(|v| panic!("n={nv} f={f} seed={seed}: {v}"));
            }
        }
    }

    #[test]
    fn long_unstable_prefixes_are_survived() {
        // A late stabilization round forces many hopeless phases first;
        // safety must hold throughout and termination follows stabilization.
        let size = n(5);
        let inputs: Vec<Value> = (0..5u64).map(|i| 600 + i).collect();
        let task = KSetAgreement::consensus();
        for seed in 0..10u64 {
            let (outs, rounds) = run(size, 2, 30, seed);
            task.check_terminating(&inputs, &outs)
                .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
            // Deciding *before* stabilization is legal when the random
            // adversary happens to let a phase through — safety never
            // depends on stabilization, only termination does. A decision
            // needs at least one full phase.
            assert!(rounds >= 3, "no decision can precede a full phase");
        }
    }

    #[test]
    fn immediate_stability_decides_in_the_first_coordination() {
        // Stabilization before round 1 with the immortal as phase-1
        // coordinator: decide within one phase (3 rounds) when the sampler
        // never suspects p0... the sampler picks the least candidate, so
        // run with f = 1 and check decisions come fast.
        let size = n(3);
        let inputs: Vec<Value> = vec![600, 601, 602];
        let task = KSetAgreement::consensus();
        for seed in 0..10u64 {
            let (outs, rounds) = run(size, 1, 1, seed);
            task.check_terminating(&inputs, &outs)
                .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
            // Stabilized from round 2 on; a full cycle of 3 phases must
            // suffice (the immortal coordinates at least once).
            assert!(rounds <= 3 * 4, "seed {seed}: took {rounds} rounds");
        }
    }

    #[test]
    fn phase_arithmetic() {
        assert_eq!(DiamondSConsensus::phase_of(Round::new(1)), (1, 0));
        assert_eq!(DiamondSConsensus::phase_of(Round::new(3)), (1, 2));
        assert_eq!(DiamondSConsensus::phase_of(Round::new(4)), (2, 0));
        assert_eq!(DiamondSConsensus::coordinator(n(3), 1), ProcessId::new(0));
        assert_eq!(DiamondSConsensus::coordinator(n(3), 4), ProcessId::new(0));
        assert_eq!(DiamondSConsensus::coordinator(n(3), 5), ProcessId::new(1));
    }

    #[test]
    #[should_panic(expected = "2f < n")]
    fn resilience_condition_is_enforced() {
        let _ = DiamondSConsensus::new(n(4), ProcessId::new(0), 2, 1);
    }
}
