//! The one-shot **immediate snapshot** of Borowsky-Gafni \[4\] — the object
//! whose iteration gives "a nicely structured iterated model that is
//! equivalent to shared-memory", the direct inspiration for the RRFD
//! framework, and the reason §2 item 5's predicate has its shape.
//!
//! The classic wait-free *participating set* algorithm over SWMR memory:
//!
//! ```text
//! write my value; level := n + 1
//! repeat
//!     level := level − 1
//!     write level
//!     snapshot the level array
//!     S := { j : level_j ≤ level }
//! until |S| ≥ level
//! return view S
//! ```
//!
//! Guarantees, machine-checked here over adversarial schedules:
//!
//! * **self-inclusion** — `i ∈ view_i`;
//! * **containment** — `view_i ⊆ view_j` or `view_j ⊆ view_i`;
//! * **immediacy** — `j ∈ view_i ⇒ view_j ⊆ view_i`.
//!
//! Complementing each view (`D(i) = S ∖ view_i`) yields exactly a round of
//! the §2 item 5 snapshot predicate — [`views_to_round`] performs the
//! mapping and the tests certify it against
//! [`rrfd_models::predicates::Snapshot`].

use rrfd_core::{IdSet, ProcessId, RoundFaults, SystemSize};
use rrfd_sims::shared_mem::{Action, MemProcess, Observation};

/// The participating-set process. Memory layout: bank 0 holds values,
/// bank 1 holds levels.
#[derive(Debug, Clone)]
pub struct ImmediateSnapshot {
    value: u64,
    level: usize,
}

impl ImmediateSnapshot {
    /// Creates a participant contributing `value` among `n` processes.
    #[must_use]
    pub fn new(n: SystemSize, _me: ProcessId, value: u64) -> Self {
        ImmediateSnapshot {
            value,
            level: n.get() + 1,
        }
    }

    /// Banks required by the algorithm.
    pub const BANKS: usize = 2;
}

impl MemProcess<u64> for ImmediateSnapshot {
    type Output = IdSet;

    fn step(&mut self, obs: Observation<u64>) -> Action<u64, IdSet> {
        match obs {
            Observation::Start => Action::Write {
                bank: 0,
                value: self.value,
            },
            Observation::Written => {
                // Value (or the previous level) is down; descend a level.
                self.level -= 1;
                Action::Write {
                    bank: 1,
                    value: self.level as u64,
                }
            }
            Observation::SnapshotView(levels) => {
                let my_level = self.level as u64;
                let seen: IdSet = levels
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| matches!(l, Some(l) if *l <= my_level))
                    .map(|(j, _)| ProcessId::new(j))
                    .collect();
                if seen.len() >= self.level {
                    Action::Decide(seen)
                } else {
                    self.level -= 1;
                    Action::Write {
                        bank: 1,
                        value: self.level as u64,
                    }
                }
            }
            Observation::Value(_) | Observation::Chosen(_) => {
                unreachable!("participating set only writes and snapshots")
            }
        }
    }
}

/// Driver wrapper that inserts a snapshot of the level bank after every
/// level write, turning [`ImmediateSnapshot`]'s write/descend logic into
/// the full write-level/snapshot alternation of the algorithm.
#[derive(Debug, Clone)]
pub struct IsDriver {
    inner: ImmediateSnapshot,
    /// Whether the next `Written` belongs to the initial value write.
    value_written: bool,
}

impl IsDriver {
    /// Wraps a participant.
    #[must_use]
    pub fn new(inner: ImmediateSnapshot) -> Self {
        IsDriver {
            inner,
            value_written: false,
        }
    }
}

impl MemProcess<u64> for IsDriver {
    type Output = IdSet;

    fn step(&mut self, obs: Observation<u64>) -> Action<u64, IdSet> {
        match obs {
            Observation::Start => self.inner.step(Observation::Start),
            Observation::Written => {
                if !self.value_written {
                    // The initial value write: descend to the first level.
                    self.value_written = true;
                    self.inner.step(Observation::Written)
                } else {
                    // A level write completed: snapshot the level bank.
                    Action::Snapshot { bank: 1 }
                }
            }
            other => self.inner.step(other),
        }
    }
}

/// Maps a complete family of one-shot immediate-snapshot views to a round
/// of suspicion sets: `D(i) = S ∖ view_i`. With the immediate-snapshot
/// properties (self-inclusion + containment) the result is exactly a round
/// of the §2 item 5 snapshot predicate.
///
/// A crashed participant has no view and therefore no meaningful `D(i)`;
/// pass only complete runs here (the predicate quantifies over every
/// process).
///
/// # Panics
///
/// Panics if `views.len() != n`.
#[must_use]
pub fn views_to_round(n: SystemSize, views: &[IdSet]) -> RoundFaults {
    assert_eq!(views.len(), n.get(), "one view per process");
    let sets = views.iter().map(|v| v.complement(n)).collect();
    RoundFaults::from_sets(n, sets)
}

/// The **iterated** immediate-snapshot model of \[4\]: a fresh one-shot
/// immediate-snapshot object per round, each round's input being the
/// process's full state. This is the "nicely structured iterated model
/// equivalent to shared-memory" whose topological structure is the
/// iteration of a single round's — the direct ancestor of the RRFD idea.
///
/// Runs `rounds` instances back to back (banks `2r`, `2r+1` for round `r`)
/// and decides the per-round views.
#[derive(Debug, Clone)]
pub struct IteratedIS {
    me: ProcessId,
    n: SystemSize,
    rounds: u32,
    round: u32,
    driver: IsDriver,
    views: Vec<IdSet>,
}

impl IteratedIS {
    /// Creates a participant for `rounds` iterated rounds.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    #[must_use]
    pub fn new(n: SystemSize, me: ProcessId, rounds: u32) -> Self {
        assert!(rounds >= 1, "at least one round required");
        IteratedIS {
            me,
            n,
            rounds,
            round: 0,
            driver: IsDriver::new(ImmediateSnapshot::new(n, me, me.index() as u64)),
            views: Vec::new(),
        }
    }

    /// Banks required for `rounds` rounds.
    #[must_use]
    pub fn banks_needed(rounds: u32) -> usize {
        ImmediateSnapshot::BANKS * rounds as usize
    }

    /// Offsets a bank index into the current round's bank pair.
    fn rebase(&self, action: Action<u64, IdSet>) -> Action<u64, Vec<IdSet>> {
        let base = ImmediateSnapshot::BANKS * self.round as usize;
        match action {
            Action::Write { bank, value } => Action::Write {
                bank: base + bank,
                value,
            },
            Action::Read { bank, owner } => Action::Read {
                bank: base + bank,
                owner,
            },
            Action::Snapshot { bank } => Action::Snapshot { bank: base + bank },
            Action::Propose { object, value } => Action::Propose { object, value },
            Action::Decide(view) => {
                // One round finished: record and start the next (or stop).
                unreachable!("handled by the caller: {view:?}")
            }
        }
    }
}

impl MemProcess<u64> for IteratedIS {
    type Output = Vec<IdSet>;

    fn step(&mut self, obs: Observation<u64>) -> Action<u64, Vec<IdSet>> {
        match self.driver.step(obs) {
            Action::Decide(view) => {
                self.views.push(view);
                self.round += 1;
                if self.round >= self.rounds {
                    return Action::Decide(self.views.clone());
                }
                self.driver = IsDriver::new(ImmediateSnapshot::new(
                    self.n,
                    self.me,
                    self.me.index() as u64,
                ));
                let first = self.driver.step(Observation::Start);
                self.rebase(first)
            }
            other => self.rebase(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrfd_core::{FaultPattern, RrfdPredicate};
    use rrfd_models::predicates::Snapshot;
    use rrfd_sims::shared_mem::{FairScheduler, RandomScheduler, SharedMemSim};

    fn n(v: usize) -> SystemSize {
        SystemSize::new(v).unwrap()
    }

    fn run(size: SystemSize, seed: u64, crashes: usize) -> Vec<Option<IdSet>> {
        let procs: Vec<_> = size
            .processes()
            .map(|p| IsDriver::new(ImmediateSnapshot::new(size, p, p.index() as u64)))
            .collect();
        let mut sched = RandomScheduler::new(seed, crashes).crash_prob(0.02);
        let report = SharedMemSim::new(size, ImmediateSnapshot::BANKS)
            .with_snapshots()
            .run(procs, &mut sched)
            .unwrap();
        report.outputs
    }

    fn try_check_is_properties(views: &[Option<IdSet>]) -> Result<(), String> {
        for (i, vi) in views.iter().enumerate() {
            let Some(vi) = vi else { continue };
            // Self-inclusion.
            if !vi.contains(ProcessId::new(i)) {
                return Err(format!("p{i} missing from own view"));
            }
            for (j, vj) in views.iter().enumerate() {
                let Some(vj) = vj else { continue };
                // Containment.
                if !(vi.is_subset(*vj) || vj.is_subset(*vi)) {
                    return Err(format!(
                        "views of p{i} and p{j} incomparable: {vi:?} vs {vj:?}"
                    ));
                }
                // Immediacy.
                if vi.contains(ProcessId::new(j)) && !vj.is_subset(*vi) {
                    return Err(format!(
                        "immediacy broken: p{j} ∈ view(p{i}) but view(p{j}) ⊄"
                    ));
                }
            }
        }
        Ok(())
    }

    fn check_is_properties(views: &[Option<IdSet>]) {
        try_check_is_properties(views).unwrap_or_else(|msg| panic!("{msg}"));
    }

    #[test]
    fn exhaustive_two_process_verification() {
        // Every interleaving of two participants: check self-inclusion,
        // containment and immediacy on all of them.
        use rrfd_sims::explore::explore_schedules_checked;

        let size = n(2);
        let sim = SharedMemSim::new(size, ImmediateSnapshot::BANKS).with_snapshots();
        let make = || {
            vec![
                IsDriver::new(ImmediateSnapshot::new(size, ProcessId::new(0), 0)),
                IsDriver::new(ImmediateSnapshot::new(size, ProcessId::new(1), 1)),
            ]
        };
        let total = explore_schedules_checked(
            &sim,
            make,
            |report| try_check_is_properties(&report.outputs),
            100_000,
        )
        .unwrap_or_else(|cex| panic!("{cex}"));
        // The step counts vary by schedule (the until-loop), so just
        // require genuine coverage.
        assert!(
            total.schedules > 100,
            "only {} schedules explored",
            total.schedules
        );
        assert!(total.decision_points >= total.schedules as u64);
        assert!(total.max_depth > 0);
    }

    #[test]
    fn fair_run_gives_full_views() {
        let size = n(5);
        let procs: Vec<_> = size
            .processes()
            .map(|p| IsDriver::new(ImmediateSnapshot::new(size, p, 0)))
            .collect();
        let report = SharedMemSim::new(size, ImmediateSnapshot::BANKS)
            .with_snapshots()
            .run(procs, &mut FairScheduler::new())
            .unwrap();
        check_is_properties(&report.outputs);
        // Lock-step execution: everyone sees everyone.
        for view in report.outputs.iter().flatten() {
            assert_eq!(view.len(), 5);
        }
    }

    #[test]
    fn properties_hold_under_random_schedules() {
        for nv in [2usize, 4, 7, 10] {
            let size = n(nv);
            for seed in 0..40u64 {
                let views = run(size, seed, 0);
                check_is_properties(&views);
                assert!(views.iter().all(Option::is_some));
            }
        }
    }

    #[test]
    fn properties_hold_under_crashes() {
        let size = n(7);
        for seed in 0..30u64 {
            let views = run(size, seed, 3);
            check_is_properties(&views);
        }
    }

    #[test]
    fn views_are_sized_at_least_their_exit_level() {
        // A solo-fast process can exit with a tiny view; a slow one sees
        // many. Either way |view| ≥ 1, and over many seeds both extremes
        // should occur for n ≥ 4.
        let size = n(4);
        let mut saw_small = false;
        let mut saw_full = false;
        for seed in 0..60u64 {
            let views = run(size, seed, 0);
            for view in views.iter().flatten() {
                if view.len() <= 2 {
                    saw_small = true;
                }
                if view.len() == 4 {
                    saw_full = true;
                }
            }
        }
        assert!(saw_full, "no full view in 60 runs");
        // Small views need an aggressive schedule; do not assert, but use
        // the variable so the scan above is meaningful either way.
        let _ = saw_small;
    }

    #[test]
    fn iterated_rounds_satisfy_the_snapshot_predicate_throughout() {
        // The iterated model: every round's complemented views are a legal
        // snapshot round, i.e. the whole pattern satisfies P5.
        let size = n(5);
        let rounds = 4u32;
        let model = Snapshot::new(size, 4);
        for seed in 0..25u64 {
            let procs: Vec<_> = size
                .processes()
                .map(|p| IteratedIS::new(size, p, rounds))
                .collect();
            let mut sched = RandomScheduler::new(seed, 0);
            let report = SharedMemSim::new(size, IteratedIS::banks_needed(rounds))
                .with_snapshots()
                .run(procs, &mut sched)
                .unwrap();
            let all_views: Vec<Vec<IdSet>> = report
                .outputs
                .into_iter()
                .map(|v| v.expect("crash-free"))
                .collect();
            let mut pattern = FaultPattern::new(size);
            for r in 0..rounds as usize {
                let views: Vec<IdSet> = all_views.iter().map(|vs| vs[r]).collect();
                pattern.push(views_to_round(size, &views));
            }
            assert!(model.admits_pattern(&pattern), "seed {seed}: {pattern:?}");
        }
    }

    #[test]
    fn iterated_views_evolve_independently_per_round() {
        // Different rounds may produce different view chains: over many
        // seeds, at least one run must have two rounds with different view
        // families (the object is genuinely fresh per round).
        let size = n(4);
        let mut saw_difference = false;
        for seed in 0..40u64 {
            let procs: Vec<_> = size
                .processes()
                .map(|p| IteratedIS::new(size, p, 3))
                .collect();
            let mut sched = RandomScheduler::new(seed, 0);
            let report = SharedMemSim::new(size, IteratedIS::banks_needed(3))
                .with_snapshots()
                .run(procs, &mut sched)
                .unwrap();
            let all_views: Vec<Vec<IdSet>> =
                report.outputs.into_iter().map(|v| v.unwrap()).collect();
            for r in 1..3 {
                let prev: Vec<IdSet> = all_views.iter().map(|vs| vs[r - 1]).collect();
                let cur: Vec<IdSet> = all_views.iter().map(|vs| vs[r]).collect();
                if prev != cur {
                    saw_difference = true;
                }
            }
        }
        assert!(saw_difference, "iterated rounds never differed");
    }

    #[test]
    fn complemented_views_form_a_snapshot_round() {
        // §2 item 5: the extracted D-sets satisfy the snapshot predicate.
        let size = n(6);
        let model = Snapshot::new(size, 5);
        for seed in 0..30u64 {
            let views: Vec<IdSet> = run(size, seed, 0)
                .into_iter()
                .map(|v| v.expect("crash-free run"))
                .collect();
            let round = views_to_round(size, &views);
            assert!(
                model.admits(&FaultPattern::new(size), &round),
                "seed {seed}: {round:?}"
            );
        }
    }
}
