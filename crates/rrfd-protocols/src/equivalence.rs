//! The round-combination constructions of §2: implementing one model's
//! rounds out of another's.
//!
//! * [`echo_round`] — the generic two-round full-information echo: round
//!   one emits values, round two emits heard-sets; the *simulated* round
//!   misses `p_j` only if `p_j`'s value remained unlearnable.
//! * [`majority_echo_pattern`] — item 4's claim: with `2f < n`, two rounds
//!   of the asynchronous predicate (eq. 3) implement one round of the SWMR
//!   predicate (eq. 3 ∧ eq. 4). "Since in the first round all heard from a
//!   majority, there must be at least one process that was heard by a
//!   majority; such a process will be known to all at the end of the
//!   second round."
//! * [`system_b_echo_pattern`] — item 3's System B claim ("two rounds of B
//!   implement a round of A"), which the paper states without proof; E2
//!   measures the simulated per-round miss bound empirically.
//! * [`rounds_until_known_by_all`] — the cycle argument for the
//!   antisymmetric SWMR clause: under `p_j ∈ D(i,r) ⇒ p_i ∉ D(j,r)`, some
//!   process becomes known to all within `n` rounds (the paper conjectures
//!   two suffice).

use rrfd_core::{
    FaultDetector, FaultPattern, IdSet, KnowledgeMatrix, ProcessId, Round, RoundFaults,
    RrfdPredicate, SystemSize,
};

/// Combines two base-model rounds into one simulated round.
///
/// `first[i] = D(i, 2t−1)` and `second[i] = D(i, 2t)`. Process `p_i` learns
/// `p_j`'s round value if it heard `p_j` directly in either round, or heard
/// (in the second round) some process that heard `p_j` in the first. The
/// returned set is the simulated `D(i, t)`: origins whose value `p_i`
/// could not reconstruct.
#[must_use]
pub fn echo_round(n: SystemSize, first: &RoundFaults, second: &RoundFaults) -> RoundFaults {
    let universe = IdSet::universe(n);
    // A process always knows its own round-1 value through its local state
    // ("such a process may know the message it sent", §1), so its echo
    // carries itself even if the detector marked it late to its own round.
    let heard1: Vec<IdSet> = n
        .processes()
        .map(|i| first.of(i).complement(n) | IdSet::singleton(i))
        .collect();
    let sets = n
        .processes()
        .map(|i| {
            let mut known = heard1[i.index()];
            for e in second.of(i).complement(n).iter() {
                known |= heard1[e.index()];
            }
            universe - known
        })
        .collect();
    RoundFaults::from_sets(n, sets)
}

/// Drives `detector` for `2 · simulated_rounds` base rounds (validated
/// against `base_model`) and assembles the simulated pattern via
/// [`echo_round`].
///
/// # Panics
///
/// Panics if the detector violates `base_model` — the construction's
/// precondition.
#[must_use]
pub fn echo_simulate<D, M>(
    n: SystemSize,
    detector: &mut D,
    base_model: &M,
    simulated_rounds: u32,
) -> FaultPattern
where
    D: FaultDetector + ?Sized,
    M: RrfdPredicate + ?Sized,
{
    let mut base_history = FaultPattern::new(n);
    let mut simulated = FaultPattern::new(n);
    for t in 0..simulated_rounds {
        let mut pair = Vec::with_capacity(2);
        for s in 0..2u32 {
            let round_no = Round::new(2 * t + s + 1);
            let round = detector.next_round(round_no, &base_history);
            rrfd_core::validate_round(base_model, &base_history, &round)
                .unwrap_or_else(|e| panic!("base detector broke its model: {e}"));
            base_history.push(round.clone());
            pair.push(round);
        }
        simulated.push(echo_round(n, &pair[0], &pair[1]));
    }
    simulated
}

/// Item 4's construction: simulates SWMR rounds from pairs of eq.-3 rounds
/// with `2f < n`, returning the simulated pattern. Each simulated round is
/// guaranteed (and `debug_assert`ed) to satisfy eq. 3 ∧ eq. 4.
///
/// # Panics
///
/// Panics unless `2f < n`.
#[must_use]
pub fn majority_echo_pattern<D>(
    n: SystemSize,
    f: usize,
    detector: &mut D,
    simulated_rounds: u32,
) -> FaultPattern
where
    D: FaultDetector + ?Sized,
{
    assert!(2 * f < n.get(), "majority echo requires 2f < n");
    let base = rrfd_models::predicates::AsyncResilient::new(n, f);
    echo_simulate(n, detector, &base, simulated_rounds)
}

/// Item 3's System B construction: simulates eq.-3-shaped rounds from
/// pairs of System B rounds. Returns the simulated pattern together with
/// the maximum per-process miss count observed (the quantity the paper's
/// unproved claim bounds by `f`).
#[must_use]
pub fn system_b_echo_pattern<D>(
    n: SystemSize,
    f: usize,
    t: usize,
    detector: &mut D,
    simulated_rounds: u32,
) -> (FaultPattern, usize)
where
    D: FaultDetector + ?Sized,
{
    let base = rrfd_models::predicates::SystemB::new(n, f, t);
    let pattern = echo_simulate(n, detector, &base, simulated_rounds);
    let max_miss = pattern
        .iter()
        .flat_map(|(_, rf)| rf.iter().map(|(_, d)| d.len()))
        .max()
        .unwrap_or(0);
    (pattern, max_miss)
}

/// Gossips under `detector` until some process is known by all, returning
/// the number of rounds it took (or `None` within `max_rounds`). Used for
/// the cycle-length claim of item 4's antisymmetric clause.
#[must_use]
pub fn rounds_until_known_by_all<D>(n: SystemSize, detector: &mut D, max_rounds: u32) -> Option<u32>
where
    D: FaultDetector + ?Sized,
{
    let mut matrix = KnowledgeMatrix::reflexive(n);
    let mut history = FaultPattern::new(n);
    for r in 1..=max_rounds {
        let round = detector.next_round(Round::new(r), &history);
        let suspected: Vec<IdSet> = n.processes().map(|i| round.of(i)).collect();
        matrix.gossip_round(&suspected);
        history.push(round);
        if !matrix.known_by_all().is_empty() {
            return Some(r);
        }
    }
    None
}

/// §2 item 6's predicate manipulation: the detector-S predicate equals the
/// send-omission footprint clause at `f = n − 1`. Checks both directions
/// on a given pattern (useful in the E12 extraction experiment).
#[must_use]
pub fn detector_s_equals_omission_footprint(pattern: &FaultPattern) -> bool {
    let n = pattern.system_size();
    let s_holds = pattern.cumulative_union().len() < n.get();
    let footprint_holds = pattern.cumulative_union().len() < n.get();
    s_holds == footprint_holds
}

/// Picks, for a simulated SWMR round, a process that is suspected by
/// nobody — the eq. 4 witness. Returns `None` if the claim fails.
#[must_use]
pub fn trusted_by_all(round: &RoundFaults) -> Option<ProcessId> {
    round.union().complement(round.system_size()).min()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrfd_models::adversary::{RandomAdversary, RingMiss};
    use rrfd_models::predicates::{AntiSymmetric, AsyncResilient, Swmr, SystemB};

    fn n(v: usize) -> SystemSize {
        SystemSize::new(v).unwrap()
    }

    fn ids(xs: &[usize]) -> IdSet {
        xs.iter().map(|&i| ProcessId::new(i)).collect()
    }

    #[test]
    fn echo_round_combines_direct_and_relayed_knowledge() {
        let size = n(4);
        // Round 1: p0 misses p3. Round 2: p0 misses p1.
        let r1 = RoundFaults::from_sets(
            size,
            vec![ids(&[3]), IdSet::empty(), IdSet::empty(), IdSet::empty()],
        );
        let r2 = RoundFaults::from_sets(
            size,
            vec![ids(&[1]), IdSet::empty(), IdSet::empty(), IdSet::empty()],
        );
        let sim = echo_round(size, &r1, &r2);
        // p0 heard p2's echo, and p2 heard p3 in round 1: p3 recovered.
        assert!(sim.of(ProcessId::new(0)).is_empty());
    }

    #[test]
    fn echo_round_misses_fully_silenced_origins() {
        let size = n(3);
        // p0 and p1 miss p2 in both rounds: p2's value is unlearnable for
        // them (p2's own echo never arrives, and nobody else heard it).
        let both = RoundFaults::from_sets(size, vec![ids(&[2]), ids(&[2]), IdSet::empty()]);
        let sim = echo_round(size, &both, &both);
        assert!(sim.of(ProcessId::new(0)).contains(ProcessId::new(2)));
        assert!(sim.of(ProcessId::new(1)).contains(ProcessId::new(2)));
        // p2 itself always knows its own value.
        assert!(!sim.of(ProcessId::new(2)).contains(ProcessId::new(2)));
    }

    #[test]
    fn majority_echo_yields_swmr_rounds() {
        // Item 4: 2f < n ⇒ simulated rounds satisfy P4.
        for &(nv, f) in &[(5usize, 2usize), (7, 3), (9, 2)] {
            let size = n(nv);
            let swmr = Swmr::new(size, f);
            for seed in 0..20u64 {
                let mut adv = RandomAdversary::new(AsyncResilient::new(size, f), seed);
                let sim = majority_echo_pattern(size, f, &mut adv, 5);
                assert!(
                    swmr.admits_pattern(&sim),
                    "n={nv} f={f} seed={seed}: {sim:?}"
                );
                for (_, rf) in sim.iter() {
                    assert!(trusted_by_all(rf).is_some());
                }
            }
        }
    }

    #[test]
    fn system_b_echo_keeps_misses_at_most_t() {
        // The provable part of the E2 claim: |D_sim| ≤ t always (a miss
        // requires missing the origin's echoers in round 2, and origins
        // echo themselves). The ≤ f part is measured by the bench.
        let size = n(9);
        let (f, t) = (1usize, 3usize);
        for seed in 0..25u64 {
            let mut adv = RandomAdversary::new(SystemB::new(size, f, t), seed);
            let (_, max_miss) = system_b_echo_pattern(size, f, t, &mut adv, 5);
            assert!(max_miss <= t, "seed {seed}: simulated miss {max_miss} > t");
        }
    }

    #[test]
    fn ring_requires_up_to_n_rounds_for_global_knowledge() {
        for nv in [3usize, 5, 8, 12] {
            let size = n(nv);
            let mut det = RingMiss::new(size);
            let rounds = rounds_until_known_by_all(size, &mut det, nv as u32 * 2)
                .expect("the paper's bound: within n rounds");
            assert!(rounds <= nv as u32, "n={nv}: took {rounds} rounds");
        }
    }

    #[test]
    fn antisymmetric_random_runs_hit_global_knowledge_fast() {
        // The paper conjectures two rounds suffice; we check the weaker
        // proved bound (n rounds) on random antisymmetric adversaries and
        // record that the observed worst case is small.
        let size = n(8);
        let mut worst = 0;
        for seed in 0..30u64 {
            let mut adv = RandomAdversary::new(AntiSymmetric::new(size), seed);
            let rounds =
                rounds_until_known_by_all(size, &mut adv, 16).expect("bounded by n rounds");
            assert!(rounds <= 8, "seed {seed}");
            worst = worst.max(rounds);
        }
        assert!(worst >= 1);
    }

    #[test]
    fn detector_s_footprint_equivalence_is_a_tautology() {
        // |∪| < n  ⇔  |∪| ≤ n − 1: check on assorted patterns.
        let size = n(4);
        let mut pattern = FaultPattern::new(size);
        assert!(detector_s_equals_omission_footprint(&pattern));
        pattern.push(RoundFaults::from_sets(
            size,
            vec![ids(&[1, 2, 3]), ids(&[0]), IdSet::empty(), IdSet::empty()],
        ));
        assert!(detector_s_equals_omission_footprint(&pattern));
    }
}
