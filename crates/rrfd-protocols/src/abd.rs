//! ABD-style atomic register emulation over asynchronous message passing
//! (Attiya-Bar-Noy-Dolev \[22\]) — the substrate behind §2 item 4's remark
//! that message passing implements shared memory when `2f < n`.
//!
//! Each process owns one single-writer multi-reader register. Operations:
//!
//! * **write(v)** — stamp `v` with a fresh tag `(seq, writer)`, broadcast,
//!   await `n − f` acknowledgements.
//! * **read(owner)** — broadcast a query, await `n − f` replies, select the
//!   maximum tag, then *write back* that (tag, value) pair and await
//!   another `n − f` acknowledgements before returning (the write-back is
//!   what upgrades regularity to atomicity).
//!
//! With `2f < n` any two quorums intersect, so a completed write's tag is
//! visible to every later read. [`AbdClient`] drives a script of operations
//! on the [`rrfd_sims::async_net`] simulator, recording real-time intervals
//! for each completed operation; [`check_atomicity`] verifies the
//! single-writer atomic-register axioms against those intervals.

use rrfd_core::task::Value;
use rrfd_core::{Control, ProcessId, SystemSize};
use rrfd_sims::async_net::{AsyncProcess, Outbox};
use std::collections::BTreeMap;

/// A write tag: sequence number breaks ties by writer, but registers are
/// single-writer so the sequence number alone orders a register's writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Tag {
    /// Writer-local sequence number (0 = initial ⊥).
    pub seq: u64,
    /// The owning writer.
    pub writer: ProcessId,
}

impl Tag {
    fn initial(owner: ProcessId) -> Self {
        Tag {
            seq: 0,
            writer: owner,
        }
    }
}

/// Protocol messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbdMsg {
    /// Store (tag, value) for `register`; acknowledge with the request id.
    Store {
        /// Request identifier (unique per client).
        rid: u64,
        /// Which register.
        register: ProcessId,
        /// The tag.
        tag: Tag,
        /// The value.
        value: Value,
    },
    /// Acknowledge a store.
    StoreAck {
        /// Echoed request identifier.
        rid: u64,
    },
    /// Ask for the stored (tag, value) of `register`.
    Query {
        /// Request identifier.
        rid: u64,
        /// Which register.
        register: ProcessId,
    },
    /// Reply to a query.
    QueryReply {
        /// Echoed request identifier.
        rid: u64,
        /// The stored tag.
        tag: Tag,
        /// The stored value (`None` = still ⊥).
        value: Option<Value>,
    },
}

/// One operation in a client's script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Write `value` to this client's own register.
    Write(Value),
    /// Read the register of `owner`.
    Read(ProcessId),
}

/// A completed operation with its real-time interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpRecord {
    /// The operation.
    pub op: Op,
    /// Global delivery stamp at invocation.
    pub start: u64,
    /// Global delivery stamp at completion.
    pub end: u64,
    /// The tag the operation installed (write) or returned (read).
    pub tag: Tag,
    /// The value written or read (`None` = read returned ⊥).
    pub value: Option<Value>,
}

#[derive(Debug, Clone)]
enum ClientPhase {
    Idle,
    /// Waiting for `n − f` store acks (write or read write-back).
    AwaitStoreAcks {
        rid: u64,
        acks: usize,
        record: OpRecord,
    },
    /// Waiting for `n − f` query replies.
    AwaitReplies {
        rid: u64,
        register: ProcessId,
        start: u64,
        best: (Tag, Option<Value>),
        replies: usize,
    },
    Done,
}

/// An ABD client/server process: serves every request and walks its own
/// script of operations.
#[derive(Debug, Clone)]
pub struct AbdClient {
    me: ProcessId,
    quorum: usize,
    /// Replica state: (tag, value) per register.
    store: BTreeMap<ProcessId, (Tag, Option<Value>)>,
    /// Own writer sequence number.
    seq: u64,
    script: Vec<Op>,
    next_op: usize,
    next_rid: u64,
    phase: ClientPhase,
    history: Vec<OpRecord>,
    /// Every write this client *invoked* (tag, value), completed or not —
    /// an incomplete write may still take effect, and the atomicity
    /// checker needs its value to validate reads.
    invoked_writes: Vec<(Tag, Value)>,
}

impl AbdClient {
    /// Creates a client for `me` with an operation `script`, tolerating
    /// `f` crashes.
    ///
    /// A client whose script is empty terminates upon its first received
    /// message; in a workload where *no* client ever sends (all scripts
    /// empty), the run is quiescent and the simulator reports it as such —
    /// give at least one client at least one operation.
    ///
    /// # Panics
    ///
    /// Panics unless `2f < n` — the ABD quorum condition.
    #[must_use]
    pub fn new(me: ProcessId, n: SystemSize, f: usize, script: Vec<Op>) -> Self {
        assert!(2 * f < n.get(), "ABD requires 2f < n");
        let store = n
            .processes()
            .map(|p| (p, (Tag::initial(p), None)))
            .collect();
        AbdClient {
            me,
            quorum: n.get() - f,
            store,
            seq: 0,
            script,
            next_op: 0,
            next_rid: 0,
            phase: ClientPhase::Idle,
            history: Vec::new(),
            invoked_writes: Vec::new(),
        }
    }

    /// The completed-operation history (available after the run).
    #[must_use]
    pub fn history(&self) -> &[OpRecord] {
        &self.history
    }

    /// Every write this client invoked, completed or not.
    #[must_use]
    pub fn invoked_writes(&self) -> &[(Tag, Value)] {
        &self.invoked_writes
    }

    fn fresh_rid(&mut self) -> u64 {
        self.next_rid += 1;
        // Make rids globally unique for debuggability.
        (self.me.index() as u64) << 48 | self.next_rid
    }

    /// Launches the next scripted operation, if idle.
    fn launch(&mut self, now: u64, out: &mut Outbox<AbdMsg>) -> Control<Vec<OpRecord>> {
        if !matches!(self.phase, ClientPhase::Idle) {
            return Control::Continue;
        }
        let Some(&op) = self.script.get(self.next_op) else {
            self.phase = ClientPhase::Done;
            return Control::Decide(self.history.clone());
        };
        self.next_op += 1;
        let rid = self.fresh_rid();
        match op {
            Op::Write(value) => {
                self.seq += 1;
                let tag = Tag {
                    seq: self.seq,
                    writer: self.me,
                };
                self.invoked_writes.push((tag, value));
                self.phase = ClientPhase::AwaitStoreAcks {
                    rid,
                    acks: 0,
                    record: OpRecord {
                        op,
                        start: now,
                        end: now,
                        tag,
                        value: Some(value),
                    },
                };
                out.broadcast(AbdMsg::Store {
                    rid,
                    register: self.me,
                    tag,
                    value,
                });
            }
            Op::Read(register) => {
                self.phase = ClientPhase::AwaitReplies {
                    rid,
                    register,
                    start: now,
                    best: (Tag::initial(register), None),
                    replies: 0,
                };
                out.broadcast(AbdMsg::Query { rid, register });
            }
        }
        Control::Continue
    }

    /// Serves replica duties for a request.
    fn serve(&mut self, from: ProcessId, msg: AbdMsg, out: &mut Outbox<AbdMsg>) {
        match msg {
            AbdMsg::Store {
                rid,
                register,
                tag,
                value,
            } => {
                let entry = self.store.get_mut(&register).expect("register exists");
                if tag > entry.0 {
                    *entry = (tag, Some(value));
                }
                out.send(from, AbdMsg::StoreAck { rid });
            }
            AbdMsg::Query { rid, register } => {
                let &(tag, value) = self.store.get(&register).expect("register exists");
                out.send(from, AbdMsg::QueryReply { rid, tag, value });
            }
            AbdMsg::StoreAck { .. } | AbdMsg::QueryReply { .. } => {
                unreachable!("responses are handled by the client half")
            }
        }
    }
}

impl AsyncProcess for AbdClient {
    type Msg = AbdMsg;
    type Output = Vec<OpRecord>;

    fn on_start(&mut self, out: &mut Outbox<AbdMsg>) {
        let _ = self.launch(0, out);
    }

    fn on_message(
        &mut self,
        now: u64,
        from: ProcessId,
        msg: AbdMsg,
        out: &mut Outbox<AbdMsg>,
    ) -> Control<Vec<OpRecord>> {
        if matches!(self.phase, ClientPhase::Done) {
            // Finished scripts keep serving; re-announce the decision so a
            // client whose script was empty still terminates.
            if matches!(msg, AbdMsg::Store { .. } | AbdMsg::Query { .. }) {
                self.serve(from, msg, out);
            }
            return Control::Decide(self.history.clone());
        }
        match msg {
            AbdMsg::Store { .. } | AbdMsg::Query { .. } => {
                self.serve(from, msg, out);
                return Control::Continue;
            }
            AbdMsg::StoreAck { rid } => {
                if let ClientPhase::AwaitStoreAcks {
                    rid: want,
                    acks,
                    record,
                } = &mut self.phase
                {
                    if rid == *want {
                        *acks += 1;
                        if *acks >= self.quorum {
                            let mut record = *record;
                            record.end = now;
                            self.history.push(record);
                            self.phase = ClientPhase::Idle;
                            return self.launch(now, out);
                        }
                    }
                }
            }
            AbdMsg::QueryReply { rid, tag, value } => {
                if let ClientPhase::AwaitReplies {
                    rid: want,
                    register,
                    start,
                    best,
                    replies,
                } = &mut self.phase
                {
                    if rid == *want {
                        *replies += 1;
                        if tag > best.0 {
                            *best = (tag, value);
                        }
                        if *replies >= self.quorum {
                            // Write back the winning pair, then finish.
                            let register = *register;
                            let start = *start;
                            let (tag, value) = *best;
                            let wb_rid = self.fresh_rid();
                            self.phase = ClientPhase::AwaitStoreAcks {
                                rid: wb_rid,
                                acks: 0,
                                record: OpRecord {
                                    op: Op::Read(register),
                                    start,
                                    end: now,
                                    tag,
                                    value,
                                },
                            };
                            match value {
                                Some(v) => out.broadcast(AbdMsg::Store {
                                    rid: wb_rid,
                                    register,
                                    tag,
                                    value: v,
                                }),
                                // ⊥ needs no write-back; complete at once.
                                None => {
                                    let record = OpRecord {
                                        op: Op::Read(register),
                                        start,
                                        end: now,
                                        tag,
                                        value,
                                    };
                                    self.history.push(record);
                                    self.phase = ClientPhase::Idle;
                                    return self.launch(now, out);
                                }
                            }
                        }
                    }
                }
            }
        }
        Control::Continue
    }
}

/// Violations of the single-writer atomic-register axioms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AtomicityViolation {
    /// A read returned a (tag, value) pair no write produced.
    PhantomValue {
        /// The reading process.
        reader: ProcessId,
        /// The offending record.
        record: OpRecord,
    },
    /// An operation's tag precedes one whose interval finished before this
    /// operation started (stale read / lost write).
    StaleTag {
        /// The earlier operation (by real time).
        earlier: OpRecord,
        /// The later operation that went backwards.
        later: OpRecord,
    },
}

/// Convenience wrapper over [`check_atomicity`] that pulls histories and
/// invoked writes straight from finished clients.
///
/// # Errors
///
/// Returns the first violation found.
#[allow(clippy::result_large_err)] // violations carry full op records for diagnosis
pub fn check_clients(clients: &[AbdClient]) -> Result<(), AtomicityViolation> {
    let histories: Vec<(ProcessId, &[OpRecord])> =
        clients.iter().map(|c| (c.me, c.history())).collect();
    let invoked: Vec<(ProcessId, Tag, Value)> = clients
        .iter()
        .flat_map(|c| c.invoked_writes().iter().map(|&(t, v)| (c.me, t, v)))
        .collect();
    check_atomicity(&histories, &invoked)
}

/// Checks the per-register atomicity axioms over the clients' recorded
/// histories:
///
/// 1. every read's (tag, value) was produced by an actual write (or is the
///    initial ⊥);
/// 2. tags never go backwards across non-overlapping operations on the
///    same register (if `a.end < b.start` then `tag(a) ≤ tag(b)`).
///
/// Together with single-writer tag uniqueness these imply atomicity for
/// this workload shape.
///
/// # Errors
///
/// Returns the first violation found.
#[allow(clippy::result_large_err)] // violations carry full op records for diagnosis
pub fn check_atomicity(
    histories: &[(ProcessId, &[OpRecord])],
    invoked_writes: &[(ProcessId, Tag, Value)],
) -> Result<(), AtomicityViolation> {
    // Index all writes by register: completed ones from the histories plus
    // invoked-but-incomplete ones (which may legally take effect).
    let mut writes: BTreeMap<ProcessId, BTreeMap<Tag, Value>> = BTreeMap::new();
    for (owner, history) in histories {
        for rec in *history {
            if let Op::Write(v) = rec.op {
                writes.entry(*owner).or_default().insert(rec.tag, v);
            }
        }
    }
    for &(owner, tag, value) in invoked_writes {
        writes.entry(owner).or_default().insert(tag, value);
    }

    // Axiom 1: reads return real values.
    for (reader, history) in histories {
        for rec in *history {
            if let Op::Read(register) = rec.op {
                match rec.value {
                    None => {
                        if rec.tag.seq != 0 {
                            return Err(AtomicityViolation::PhantomValue {
                                reader: *reader,
                                record: *rec,
                            });
                        }
                    }
                    Some(v) => {
                        let known = writes.get(&register).and_then(|m| m.get(&rec.tag)).copied();
                        if known != Some(v) {
                            return Err(AtomicityViolation::PhantomValue {
                                reader: *reader,
                                record: *rec,
                            });
                        }
                    }
                }
            }
        }
    }

    // Axiom 2: real-time order respects tag order, per register.
    let mut per_register: BTreeMap<ProcessId, Vec<OpRecord>> = BTreeMap::new();
    for (owner, history) in histories {
        for rec in *history {
            let register = match rec.op {
                Op::Write(_) => *owner,
                Op::Read(r) => r,
            };
            per_register.entry(register).or_default().push(*rec);
        }
    }
    for records in per_register.values() {
        for a in records {
            for b in records {
                if a.end < b.start && a.tag > b.tag {
                    return Err(AtomicityViolation::StaleTag {
                        earlier: *a,
                        later: *b,
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrfd_sims::async_net::{AsyncNetSim, FifoNetScheduler, RandomNetScheduler};

    fn n(v: usize) -> SystemSize {
        SystemSize::new(v).unwrap()
    }

    fn run_scripts(
        size: SystemSize,
        f: usize,
        scripts: Vec<Vec<Op>>,
        seed: u64,
        crashes: usize,
    ) -> Vec<AbdClient> {
        let procs: Vec<_> = size
            .processes()
            .map(|p| AbdClient::new(p, size, f, scripts[p.index()].clone()))
            .collect();
        let mut sched = RandomNetScheduler::new(seed, crashes).crash_prob(0.002);
        let report = AsyncNetSim::new(size).run(procs, &mut sched).unwrap();
        report.processes
    }

    fn assert_atomic(clients: &[AbdClient]) {
        check_clients(clients).unwrap_or_else(|v| panic!("atomicity violated: {v:?}"));
    }

    #[test]
    fn fifo_write_then_read_sees_the_value() {
        let size = n(3);
        let scripts = [
            vec![Op::Write(41), Op::Write(42)],
            vec![Op::Read(ProcessId::new(0))],
            vec![Op::Read(ProcessId::new(0))],
        ];
        let procs: Vec<_> = size
            .processes()
            .map(|p| AbdClient::new(p, size, 1, scripts[p.index()].clone()))
            .collect();
        let report = AsyncNetSim::new(size)
            .run(procs, &mut FifoNetScheduler::new())
            .unwrap();
        assert_atomic(&report.processes);
        // The reads happened concurrently with the writes; each must have
        // returned ⊥, 41 or 42 — checked by the atomicity axioms — and the
        // writer's history carries both writes.
        assert_eq!(report.processes[0].history().len(), 2);
    }

    #[test]
    fn random_schedules_preserve_atomicity() {
        let size = n(5);
        let f = 2;
        let scripts = vec![
            vec![Op::Write(1), Op::Write(2), Op::Read(ProcessId::new(4))],
            vec![Op::Read(ProcessId::new(0)), Op::Read(ProcessId::new(0))],
            vec![Op::Write(7), Op::Read(ProcessId::new(0)), Op::Write(8)],
            vec![Op::Read(ProcessId::new(2)), Op::Read(ProcessId::new(2))],
            vec![Op::Write(9), Op::Read(ProcessId::new(2))],
        ];
        for seed in 0..30u64 {
            let clients = run_scripts(size, f, scripts.clone(), seed, 0);
            assert_atomic(&clients);
            // Everyone finished their whole script.
            for (i, c) in clients.iter().enumerate() {
                assert_eq!(c.history().len(), scripts[i].len(), "seed {seed}");
            }
        }
    }

    #[test]
    fn reads_never_go_backwards_across_readers() {
        // Two readers repeatedly poll the same register while it is
        // written: the write-back phase must prevent new/old inversions
        // among non-overlapping reads.
        let size = n(5);
        let f = 2;
        let scripts = vec![
            vec![Op::Write(1), Op::Write(2), Op::Write(3), Op::Write(4)],
            vec![Op::Read(ProcessId::new(0)); 4],
            vec![Op::Read(ProcessId::new(0)); 4],
            vec![],
            vec![],
        ];
        for seed in 0..30u64 {
            let clients = run_scripts(size, f, scripts.clone(), seed, 0);
            assert_atomic(&clients);
        }
    }

    #[test]
    fn crashes_within_f_do_not_block_completion() {
        let size = n(5);
        let f = 2;
        let scripts: Vec<Vec<Op>> = size
            .processes()
            .map(|p| vec![Op::Write(p.index() as u64), Op::Read(ProcessId::new(0))])
            .collect();
        for seed in 0..20u64 {
            let procs: Vec<_> = size
                .processes()
                .map(|p| AbdClient::new(p, size, f, scripts[p.index()].clone()))
                .collect();
            let mut sched = RandomNetScheduler::new(seed, f).crash_prob(0.004);
            let report = AsyncNetSim::new(size).run(procs, &mut sched).unwrap();
            assert!(report.all_correct_decided(), "seed {seed}");
            assert_atomic(&report.processes);
        }
    }

    #[test]
    #[should_panic(expected = "2f < n")]
    fn quorum_condition_is_enforced() {
        let _ = AbdClient::new(ProcessId::new(0), n(4), 2, vec![]);
    }

    #[test]
    fn checker_catches_stale_reads() {
        // A fabricated history with a new-old inversion must be rejected.
        let w = ProcessId::new(0);
        let t1 = Tag { seq: 1, writer: w };
        let t2 = Tag { seq: 2, writer: w };
        let writer_history = vec![
            OpRecord {
                op: Op::Write(1),
                start: 0,
                end: 1,
                tag: t1,
                value: Some(1),
            },
            OpRecord {
                op: Op::Write(2),
                start: 2,
                end: 3,
                tag: t2,
                value: Some(2),
            },
        ];
        let reader_history = vec![
            OpRecord {
                op: Op::Read(w),
                start: 4,
                end: 5,
                tag: t2,
                value: Some(2),
            },
            OpRecord {
                op: Op::Read(w),
                start: 6,
                end: 7,
                tag: t1,
                value: Some(1),
            },
        ];
        let histories = vec![
            (w, writer_history.as_slice()),
            (ProcessId::new(1), reader_history.as_slice()),
        ];
        assert!(matches!(
            check_atomicity(&histories, &[]),
            Err(AtomicityViolation::StaleTag { .. })
        ));
    }

    #[test]
    fn checker_catches_phantom_values() {
        let w = ProcessId::new(0);
        let reader_history = vec![OpRecord {
            op: Op::Read(w),
            start: 0,
            end: 1,
            tag: Tag { seq: 3, writer: w },
            value: Some(99),
        }];
        let histories = vec![(ProcessId::new(1), reader_history.as_slice())];
        assert!(matches!(
            check_atomicity(&histories, &[]),
            Err(AtomicityViolation::PhantomValue { .. })
        ));
    }
}
