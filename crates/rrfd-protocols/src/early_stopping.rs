//! Early-stopping consensus for the synchronous crash RRFD model — an
//! extension in the spirit the paper advocates ("we propose them as a
//! setting to develop real algorithms", §7).
//!
//! Flood-min with the classic *stability* rule: a process tracks the set
//! `F_i` of processes it has ever suspected; at the end of round `r ≥ 2`,
//! if round `r` introduced **no new suspicion** (`D(i,r) ⊆ F_i`), the
//! previous round already delivered every value still in circulation to
//! `p_i` *and* `p_i`'s re-broadcast of its minimum reached everyone alive,
//! so its minimum is final. The fallback decision at round `f + 1`
//! preserves the worst-case bound, so the protocol decides in
//! `min(f' + 2, f + 1)` rounds where `f'` is the number of failures that
//! actually occur. (Deciding already at a clean round `r = f' + 1` is the
//! classic trap: the decider may crash next round and take the minimum
//! with it — the test-suite's exhaustive enumeration exposes exactly that
//! execution if the rule is weakened.)
//!
//! Correctness in the crash model (eq. 1 + eq. 2) is checked by sampled
//! sweeps *and* by exhaustive enumeration of every legal pattern at small
//! sizes.

use rrfd_core::task::Value;
use rrfd_core::{Control, Delivery, IdSet, Round, RoundProtocol};

/// The early-stopping flood-min consensus process for an `f`-crash
/// synchronous system.
#[derive(Debug, Clone)]
pub struct EarlyStoppingConsensus {
    current_min: Value,
    f: usize,
    suspected_ever: IdSet,
    /// `F_i` as of the end of the previous round (for the stability rule).
    suspected_before: IdSet,
    decided: bool,
}

impl EarlyStoppingConsensus {
    /// Creates a process proposing `input`, tolerating `f` crashes.
    #[must_use]
    pub fn new(input: Value, f: usize) -> Self {
        EarlyStoppingConsensus {
            current_min: input,
            f,
            suspected_ever: IdSet::empty(),
            suspected_before: IdSet::empty(),
            decided: false,
        }
    }

    /// The worst-case round bound, `f + 1`.
    #[must_use]
    pub fn worst_case_rounds(&self) -> u32 {
        self.f as u32 + 1
    }
}

impl RoundProtocol for EarlyStoppingConsensus {
    type Msg = Value;
    type Output = Value;

    fn emit(&mut self, _round: Round) -> Value {
        self.current_min
    }

    fn deliver(&mut self, d: Delivery<'_, Value>) -> Control<Value> {
        for v in d.values() {
            self.current_min = self.current_min.min(*v);
        }
        self.suspected_ever |= d.suspected;

        if self.decided {
            return Control::Continue;
        }
        let r = d.round.get() as usize;
        let fresh_suspicions = !d.suspected.is_subset(self.suspected_before);
        self.suspected_before = self.suspected_ever;
        // Stability rule: a round with no new suspicion (r ≥ 2) finalises
        // the minimum. Fallback: round f + 1 is always safe.
        if (r >= 2 && !fresh_suspicions) || r > self.f {
            self.decided = true;
            Control::Decide(self.current_min)
        } else {
            Control::Continue
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrfd_core::task::KSetAgreement;
    use rrfd_core::{Engine, ProcessId, SystemSize};
    use rrfd_models::adversary::{NoFailures, RandomAdversary, SilencingCrash};
    use rrfd_models::enumerate::all_patterns;
    use rrfd_models::predicates::Crash;

    fn n(v: usize) -> SystemSize {
        SystemSize::new(v).unwrap()
    }

    fn check_run(
        size: SystemSize,
        f: usize,
        detector: &mut dyn rrfd_core::FaultDetector,
        label: &str,
    ) -> u32 {
        let inputs: Vec<Value> = (0..size.get() as u64).map(|i| 80 + i).collect();
        let protos: Vec<_> = inputs
            .iter()
            .map(|&v| EarlyStoppingConsensus::new(v, f))
            .collect();
        let model = Crash::new(size, f);
        let report = Engine::new(size)
            .max_rounds(f as u32 + 1)
            .run(protos, detector, &model)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        let crashed = report.pattern.cumulative_union();
        let outs: Vec<Option<Value>> = report
            .outputs()
            .into_iter()
            .enumerate()
            .map(|(i, v)| v.filter(|_| !crashed.contains(ProcessId::new(i))))
            .collect();
        KSetAgreement::consensus()
            .check(&inputs, &outs)
            .unwrap_or_else(|v| panic!("{label}: {v}"));
        report.rounds_executed
    }

    #[test]
    fn fault_free_runs_decide_in_two_rounds() {
        // f' = 0 failures ⇒ decide at round min(0 + 2, f + 1) = 2 (or 1
        // when f = 0).
        for f in [0usize, 2, 4] {
            let size = n(6);
            let rounds = check_run(size, f, &mut NoFailures::new(size), "fault-free");
            assert_eq!(rounds, (f.min(1) as u32) + 1, "f={f}");
        }
    }

    #[test]
    fn random_crash_runs_agree_and_stop_early() {
        for &(nv, f) in &[(5usize, 2usize), (7, 3), (9, 4)] {
            let size = n(nv);
            for seed in 0..25u64 {
                let mut adv = RandomAdversary::new(Crash::new(size, f), seed);
                let rounds = check_run(size, f, &mut adv, "random");
                assert!(rounds <= f as u32 + 1, "n={nv} f={f} seed={seed}");
            }
        }
    }

    #[test]
    fn silencer_forces_the_worst_case() {
        // One fresh crash per round keeps |F| ≥ r alive until the end.
        let size = n(6);
        let f = 3;
        let mut adv = SilencingCrash::new(size, f, 1);
        let rounds = check_run(size, f, &mut adv, "silencer");
        assert_eq!(rounds, f as u32 + 1, "the silencer must force f + 1 rounds");
    }

    #[test]
    fn exhaustive_proof_for_small_systems() {
        // Every legal crash pattern for (n = 3, f = 1) over 2 rounds and
        // (n = 3, f = 2) over 3 rounds: agreement among never-suspected
        // processes, by enumeration.
        use rrfd_models::adversary::ScriptedDetector;
        for (f, rounds) in [(1usize, 2u32), (2, 3)] {
            let size = n(3);
            let model = Crash::new(size, f);
            let patterns = all_patterns(&model, rounds, 3_000_000);
            assert!(patterns.len() > 10);
            for pattern in &patterns {
                let script: Vec<_> = pattern.iter().map(|(_, rf)| rf.clone()).collect();
                let mut det = ScriptedDetector::new(size, script);
                let r = check_run(size, f, &mut det, "exhaustive");
                assert!(r <= rounds);
            }
        }
    }

    #[test]
    fn early_decisions_are_not_overturned() {
        // A process that decides early keeps flooding; later rounds cannot
        // change its (already returned) decision, and latecomers still
        // match it. Covered structurally by the engine (first decision is
        // final); here we assert the protocol never *tries* to re-decide.
        let size = n(4);
        let _ = size;
        let mut p = EarlyStoppingConsensus::new(9, 3);
        let msgs: Vec<Option<Value>> = vec![Some(9), Some(5), Some(7), Some(8)];
        // Round 1 never decides under the stability rule (f > 0).
        let verdict = p.deliver(Delivery::new(
            Round::new(1),
            ProcessId::new(0),
            &msgs,
            IdSet::empty(),
        ));
        assert!(matches!(verdict, Control::Continue));
        // Round 2 is stable (no new suspicions): decide the minimum.
        let verdict = p.deliver(Delivery::new(
            Round::new(2),
            ProcessId::new(0),
            &msgs,
            IdSet::empty(),
        ));
        assert!(matches!(verdict, Control::Decide(5)));
        // Third delivery: already decided, must continue silently.
        let verdict = p.deliver(Delivery::new(
            Round::new(3),
            ProcessId::new(0),
            &msgs,
            IdSet::empty(),
        ));
        assert!(matches!(verdict, Control::Continue));
        assert_eq!(p.emit(Round::new(4)), 5, "keeps flooding its decision");
    }
}
