//! Theorem 3.3: a system with a k-set-consensus object and SWMR shared
//! memory supports the k-uncertainty detector of Theorem 3.1.
//!
//! Per round `r`, process `p_i`:
//!
//! 1. appends its round value to its cell of the round's value bank;
//! 2. proposes its own identifier to the round's k-set-consensus object
//!    and receives a winner identifier `w`;
//! 3. writes `w` to its cell of the round's announce bank, then reads all
//!    announce cells; with `W` the set of winner identifiers read,
//!    `D(i,r) := S ∖ W`.
//!
//! Two suspicion sets of the same round can differ only on the (at most
//! `k`) identifiers chosen by the object, and every reader sees the winner
//! that was written *first* to the announce bank, so the per-round
//! uncertainty `|∪D ∖ ∩D|` is at most `k − 1 < k` — the Theorem 3.1
//! predicate. Experiment E5 machine-checks this on every run.

use rrfd_core::{IdSet, ProcessId, SystemSize};
use rrfd_sims::shared_mem::{
    Action, MemProcess, MemScheduler, MemSimError, Observation, SharedMemSim,
};

/// The Theorem 3.3 detector-construction process: runs `rounds` rounds and
/// decides its per-round suspicion log.
#[derive(Debug, Clone)]
pub struct DetectorFromKSet {
    me: ProcessId,
    n: SystemSize,
    rounds: u32,
    round: u32,
    phase: DfkPhase,
    log: Vec<IdSet>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DfkPhase {
    WriteValue,
    Propose,
    WriteWinner,
    ReadAnnounce { next: usize, winners: IdSet },
}

impl DetectorFromKSet {
    /// Creates the process, to run `rounds` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    #[must_use]
    pub fn new(n: SystemSize, me: ProcessId, rounds: u32) -> Self {
        assert!(rounds >= 1, "at least one round required");
        DetectorFromKSet {
            me,
            n,
            rounds,
            round: 0,
            phase: DfkPhase::WriteValue,
            log: Vec::new(),
        }
    }

    /// Memory banks needed: a value bank and an announce bank per round.
    #[must_use]
    pub fn banks_needed(rounds: u32) -> usize {
        2 * rounds as usize
    }

    /// K-set objects needed: one per round.
    #[must_use]
    pub fn objects_needed(rounds: u32) -> usize {
        rounds as usize
    }

    fn value_bank(&self) -> usize {
        2 * self.round as usize
    }

    fn announce_bank(&self) -> usize {
        2 * self.round as usize + 1
    }
}

impl MemProcess<u64> for DetectorFromKSet {
    type Output = Vec<IdSet>;

    fn step(&mut self, obs: Observation<u64>) -> Action<u64, Vec<IdSet>> {
        match (self.phase, obs) {
            (DfkPhase::WriteValue, Observation::Start | Observation::Written) => {
                // Emit: append the round value (here: a tag of me/round).
                self.phase = DfkPhase::Propose;
                Action::Write {
                    bank: self.value_bank(),
                    value: (u64::from(self.round) << 8) | self.me.index() as u64,
                }
            }
            (DfkPhase::Propose, Observation::Written) => {
                self.phase = DfkPhase::WriteWinner;
                Action::Propose {
                    object: self.round as usize,
                    value: self.me.index() as u64,
                }
            }
            (DfkPhase::WriteWinner, Observation::Chosen(w)) => {
                self.phase = DfkPhase::ReadAnnounce {
                    next: 0,
                    winners: IdSet::empty(),
                };
                Action::Write {
                    bank: self.announce_bank(),
                    value: w,
                }
            }
            (DfkPhase::ReadAnnounce { next: 0, winners }, Observation::Written) => {
                self.phase = DfkPhase::ReadAnnounce { next: 0, winners };
                Action::Read {
                    bank: self.announce_bank(),
                    owner: ProcessId::new(0),
                }
            }
            (DfkPhase::ReadAnnounce { next, mut winners }, Observation::Value(cell)) => {
                if let Some(w) = cell {
                    winners.insert(ProcessId::new(w as usize));
                }
                let next = next + 1;
                if next < self.n.get() {
                    self.phase = DfkPhase::ReadAnnounce { next, winners };
                    return Action::Read {
                        bank: self.announce_bank(),
                        owner: ProcessId::new(next),
                    };
                }
                // Round complete: D(i,r) = S ∖ W.
                self.log.push(winners.complement(self.n));
                self.round += 1;
                if self.round >= self.rounds {
                    return Action::Decide(self.log.clone());
                }
                self.phase = DfkPhase::Propose;
                Action::Write {
                    bank: self.value_bank(),
                    value: (u64::from(self.round) << 8) | self.me.index() as u64,
                }
            }
            (phase, obs) => unreachable!("observation {obs:?} in phase {phase:?}"),
        }
    }
}

/// Runs the construction for `rounds` rounds on a system with a
/// `k`-set-consensus object per round, assembling the produced
/// [`rrfd_core::FaultPattern`]. Crashed processes' unrecorded rounds are
/// padded with the deciders' intersection (which changes neither the union
/// nor the intersection of the round, hence not the uncertainty).
///
/// # Errors
///
/// Propagates [`MemSimError`].
pub fn build_detector_pattern<S>(
    n: SystemSize,
    k: usize,
    rounds: u32,
    oracle_seed: u64,
    scheduler: &mut S,
) -> Result<rrfd_core::FaultPattern, MemSimError>
where
    S: MemScheduler + ?Sized,
{
    use rrfd_core::{FaultPattern, RoundFaults};

    let procs: Vec<_> = n
        .processes()
        .map(|p| DetectorFromKSet::new(n, p, rounds))
        .collect();
    let report = SharedMemSim::new(n, DetectorFromKSet::banks_needed(rounds))
        .with_kset_objects(DetectorFromKSet::objects_needed(rounds), k, oracle_seed)
        .run(procs, scheduler)?;

    let logs: Vec<Option<&Vec<IdSet>>> = report.outputs.iter().map(Option::as_ref).collect();
    let mut pattern = FaultPattern::new(n);
    for r in 0..rounds as usize {
        let common = logs
            .iter()
            .flatten()
            .filter_map(|log| log.get(r))
            .copied()
            .fold(IdSet::universe(n), IdSet::intersection);
        let sets = n
            .processes()
            .map(|p| match logs[p.index()].and_then(|log| log.get(r)) {
                Some(&d) => d,
                None => common,
            })
            .collect();
        pattern.push(RoundFaults::from_sets(n, sets));
    }
    Ok(pattern)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrfd_core::RrfdPredicate;
    use rrfd_models::predicates::KUncertainty;
    use rrfd_sims::shared_mem::{FairScheduler, RandomScheduler};

    fn n(v: usize) -> SystemSize {
        SystemSize::new(v).unwrap()
    }

    #[test]
    fn constructed_pattern_satisfies_pk_fair() {
        for &(nv, k) in &[(4usize, 1usize), (6, 2), (8, 3)] {
            let size = n(nv);
            let pattern = build_detector_pattern(size, k, 4, 7, &mut FairScheduler::new()).unwrap();
            let model = KUncertainty::new(size, k);
            assert!(
                model.admits_pattern(&pattern),
                "n={nv} k={k}: {pattern:?} breaks Pk"
            );
        }
    }

    #[test]
    fn constructed_pattern_satisfies_pk_random() {
        for &(nv, k) in &[(5usize, 2usize), (7, 3)] {
            let size = n(nv);
            let model = KUncertainty::new(size, k);
            for seed in 0..15u64 {
                let mut sched = RandomScheduler::new(seed, 0);
                let pattern =
                    build_detector_pattern(size, k, 3, seed * 31 + 1, &mut sched).unwrap();
                assert!(
                    model.admits_pattern(&pattern),
                    "n={nv} k={k} seed={seed}: uncertainty exceeded"
                );
            }
        }
    }

    #[test]
    fn suspicion_sets_differ_only_on_winners() {
        // The structural claim inside Theorem 3.3's proof.
        let size = n(6);
        let k = 2;
        for seed in 0..10u64 {
            let mut sched = RandomScheduler::new(seed, 0);
            let pattern = build_detector_pattern(size, k, 3, seed + 100, &mut sched).unwrap();
            for (_, rf) in pattern.iter() {
                // The uncertainty is at most k − 1.
                assert!(rf.uncertainty().len() < k);
            }
        }
    }

    #[test]
    fn crashes_are_tolerated() {
        let size = n(6);
        let k = 3;
        let model = KUncertainty::new(size, k);
        for seed in 0..10u64 {
            let mut sched = RandomScheduler::new(seed, 2).crash_prob(0.01);
            let pattern = build_detector_pattern(size, k, 3, seed, &mut sched).unwrap();
            assert!(model.admits_pattern(&pattern), "seed {seed}");
        }
    }
}
