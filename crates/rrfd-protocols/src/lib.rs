//! The algorithms, simulations and reductions of the RRFD paper.
//!
//! | Paper result | Module |
//! |--------------|--------|
//! | Theorem 3.1 (one-round k-set agreement) | [`kset`] |
//! | Corollary 3.2 (k-set agreement, `k − 1` crashes) | [`kset`] |
//! | Theorem 3.3 (detector from a k-set-consensus object) | [`detector_from_kset`] |
//! | §4.2 adopt-commit | [`adopt_commit`] |
//! | Theorem 4.1 (omission-round simulation) | [`sync_sim::omission`] |
//! | Theorem 4.3 (crash-round simulation) | [`sync_sim::crash`] |
//! | Corollaries 4.2/4.4 (`⌊f/k⌋ + 1` bound, both arms) | [`kset`] + `rrfd_models::adversary::SilencingCrash` |
//! | Theorem 5.1 / §5 (2-step semi-synchronous consensus) | [`semi_sync_consensus`] |
//! | §2 item 6 (consensus under detector-S / P6) | [`s_consensus`] |
//! | §2 item 4's substrate: shared memory from message passing (ABD \[22\]) | [`abd`] |
//! | §2 item 5's root: one-shot immediate snapshot (\[4\]) | [`immediate_snapshot`] |
//! | Extension: early-stopping consensus (min(f′+2, f+1) rounds) | [`early_stopping`] |
//! | §7 future work: consensus under ◊S (quorum locking, 2f < n) | [`diamond_s_consensus`] |
//! | §2 round-combination constructions (items 3, 4, 6) | [`equivalence`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abd;
pub mod adopt_commit;
pub mod detector_from_kset;
pub mod diamond_s_consensus;
pub mod early_stopping;
pub mod equivalence;
pub mod immediate_snapshot;
pub mod kset;
pub mod s_consensus;
pub mod semi_sync_consensus;
pub mod sync_sim;
