//! A minimal slab allocator for per-shard instance state.
//!
//! Each pool shard stores its live [`rrfd_core::EngineRun`]s in a
//! [`Slab`]: one contiguous `Vec` of slots plus a free list, so instance
//! turnover (retire one run, admit the next) reuses a vacated slot
//! instead of reallocating, and a sweep over live instances is a linear
//! scan of one allocation — cache-local by construction. Keys are plain
//! slot indices; the slab never shrinks, so a key stays valid until its
//! entry is removed.

/// A vector-backed arena with slot reuse.
///
/// Not a general-purpose slab: no key versioning (the pool never holds a
/// key across a remove) and no shrinking (shards live for one batch).
#[derive(Debug)]
pub struct Slab<T> {
    slots: Vec<Option<T>>,
    free: Vec<usize>,
    live: usize,
}

impl<T> Slab<T> {
    /// An empty slab.
    #[must_use]
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// An empty slab with room for `capacity` entries before the backing
    /// vector grows.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            live: 0,
        }
    }

    /// Stores `value`, reusing the most recently vacated slot when one
    /// exists, and returns its key.
    pub fn insert(&mut self, value: T) -> usize {
        self.live += 1;
        match self.free.pop() {
            Some(key) => {
                self.slots[key] = Some(value);
                key
            }
            None => {
                self.slots.push(Some(value));
                self.slots.len() - 1
            }
        }
    }

    /// Removes and returns the entry at `key`; `None` when the slot is
    /// vacant or out of range.
    pub fn remove(&mut self, key: usize) -> Option<T> {
        let taken = self.slots.get_mut(key).and_then(Option::take);
        if taken.is_some() {
            self.live -= 1;
            self.free.push(key);
        }
        taken
    }

    /// The entry at `key`, mutably; `None` when vacant or out of range.
    pub fn get_mut(&mut self, key: usize) -> Option<&mut T> {
        self.slots.get_mut(key).and_then(Option::as_mut)
    }

    /// Number of occupied slots.
    #[must_use]
    pub fn live(&self) -> usize {
        self.live
    }

    /// `true` when no slot is occupied.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slots ever allocated (occupied + vacant). Sweeping
    /// `0..slot_count()` with [`Slab::get_mut`] visits every live entry.
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_reuses_slots() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.live(), 2);
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.live(), 1);
        // The vacated slot is reused: no new backing growth.
        let c = slab.insert("c");
        assert_eq!(c, a);
        assert_eq!(slab.slot_count(), 2);
        assert_eq!(slab.get_mut(b), Some(&mut "b"));
        assert_eq!(slab.get_mut(c), Some(&mut "c"));
    }

    #[test]
    fn remove_is_idempotent_and_bounds_checked() {
        let mut slab = Slab::new();
        let a = slab.insert(1u32);
        assert_eq!(slab.remove(a), Some(1));
        assert_eq!(slab.remove(a), None);
        assert_eq!(slab.remove(999), None);
        assert!(slab.is_empty());
    }

    #[test]
    fn sweep_visits_every_live_entry_exactly_once() {
        let mut slab = Slab::new();
        for i in 0..10u32 {
            slab.insert(i);
        }
        slab.remove(3);
        slab.remove(7);
        let mut seen = Vec::new();
        for key in 0..slab.slot_count() {
            if let Some(v) = slab.get_mut(key) {
                seen.push(*v);
            }
        }
        assert_eq!(seen, vec![0, 1, 2, 4, 5, 6, 8, 9]);
    }
}
