//! Mix specifications: which protocol/predicate/adversary combinations a
//! batch runs, in what proportions, and the concrete [`InstanceClass`]es
//! they denote.
//!
//! A batch is rarely homogeneous — the service-shaped question is "what
//! throughput do we sustain over a *mix* of tenants": different
//! protocols, different system sizes, different adversaries, some of
//! them failing. A [`MixSpec`] captures that as a weighted list of
//! classes, parsed from a compact spec string:
//!
//! ```text
//! kset:n=8:k=2:w=3,floodmin:n=6:f=2,stall:n=4:rounds=4:w=1
//! ```
//!
//! Each comma-separated entry is `name[:key=value]*`. Recognised names
//! and their parameters:
//!
//! | name        | protocol                  | model / adversary                    | keys |
//! |-------------|---------------------------|--------------------------------------|------|
//! | `kset`      | `OneRoundKSet`            | `KUncertainty(n,k)` / random         | `n`, `k` |
//! | `floodmin`  | `FloodMin`                | `Crash(n,f)` / random                | `n`, `f`, `k` |
//! | `sconsensus`| `SRotatingConsensus`      | `DetectorS(n)` / random              | `n` |
//! | `early`     | `EarlyStoppingConsensus`  | `Crash(n,f)` / staggered crash       | `n`, `f` |
//! | `stall`     | never decides             | `AnyPattern(n)` / fault-free         | `n`, `rounds` |
//!
//! `w` (weight, default 1) sets the class's share of instances: global
//! instance id `i` belongs to the class owning residue `i mod Σw`, so
//! proportions are exact and assignment is deterministic — the batch
//! pool and the sequential baseline agree on which instance is which
//! without communicating. `stall` instances never decide and abort with
//! [`rrfd_core::EngineError::RoundLimitExceeded`] after `rounds` rounds
//! (default 4): a mix containing them exercises the pool's guarantee
//! that a failing instance never poisons its shard.

use crate::pool::InstanceClass;
use rrfd_core::task::Value;
use rrfd_core::{
    AnyPattern, Control, Delivery, Round, RoundProtocol, SystemSize, DEFAULT_MAX_ROUNDS,
};
use rrfd_models::adversary::{NoFailures, RandomAdversary, StaggeredCrash};
use rrfd_models::predicates::{Crash, DetectorS, KUncertainty};
use rrfd_protocols::early_stopping::EarlyStoppingConsensus;
use rrfd_protocols::kset::{FloodMin, OneRoundKSet};
use rrfd_protocols::s_consensus::SRotatingConsensus;
use std::fmt;

/// The protocol/model families a mix entry can name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassKind {
    /// `OneRoundKSet` under `KUncertainty(n, k)`, random adversary.
    KSet,
    /// `FloodMin` under `Crash(n, f)`, random adversary.
    FloodMin,
    /// `SRotatingConsensus` under `DetectorS(n)`, random adversary.
    SConsensus,
    /// `EarlyStoppingConsensus` under `Crash(n, f)`, staggered crashes.
    Early,
    /// A never-deciding protocol under `AnyPattern(n)`: every instance
    /// aborts with `RoundLimitExceeded` after its round budget.
    Stall,
}

impl ClassKind {
    /// The spec-string name of this kind.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ClassKind::KSet => "kset",
            ClassKind::FloodMin => "floodmin",
            ClassKind::SConsensus => "sconsensus",
            ClassKind::Early => "early",
            ClassKind::Stall => "stall",
        }
    }
}

/// One parsed mix entry: a class kind with its parameters and weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassSpec {
    /// The protocol/model family.
    pub kind: ClassKind,
    /// System size.
    pub n: SystemSize,
    /// Agreement parameter `k` (`kset`, `floodmin`).
    pub k: usize,
    /// Failure bound `f` (`floodmin`, `early`).
    pub f: usize,
    /// Share of instances relative to the mix's total weight.
    pub weight: u32,
    /// Round budget for `stall` instances.
    pub stall_rounds: u32,
}

impl ClassSpec {
    /// The engine round limit this class runs under.
    #[must_use]
    pub fn max_rounds(&self) -> u32 {
        match self.kind {
            ClassKind::Stall => self.stall_rounds,
            _ => DEFAULT_MAX_ROUNDS,
        }
    }
}

impl fmt::Display for ClassSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:n={}", self.kind.name(), self.n.get())?;
        match self.kind {
            ClassKind::KSet => write!(f, ":k={}", self.k)?,
            ClassKind::FloodMin => write!(f, ":f={}:k={}", self.f, self.k)?,
            ClassKind::Early => write!(f, ":f={}", self.f)?,
            ClassKind::Stall => write!(f, ":rounds={}", self.stall_rounds)?,
            ClassKind::SConsensus => {}
        }
        write!(f, ":w={}", self.weight)
    }
}

/// A weighted list of instance classes — the tenant population of one
/// batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MixSpec {
    classes: Vec<ClassSpec>,
    total_weight: u64,
}

/// Why a mix spec string was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MixError(String);

impl fmt::Display for MixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad mix spec: {}", self.0)
    }
}

impl std::error::Error for MixError {}

fn err(message: impl Into<String>) -> MixError {
    MixError(message.into())
}

impl MixSpec {
    /// Parses a comma-separated spec string (see the module docs for the
    /// grammar).
    ///
    /// # Errors
    ///
    /// [`MixError`] on an unknown class name or key, an unparsable
    /// value, or parameters violating a model's definedness constraints
    /// (`kset` needs `1 ≤ k < n`, crash families need `f < n`, weights
    /// and stall budgets must be ≥ 1).
    pub fn parse(spec: &str) -> Result<MixSpec, MixError> {
        let mut classes = Vec::new();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            classes.push(parse_entry(entry)?);
        }
        MixSpec::from_classes(classes)
    }

    /// Builds a mix from already-constructed entries.
    ///
    /// # Errors
    ///
    /// [`MixError`] when `classes` is empty.
    pub fn from_classes(classes: Vec<ClassSpec>) -> Result<MixSpec, MixError> {
        if classes.is_empty() {
            return Err(err("a mix needs at least one class"));
        }
        let total_weight = classes.iter().map(|c| u64::from(c.weight)).sum();
        Ok(MixSpec {
            classes,
            total_weight,
        })
    }

    /// The serve harness's default mix: all five classes, small systems,
    /// decided classes weighted 2:2:2:2 against one share of `stall`.
    #[must_use]
    pub fn default_mix() -> MixSpec {
        match MixSpec::parse(Self::DEFAULT_SPEC) {
            Ok(mix) => mix,
            // The constant is parsed by a unit test; an empty mix cannot
            // be produced from it.
            Err(_) => MixSpec {
                classes: Vec::new(),
                total_weight: 0,
            },
        }
    }

    /// The spec string [`MixSpec::default_mix`] parses.
    pub const DEFAULT_SPEC: &'static str = "kset:n=8:k=2:w=2,floodmin:n=6:f=2:k=1:w=2,\
         sconsensus:n=5:w=2,early:n=6:f=2:w=2,stall:n=4:rounds=4:w=1";

    /// The parsed entries, in spec order.
    #[must_use]
    pub fn classes(&self) -> &[ClassSpec] {
        &self.classes
    }

    /// The class index owning global instance `id`: weights partition
    /// the residues of `id mod Σw` in spec order.
    #[must_use]
    pub fn class_of(&self, id: u64) -> usize {
        let mut residue = id % self.total_weight.max(1);
        for (index, class) in self.classes.iter().enumerate() {
            let w = u64::from(class.weight);
            if residue < w {
                return index;
            }
            residue -= w;
        }
        self.classes.len().saturating_sub(1)
    }
}

impl std::fmt::Display for MixSpec {
    /// Renders the spec string this mix parses back from (class specs
    /// joined by commas).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, class) in self.classes.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{class}")?;
        }
        Ok(())
    }
}

fn parse_entry(entry: &str) -> Result<ClassSpec, MixError> {
    let mut parts = entry.split(':');
    let name = parts.next().unwrap_or_default();
    let kind = match name {
        "kset" => ClassKind::KSet,
        "floodmin" => ClassKind::FloodMin,
        "sconsensus" => ClassKind::SConsensus,
        "early" => ClassKind::Early,
        "stall" => ClassKind::Stall,
        other => return Err(err(format!("unknown class `{other}`"))),
    };
    let mut n = 4usize;
    let mut k = 1usize;
    let mut f = 1usize;
    let mut weight = 1u32;
    let mut stall_rounds = 4u32;
    for part in parts {
        let Some((key, value)) = part.split_once('=') else {
            return Err(err(format!("expected key=value, got `{part}`")));
        };
        let parsed: u64 = value
            .parse()
            .map_err(|_| err(format!("`{key}` needs an integer, got `{value}`")))?;
        match key {
            "n" => n = parsed as usize,
            "k" => k = parsed as usize,
            "f" => f = parsed as usize,
            "w" => weight = parsed as u32,
            "rounds" => stall_rounds = parsed as u32,
            other => return Err(err(format!("unknown key `{other}` for `{name}`"))),
        }
    }
    let n = SystemSize::new(n).map_err(|e| err(format!("{name}: {e}")))?;
    if weight == 0 {
        return Err(err(format!("{name}: weight must be ≥ 1")));
    }
    match kind {
        ClassKind::KSet => {
            if k == 0 || k >= n.get() {
                return Err(err(format!(
                    "kset needs 1 ≤ k < n, got k={k} n={}",
                    n.get()
                )));
            }
        }
        ClassKind::FloodMin => {
            if f >= n.get() {
                return Err(err(format!(
                    "floodmin needs f < n, got f={f} n={}",
                    n.get()
                )));
            }
            if k == 0 {
                return Err(err("floodmin needs k ≥ 1"));
            }
        }
        ClassKind::Early => {
            if f >= n.get() {
                return Err(err(format!("early needs f < n, got f={f} n={}", n.get())));
            }
        }
        ClassKind::Stall => {
            if stall_rounds == 0 {
                return Err(err("stall needs rounds ≥ 1"));
            }
        }
        ClassKind::SConsensus => {}
    }
    Ok(ClassSpec {
        kind,
        n,
        k,
        f,
        weight,
        stall_rounds,
    })
}

/// SplitMix64: the per-instance seed/input stream. One multiplicative
/// hash per draw, deterministic in the (batch seed, instance id, lane)
/// triple, so the pool and the sequential baseline derive identical
/// instances with no shared state.
#[must_use]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The input value process `p` proposes in instance `id` under batch
/// `seed`: a small value in `0..100` so agreement tasks see collisions.
#[must_use]
pub fn instance_input(seed: u64, id: u64, p: usize) -> Value {
    splitmix64(seed ^ splitmix64(id).wrapping_add(p as u64)) % 100
}

/// A process that never decides: emits a counter and continues forever.
/// Its runs are the batch's guaranteed [`rrfd_core::EngineError`]
/// outcomes — the round limit always fires.
#[derive(Debug, Clone)]
pub struct Stall {
    emitted: u64,
}

impl Stall {
    /// A fresh non-decider.
    #[must_use]
    pub fn new() -> Self {
        Stall { emitted: 0 }
    }
}

impl Default for Stall {
    fn default() -> Self {
        Stall::new()
    }
}

impl RoundProtocol for Stall {
    type Msg = u64;
    type Output = Value;

    fn emit(&mut self, _round: Round) -> u64 {
        self.emitted += 1;
        self.emitted
    }

    fn deliver(&mut self, _delivery: Delivery<'_, u64>) -> Control<Value> {
        Control::Continue
    }
}

// -- concrete classes --------------------------------------------------------

/// `kset` instances: [`OneRoundKSet`] under `KUncertainty(n, k)` with a
/// seeded random adversary.
#[derive(Debug, Clone, Copy)]
pub struct KSetClass {
    spec: ClassSpec,
    seed: u64,
}

/// `floodmin` instances: [`FloodMin`] with the correct `⌊f/k⌋ + 1`
/// budget under `Crash(n, f)` with a seeded random adversary.
#[derive(Debug, Clone, Copy)]
pub struct FloodMinClass {
    spec: ClassSpec,
    seed: u64,
}

/// `sconsensus` instances: [`SRotatingConsensus`] under `DetectorS(n)`
/// with a seeded random adversary.
#[derive(Debug, Clone, Copy)]
pub struct SConsensusClass {
    spec: ClassSpec,
    seed: u64,
}

/// `early` instances: [`EarlyStoppingConsensus`] under `Crash(n, f)`
/// with `StaggeredCrash` adversaries whose actual fault count rotates
/// through `0..=f` by instance id.
#[derive(Debug, Clone, Copy)]
pub struct EarlyClass {
    spec: ClassSpec,
    seed: u64,
}

/// `stall` instances: [`Stall`] processes under `AnyPattern(n)` with the
/// fault-free detector — guaranteed `RoundLimitExceeded`.
#[derive(Debug, Clone, Copy)]
pub struct StallClass {
    spec: ClassSpec,
}

impl KSetClass {
    /// Builds the class from its spec entry and the batch seed.
    #[must_use]
    pub fn new(spec: ClassSpec, seed: u64) -> Self {
        KSetClass { spec, seed }
    }
}

impl InstanceClass for KSetClass {
    type P = OneRoundKSet;
    type D = RandomAdversary<KUncertainty>;
    type Q = KUncertainty;

    fn name(&self) -> &'static str {
        self.spec.kind.name()
    }

    fn system_size(&self) -> SystemSize {
        self.spec.n
    }

    fn max_rounds(&self) -> u32 {
        self.spec.max_rounds()
    }

    fn build(&self, id: u64) -> (Vec<Self::P>, Self::D, Self::Q) {
        let n = self.spec.n;
        let protocols = (0..n.get())
            .map(|p| OneRoundKSet::new(instance_input(self.seed, id, p)))
            .collect();
        let model = KUncertainty::new(n, self.spec.k);
        let detector = RandomAdversary::new(model, splitmix64(self.seed ^ id));
        (protocols, detector, model)
    }
}

impl FloodMinClass {
    /// Builds the class from its spec entry and the batch seed.
    #[must_use]
    pub fn new(spec: ClassSpec, seed: u64) -> Self {
        FloodMinClass { spec, seed }
    }
}

impl InstanceClass for FloodMinClass {
    type P = FloodMin;
    type D = RandomAdversary<Crash>;
    type Q = Crash;

    fn name(&self) -> &'static str {
        self.spec.kind.name()
    }

    fn system_size(&self) -> SystemSize {
        self.spec.n
    }

    fn max_rounds(&self) -> u32 {
        self.spec.max_rounds()
    }

    fn build(&self, id: u64) -> (Vec<Self::P>, Self::D, Self::Q) {
        let n = self.spec.n;
        let budget = FloodMin::correct_budget(self.spec.f, self.spec.k);
        let protocols = (0..n.get())
            .map(|p| FloodMin::new(instance_input(self.seed, id, p), budget))
            .collect();
        let model = Crash::new(n, self.spec.f);
        let detector = RandomAdversary::new(model, splitmix64(self.seed ^ id));
        (protocols, detector, model)
    }
}

impl SConsensusClass {
    /// Builds the class from its spec entry and the batch seed.
    #[must_use]
    pub fn new(spec: ClassSpec, seed: u64) -> Self {
        SConsensusClass { spec, seed }
    }
}

impl InstanceClass for SConsensusClass {
    type P = SRotatingConsensus;
    type D = RandomAdversary<DetectorS>;
    type Q = DetectorS;

    fn name(&self) -> &'static str {
        self.spec.kind.name()
    }

    fn system_size(&self) -> SystemSize {
        self.spec.n
    }

    fn max_rounds(&self) -> u32 {
        self.spec.max_rounds()
    }

    fn build(&self, id: u64) -> (Vec<Self::P>, Self::D, Self::Q) {
        let n = self.spec.n;
        let protocols = (0..n.get())
            .map(|p| SRotatingConsensus::new(n, instance_input(self.seed, id, p)))
            .collect();
        let model = DetectorS::new(n);
        let detector = RandomAdversary::new(model, splitmix64(self.seed ^ id));
        (protocols, detector, model)
    }
}

impl EarlyClass {
    /// Builds the class from its spec entry and the batch seed.
    #[must_use]
    pub fn new(spec: ClassSpec, seed: u64) -> Self {
        EarlyClass { spec, seed }
    }
}

impl InstanceClass for EarlyClass {
    type P = EarlyStoppingConsensus;
    type D = StaggeredCrash;
    type Q = Crash;

    fn name(&self) -> &'static str {
        self.spec.kind.name()
    }

    fn system_size(&self) -> SystemSize {
        self.spec.n
    }

    fn max_rounds(&self) -> u32 {
        self.spec.max_rounds()
    }

    fn build(&self, id: u64) -> (Vec<Self::P>, Self::D, Self::Q) {
        let n = self.spec.n;
        let f = self.spec.f;
        let protocols = (0..n.get())
            .map(|p| EarlyStoppingConsensus::new(instance_input(self.seed, id, p), f))
            .collect();
        // Rotate the actual fault count through 0..=f so the class
        // exercises both the early-stopping and the worst-case paths.
        let f_actual = (id % (f as u64 + 1)) as usize;
        let detector = StaggeredCrash::new(n, f_actual);
        (protocols, detector, Crash::new(n, f))
    }
}

impl StallClass {
    /// Builds the class from its spec entry.
    #[must_use]
    pub fn new(spec: ClassSpec) -> Self {
        StallClass { spec }
    }
}

impl InstanceClass for StallClass {
    type P = Stall;
    type D = NoFailures;
    type Q = AnyPattern;

    fn name(&self) -> &'static str {
        self.spec.kind.name()
    }

    fn system_size(&self) -> SystemSize {
        self.spec.n
    }

    fn max_rounds(&self) -> u32 {
        self.spec.max_rounds()
    }

    fn build(&self, _id: u64) -> (Vec<Self::P>, Self::D, Self::Q) {
        let n = self.spec.n;
        let protocols = (0..n.get()).map(|_| Stall::new()).collect();
        (protocols, NoFailures::new(n), AnyPattern::new(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_parses_and_covers_all_kinds() {
        let mix = MixSpec::default_mix();
        let kinds: Vec<_> = mix.classes().iter().map(|c| c.kind).collect();
        assert_eq!(
            kinds,
            vec![
                ClassKind::KSet,
                ClassKind::FloodMin,
                ClassKind::SConsensus,
                ClassKind::Early,
                ClassKind::Stall,
            ]
        );
    }

    #[test]
    fn weights_partition_instance_ids_exactly() {
        let mix = MixSpec::parse("kset:n=4:k=1:w=3,stall:n=4:w=1").unwrap();
        // Σw = 4: residues 0..3 → kset, residue 3 → stall.
        let assigned: Vec<_> = (0..8).map(|id| mix.class_of(id)).collect();
        assert_eq!(assigned, vec![0, 0, 0, 1, 0, 0, 0, 1]);
    }

    #[test]
    fn spec_errors_are_reported_not_panicked() {
        assert!(MixSpec::parse("").is_err());
        assert!(MixSpec::parse("nosuch:n=4").is_err());
        assert!(MixSpec::parse("kset:n=4:k=0").is_err());
        assert!(MixSpec::parse("kset:n=4:k=4").is_err());
        assert!(MixSpec::parse("floodmin:n=4:f=4").is_err());
        assert!(MixSpec::parse("early:n=4:f=9").is_err());
        assert!(MixSpec::parse("stall:n=4:rounds=0").is_err());
        assert!(MixSpec::parse("kset:n=4:w=0").is_err());
        assert!(MixSpec::parse("kset:n=4:bogus=1").is_err());
        assert!(MixSpec::parse("kset:n=nope").is_err());
    }

    #[test]
    fn display_roundtrips_through_parse() {
        let mix = MixSpec::default_mix();
        let rendered: Vec<String> = mix.classes().iter().map(ToString::to_string).collect();
        let reparsed = MixSpec::parse(&rendered.join(",")).unwrap();
        assert_eq!(reparsed, mix);
    }

    #[test]
    fn instance_inputs_are_deterministic_and_small() {
        for id in 0..50u64 {
            for p in 0..8usize {
                let a = instance_input(7, id, p);
                let b = instance_input(7, id, p);
                assert_eq!(a, b);
                assert!(a < 100);
            }
        }
        // Different instances disagree somewhere (not a constant stream).
        let first: Vec<_> = (0..8).map(|p| instance_input(7, 0, p)).collect();
        let second: Vec<_> = (0..8).map(|p| instance_input(7, 1, p)).collect();
        assert_ne!(first, second);
    }
}
