//! The sharded batch pool: many independent engine runs, few threads.
//!
//! [`run_batch`] drives `instances` independent protocol runs — drawn
//! from a weighted [`MixSpec`] of protocol/model
//! classes — across `shards` worker threads. The design has three
//! load-bearing pieces (DESIGN.md §13):
//!
//! 1. **Deterministic sharding.** Instance `i` always lands on shard
//!    `i mod shards` and in the mix class owning residue `i mod Σw`.
//!    No queues, no work stealing: the pool and the sequential baseline
//!    ([`run_sequential`]) agree on every instance's inputs, adversary
//!    seed, and class without communicating, which is what makes the
//!    differential suite possible.
//! 2. **Instance multiplexing.** A shard does not run instances to
//!    completion one by one; it holds a window of live
//!    [`rrfd_core::EngineRun`]s in a [`Slab`] and
//!    round-robins them one [`step`](rrfd_core::EngineRun::step) (= one
//!    round) at a time. Long-running instances therefore cannot
//!    head-of-line-block short ones, and a never-deciding instance is
//!    bounded by its own round limit, not the shard's patience.
//! 3. **Slab lifecycle.** Retiring a run returns its shared
//!    emission-table buffer ([`rrfd_core::FinishedRun::buffer`]); the
//!    lane stashes it and hands it to the next admission
//!    ([`rrfd_core::Engine::start_with_buffer`]), so steady-state
//!    instance turnover allocates no new round tables. The slab slot
//!    itself is reused the same way.
//!
//! Failure containment: an instance that ends in an
//! [`EngineError`] (the mix's `stall` class ends in one by design) is
//! retired and counted exactly like a deciding instance — the shard
//! sweeps on. Nothing is unwrapped on the hot path.

use crate::mix::{
    ClassKind, ClassSpec, EarlyClass, FloodMinClass, KSetClass, MixSpec, SConsensusClass,
    StallClass,
};
use crate::slab::Slab;
use rrfd_core::task::Value;
use rrfd_core::{
    Engine, EngineError, EngineRun, EngineStep, FaultDetector, RoundHook, RoundProtocol,
    RrfdPredicate, RunReport, RunTrace, SystemSize,
};
use rrfd_models::conformance::{ConformanceMonitor, ConformanceVerdict};
use rrfd_obs::{names, FlightRecorder, Labels, Obs, DEFAULT_FLIGHT_ROUNDS};
use std::sync::{Arc, Mutex};

/// The zoo resilience parameter pool conformance monitors use: every
/// monitored instance is checked against `zoo(n, 1)` — the weakest
/// non-trivial resilience, so the verdict orders runs by how benign
/// their adversary actually was rather than by what the class's model
/// permits.
const CONF_ZOO_F: usize = 1;

/// One tenant family a batch can run: how to build instance `id`'s
/// protocols, adversary, and model predicate. Implementations must be
/// pure in `id` — the pool and the sequential baseline both call
/// [`InstanceClass::build`] and must get identical instances.
pub trait InstanceClass {
    /// The protocol every process in an instance runs. Outputs are the
    /// workspace's canonical [`Value`] so results from different classes
    /// are uniformly comparable.
    type P: RoundProtocol<Output = Value>;
    /// The adversary driving an instance.
    type D: FaultDetector;
    /// The model predicate the adversary is validated against.
    type Q: RrfdPredicate;

    /// The class's display name (stable across runs; used in reports).
    fn name(&self) -> &'static str;
    /// System size of every instance of this class.
    fn system_size(&self) -> SystemSize;
    /// Engine round limit for this class's instances.
    fn max_rounds(&self) -> u32;
    /// Materializes instance `id`: per-process protocols, a (seeded)
    /// detector, and the model.
    fn build(&self, id: u64) -> (Vec<Self::P>, Self::D, Self::Q);
}

/// What one instance produced, uniform across classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSummary {
    /// Per-process `(decision, round)` pairs; `None` for a process that
    /// never decided (cannot occur on the `Ok` path — the engine only
    /// reports success once everyone decided — but kept total).
    pub outputs: Vec<Option<(Value, u32)>>,
    /// Rounds the instance executed.
    pub rounds_executed: u32,
}

/// One retired instance, as recorded when
/// [`PoolConfig::keep_results`] is on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceResult {
    /// Global instance id.
    pub instance: u64,
    /// The owning class's display name.
    pub class: &'static str,
    /// Shard that executed it (`0` for the sequential baseline).
    pub shard: usize,
    /// Decision summary, or the engine error that retired the instance.
    pub outcome: Result<RunSummary, EngineError>,
    /// The run trace when [`PoolConfig::capture_traces`] is on.
    pub trace: Option<RunTrace>,
    /// The zoo verdict when [`PoolConfig::conformance`] is on.
    pub conformance: Option<InstanceConformance>,
}

/// One monitored instance's zoo verdict, summarized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceConformance {
    /// Name and strength rank of the strongest zoo predicate the
    /// instance's observed fault pattern still satisfies; `None` when
    /// nothing held. Rank 0 is the top of the committed lattice.
    pub strongest: Option<(String, usize)>,
    /// `(predicate, first violation round)` per violated predicate.
    pub violations: Vec<(String, u32)>,
}

impl InstanceConformance {
    fn from_verdict(verdict: &ConformanceVerdict) -> Self {
        InstanceConformance {
            strongest: verdict
                .strongest_satisfied()
                .map(|s| (s.name.clone(), s.rank)),
            violations: verdict
                .statuses
                .iter()
                .filter_map(|s| s.first_violation.map(|r| (s.name.clone(), r.get())))
                .collect(),
        }
    }
}

/// Folded zoo conformance for one mix class, in a [`BatchReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassConformance {
    /// The class's spec entry, rendered (`kset:n=8:k=2:w=2`).
    pub class: String,
    /// Monitored instances.
    pub instances: u64,
    /// Instances whose entire zoo held for the whole run.
    pub clean: u64,
    /// The weakest strongest-satisfied rank across the class's
    /// instances: the class's worst-case environment. `-1` when some
    /// instance satisfied nothing at all.
    pub worst_rank: i64,
    /// Display name of the predicate behind `worst_rank`, when one
    /// survived.
    pub worst_name: Option<String>,
}

/// Per-class totals in a [`BatchReport`], in mix order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClassTotals {
    /// The class's spec entry, rendered (`kset:n=8:k=2:w=2`).
    pub class: String,
    /// Instances that decided.
    pub completed: u64,
    /// Instances retired by an [`EngineError`].
    pub errored: u64,
    /// Rounds executed by this class's instances.
    pub rounds: u64,
}

/// What a batch (or the sequential baseline) did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchReport {
    /// Instances requested.
    pub instances: u64,
    /// Instances that decided.
    pub completed: u64,
    /// Instances retired by an [`EngineError`].
    pub errored: u64,
    /// Total engine rounds executed across all instances.
    pub rounds: u64,
    /// Shards the batch ran on (`1` for the sequential baseline).
    pub shards: usize,
    /// Per-class totals, in mix order.
    pub classes: Vec<ClassTotals>,
    /// Per-instance results, ascending by instance id; empty unless
    /// [`PoolConfig::keep_results`] was set.
    pub results: Vec<InstanceResult>,
    /// Per-class zoo conformance, in mix order (classes that ran no
    /// instances are omitted); empty unless [`PoolConfig::conformance`]
    /// was set.
    pub conformance: Vec<ClassConformance>,
    /// Post-mortem flight captures from shards whose instances errored
    /// mid-batch, in shard order (capped per shard); empty unless
    /// [`PoolConfig::flight`] was set.
    pub flight_dumps: Vec<String>,
}

/// Batch execution knobs.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    shards: usize,
    window: usize,
    seed: u64,
    keep_results: bool,
    capture_traces: bool,
    conformance: bool,
    flight: bool,
    obs: Obs,
}

/// Default per-shard admission window: live instances multiplexed per
/// shard before admission pauses.
pub const DEFAULT_WINDOW: usize = 64;

impl PoolConfig {
    /// A configuration with `shards` worker threads (clamped to at
    /// least one), the default admission window, seed 0, no result or
    /// trace retention, and no observability.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        PoolConfig {
            shards: shards.max(1),
            window: DEFAULT_WINDOW,
            seed: 0,
            keep_results: false,
            capture_traces: false,
            conformance: false,
            flight: false,
            obs: Obs::noop(),
        }
    }

    /// Overrides the per-shard admission window (clamped to ≥ 1): how
    /// many live instances a shard multiplexes before it stops
    /// admitting. Larger windows amortize sweep overhead; smaller ones
    /// bound peak state.
    #[must_use]
    pub fn window(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }

    /// Sets the batch seed: instance inputs and adversary seeds derive
    /// from `(seed, instance id)`, so two runs with one seed are
    /// instance-for-instance identical.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Retains a per-instance [`InstanceResult`] (off by default: a
    /// million-instance batch should not grow a million-entry vector
    /// unless asked).
    #[must_use]
    pub fn keep_results(mut self, keep: bool) -> Self {
        self.keep_results = keep;
        self
    }

    /// Captures a [`RunTrace`] per instance (implies the allocation
    /// cost of tracing; intended for the differential suite, not for
    /// throughput runs). Only observable through kept results.
    #[must_use]
    pub fn capture_traces(mut self, capture: bool) -> Self {
        self.capture_traces = capture;
        self
    }

    /// Attaches a live zoo conformance monitor to every instance: the
    /// engine's round hook feeds each round's suspicions to a
    /// per-instance [`ConformanceMonitor`] over `zoo(n, 1)`, and
    /// verdicts are folded per class into [`BatchReport::conformance`]
    /// (plus per-instance into kept results, and as
    /// `rrfd_conformance_*` metrics through the attached handle).
    #[must_use]
    pub fn conformance(mut self, conformance: bool) -> Self {
        self.conformance = conformance;
        self
    }

    /// Arms the per-shard crash flight recorder: each shard keeps a
    /// fixed-size ring of recent admission/retirement notes and, when an
    /// instance errors mid-batch, captures a post-mortem dump into
    /// [`BatchReport::flight_dumps`] (capped per shard — a stall-heavy
    /// mix errors by design).
    #[must_use]
    pub fn flight(mut self, flight: bool) -> Self {
        self.flight = flight;
        self
    }

    /// Attaches an observability handle; the pool then records the
    /// `rrfd_pool_*` metrics (instances, errors, rounds, per-step
    /// latency histogram, buffer reuses) through it, and every
    /// instance's engine records its rounds, spans, and latencies
    /// through the same handle (spans stamped with the instance id).
    #[must_use]
    pub fn obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The configured shard count.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The configured batch seed.
    #[must_use]
    pub fn batch_seed(&self) -> u64 {
        self.seed
    }
}

/// What a lane reports when its shard finishes.
struct LaneTotals {
    class_index: usize,
    completed: u64,
    errored: u64,
    rounds: u64,
    results: Vec<InstanceResult>,
    conf: Option<LaneConf>,
}

/// A lane's running zoo-conformance fold.
#[derive(Default)]
struct LaneConf {
    instances: u64,
    clean: u64,
    worst_rank: i64,
    worst_name: Option<String>,
}

/// `true` when rank `b` is weaker than rank `a` in the committed
/// lattice ordering: larger rank is weaker, and `-1` ("nothing
/// satisfied") is weakest of all.
fn weaker(a: i64, b: i64) -> bool {
    match (a, b) {
        (-1, _) => false,
        (_, -1) => true,
        _ => b > a,
    }
}

impl LaneConf {
    fn absorb(&mut self, summary: &InstanceConformance) {
        let (rank, name) = summary
            .strongest
            .as_ref()
            .map_or((-1, None), |(n, r)| (*r as i64, Some(n.clone())));
        if self.instances == 0 || weaker(self.worst_rank, rank) {
            self.worst_rank = rank;
            self.worst_name = name;
        }
        self.instances += 1;
        if summary.violations.is_empty() {
            self.clean += 1;
        }
    }

    fn merge(&mut self, other: LaneConf) {
        if other.instances == 0 {
            return;
        }
        if self.instances == 0 {
            *self = other;
            return;
        }
        if weaker(self.worst_rank, other.worst_rank) {
            self.worst_rank = other.worst_rank;
            self.worst_name = other.worst_name;
        }
        self.instances += other.instances;
        self.clean += other.clean;
    }
}

/// Per-shard crash flight recorder: a ring of recent admission and
/// retirement notes (keyed by the shard's sweep counter) plus the dumps
/// captured when instances error.
struct ShardFlight {
    recorder: FlightRecorder,
    sweep: u32,
    dumps: Vec<String>,
    dump_cap: usize,
}

impl ShardFlight {
    fn new() -> Self {
        ShardFlight {
            recorder: FlightRecorder::new(DEFAULT_FLIGHT_ROUNDS),
            sweep: 1,
            dumps: Vec::new(),
            dump_cap: 8,
        }
    }

    fn note(&mut self, line: String) {
        self.recorder.note(self.sweep, line);
    }

    fn capture(&mut self, reason: &str) {
        if self.dumps.len() < self.dump_cap {
            self.dumps.push(self.recorder.dump(reason));
        }
    }
}

/// The type-erased face of one (shard, class) lane: the shard loop
/// admits and sweeps through this, monomorphized per class underneath.
trait Lane: Send {
    /// Admits up to `budget` queued instances into the slab; returns
    /// how many were admitted.
    fn admit(
        &mut self,
        budget: usize,
        obs: &Obs,
        shard: usize,
        flight: Option<&mut ShardFlight>,
    ) -> usize;
    /// Steps every live run one round, retiring finished ones.
    fn sweep(&mut self, obs: &Obs, shard: usize, flight: Option<&mut ShardFlight>);
    /// Live (admitted, unfinished) instances.
    fn live(&self) -> usize;
    /// Queued (not yet admitted) instances.
    fn pending(&self) -> usize;
    /// Consumes the lane into its totals.
    fn into_totals(self: Box<Self>) -> LaneTotals;
}

struct ActiveRun<C: InstanceClass> {
    id: u64,
    run: EngineRun<C::P, C::D, C::Q>,
    /// The instance's live zoo monitor, shared with the run's round
    /// hook; `None` unless [`PoolConfig::conformance`] is on.
    monitor: Option<Arc<Mutex<ConformanceMonitor>>>,
}

/// One class's instances on one shard.
struct ClassLane<C: InstanceClass> {
    class: C,
    engine: Engine,
    /// Queued instance ids, reversed so `pop()` admits in ascending
    /// order.
    queue: Vec<u64>,
    slab: Slab<ActiveRun<C>>,
    /// Retired runs' emission-table buffers, awaiting reuse.
    spares: Vec<Vec<Option<<C::P as RoundProtocol>::Msg>>>,
    spare_cap: usize,
    keep_results: bool,
    capture_traces: bool,
    conformance: bool,
    totals: LaneTotals,
}

impl<C: InstanceClass> ClassLane<C> {
    fn new(class: C, class_index: usize, ids: Vec<u64>, config: &PoolConfig) -> Self {
        let mut queue = ids;
        queue.reverse();
        let engine = Engine::new(class.system_size())
            .max_rounds(class.max_rounds())
            .obs(config.obs.clone());
        ClassLane {
            class,
            engine,
            queue,
            slab: Slab::with_capacity(config.window.min(64)),
            spares: Vec::new(),
            spare_cap: config.window,
            keep_results: config.keep_results,
            capture_traces: config.capture_traces,
            conformance: config.conformance,
            totals: LaneTotals {
                class_index,
                completed: 0,
                errored: 0,
                rounds: 0,
                results: Vec::new(),
                conf: config.conformance.then(LaneConf::default),
            },
        }
    }

    fn retire(
        &mut self,
        id: u64,
        run: EngineRun<C::P, C::D, C::Q>,
        monitor: Option<Arc<Mutex<ConformanceMonitor>>>,
        obs: &Obs,
        shard: usize,
        flight: Option<&mut ShardFlight>,
    ) {
        // Already finished: run_to_completion only dismantles.
        let finished = run.run_to_completion();
        match &finished.result {
            Ok(report) => {
                self.totals.completed += 1;
                self.totals.rounds += u64::from(report.rounds_executed);
                obs.add(names::POOL_INSTANCES, Labels::process(shard), 1);
                obs.add(
                    names::POOL_ROUNDS,
                    Labels::process(shard),
                    u64::from(report.rounds_executed),
                );
                if let Some(f) = flight {
                    f.note(format!(
                        "instance {id} ({}) decided after {} rounds",
                        self.class.name(),
                        report.rounds_executed
                    ));
                }
            }
            Err(error) => {
                self.totals.errored += 1;
                obs.add(names::POOL_ERRORS, Labels::process(shard), 1);
                if let Some(f) = flight {
                    f.note(format!(
                        "instance {id} ({}) errored: {error}",
                        self.class.name()
                    ));
                    f.capture(&format!(
                        "instance {id} ({}) errored mid-batch on shard {shard}: {error}",
                        self.class.name()
                    ));
                }
            }
        }
        let conformance = monitor.map(|monitor| {
            let mon = monitor
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            mon.record(obs);
            InstanceConformance::from_verdict(&mon.verdict())
        });
        if let (Some(conf), Some(summary)) = (self.totals.conf.as_mut(), conformance.as_ref()) {
            conf.absorb(summary);
        }
        if self.spares.len() < self.spare_cap {
            self.spares.push(finished.buffer);
        }
        if self.keep_results {
            self.totals.results.push(InstanceResult {
                instance: id,
                class: self.class.name(),
                shard,
                outcome: summarize(finished.result),
                trace: finished.trace,
                conformance,
            });
        }
    }
}

/// Builds instance `id`'s live zoo monitor and installs the round hook
/// that feeds it.
fn attach_monitor<P, D, Q>(
    run: &mut EngineRun<P, D, Q>,
    n: SystemSize,
) -> Arc<Mutex<ConformanceMonitor>>
where
    P: RoundProtocol,
    D: FaultDetector,
    Q: RrfdPredicate,
{
    let monitor = Arc::new(Mutex::new(ConformanceMonitor::zoo(n, CONF_ZOO_F)));
    let sink = Arc::clone(&monitor);
    run.set_round_hook(RoundHook::new(move |faults| {
        sink.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .observe(faults);
    }));
    monitor
}

fn summarize(result: Result<RunReport<Value>, EngineError>) -> Result<RunSummary, EngineError> {
    result.map(|report| RunSummary {
        outputs: report
            .decisions
            .iter()
            .map(|d| d.as_ref().map(|&(v, round)| (v, round.get())))
            .collect(),
        rounds_executed: report.rounds_executed,
    })
}

impl<C> Lane for ClassLane<C>
where
    C: InstanceClass + Send,
    C::P: Send,
    <C::P as RoundProtocol>::Msg: Send,
    C::D: Send,
    C::Q: Send,
{
    fn admit(
        &mut self,
        budget: usize,
        obs: &Obs,
        shard: usize,
        mut flight: Option<&mut ShardFlight>,
    ) -> usize {
        let mut admitted = 0;
        while admitted < budget {
            let Some(id) = self.queue.pop() else { break };
            let (protocols, detector, model) = self.class.build(id);
            let started = if self.capture_traces {
                // Tracing runs forgo buffer reuse: the trace is the
                // expensive part anyway, and the differential suite is
                // the only consumer.
                self.engine.start_traced(protocols, detector, model)
            } else {
                let buffer = match self.spares.pop() {
                    Some(spare) => {
                        if spare.capacity() > 0 {
                            obs.add(names::POOL_BUFFER_REUSES, Labels::process(shard), 1);
                        }
                        spare
                    }
                    None => Vec::new(),
                };
                self.engine
                    .start_with_buffer(protocols, detector, model, buffer)
            };
            match started {
                Ok(mut run) => {
                    run.set_instance(id);
                    let monitor = self
                        .conformance
                        .then(|| attach_monitor(&mut run, self.class.system_size()));
                    if let Some(f) = flight.as_deref_mut() {
                        f.note(format!("admit instance {id} ({})", self.class.name()));
                    }
                    self.slab.insert(ActiveRun { id, run, monitor });
                    admitted += 1;
                }
                Err(error) => {
                    // Unreachable (classes build exactly n protocols),
                    // but total: record the instance as errored.
                    self.totals.errored += 1;
                    obs.add(names::POOL_ERRORS, Labels::process(shard), 1);
                    if self.keep_results {
                        self.totals.results.push(InstanceResult {
                            instance: id,
                            class: self.class.name(),
                            shard,
                            outcome: Err(error),
                            trace: None,
                            conformance: None,
                        });
                    }
                }
            }
        }
        admitted
    }

    fn sweep(&mut self, obs: &Obs, shard: usize, mut flight: Option<&mut ShardFlight>) {
        let timed = obs.is_enabled();
        for key in 0..self.slab.slot_count() {
            let finished = match self.slab.get_mut(key) {
                Some(active) => {
                    let outcome = if timed {
                        let start = obs.now_ns();
                        let outcome = active.run.step();
                        obs.observe(
                            names::POOL_ROUND_LATENCY,
                            Labels::GLOBAL,
                            obs.now_ns().saturating_sub(start),
                        );
                        outcome
                    } else {
                        active.run.step()
                    };
                    matches!(outcome, EngineStep::Finished)
                }
                None => false,
            };
            if finished {
                if let Some(active) = self.slab.remove(key) {
                    self.retire(
                        active.id,
                        active.run,
                        active.monitor,
                        obs,
                        shard,
                        flight.as_deref_mut(),
                    );
                }
            }
        }
    }

    fn live(&self) -> usize {
        self.slab.live()
    }

    fn pending(&self) -> usize {
        self.queue.len()
    }

    fn into_totals(self: Box<Self>) -> LaneTotals {
        self.totals
    }
}

fn lane_for(
    spec: &ClassSpec,
    class_index: usize,
    ids: Vec<u64>,
    config: &PoolConfig,
) -> Box<dyn Lane> {
    match spec.kind {
        ClassKind::KSet => Box::new(ClassLane::new(
            KSetClass::new(*spec, config.seed),
            class_index,
            ids,
            config,
        )),
        ClassKind::FloodMin => Box::new(ClassLane::new(
            FloodMinClass::new(*spec, config.seed),
            class_index,
            ids,
            config,
        )),
        ClassKind::SConsensus => Box::new(ClassLane::new(
            SConsensusClass::new(*spec, config.seed),
            class_index,
            ids,
            config,
        )),
        ClassKind::Early => Box::new(ClassLane::new(
            EarlyClass::new(*spec, config.seed),
            class_index,
            ids,
            config,
        )),
        ClassKind::Stall => Box::new(ClassLane::new(
            StallClass::new(*spec),
            class_index,
            ids,
            config,
        )),
    }
}

/// One shard's main loop: admit into the window, sweep every lane,
/// repeat until every queued instance has been retired.
fn run_shard(
    mut lanes: Vec<Box<dyn Lane>>,
    config: &PoolConfig,
    shard: usize,
) -> (Vec<LaneTotals>, Vec<String>) {
    let obs = &config.obs;
    let mut flight = config.flight.then(ShardFlight::new);
    loop {
        let live: usize = lanes.iter().map(|l| l.live()).sum();
        let mut budget = config.window.saturating_sub(live);
        for lane in &mut lanes {
            if budget == 0 {
                break;
            }
            budget -= lane.admit(budget, obs, shard, flight.as_mut());
        }
        for lane in &mut lanes {
            lane.sweep(obs, shard, flight.as_mut());
        }
        if let Some(f) = flight.as_mut() {
            f.sweep += 1;
        }
        let drained = lanes.iter().all(|l| l.live() == 0 && l.pending() == 0);
        if drained {
            break;
        }
    }
    let dumps = flight.map_or_else(Vec::new, |f| f.dumps);
    (lanes.into_iter().map(Lane::into_totals).collect(), dumps)
}

/// Runs `instances` instances of `mix` across the configured shards.
///
/// Deterministic for a given `(mix, instances, seed)`: sharding, class
/// assignment, inputs, and adversaries are all pure functions of the
/// instance id, and per-shard results are folded in shard order.
#[must_use]
pub fn run_batch(mix: &MixSpec, instances: u64, config: &PoolConfig) -> BatchReport {
    let shards = config.shards;
    config
        .obs
        .gauge(names::POOL_SHARDS, Labels::GLOBAL, shards as i64);

    // Deterministic assignment: shard s owns ids ≡ s (mod shards); each
    // shard splits its ids into per-class queues in mix order.
    let mut shard_lanes: Vec<Vec<Box<dyn Lane>>> = Vec::with_capacity(shards);
    for s in 0..shards {
        let mut per_class: Vec<Vec<u64>> = vec![Vec::new(); mix.classes().len()];
        let mut id = s as u64;
        while id < instances {
            per_class[mix.class_of(id)].push(id);
            id += shards as u64;
        }
        let lanes = mix
            .classes()
            .iter()
            .enumerate()
            .zip(per_class)
            .filter(|(_, ids)| !ids.is_empty())
            .map(|((index, spec), ids)| lane_for(spec, index, ids, config))
            .collect();
        shard_lanes.push(lanes);
    }

    let shard_outputs: Vec<(Vec<LaneTotals>, Vec<String>)> = if shards <= 1 {
        shard_lanes
            .into_iter()
            .map(|lanes| run_shard(lanes, config, 0))
            .collect()
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = shard_lanes
                .into_iter()
                .enumerate()
                .map(|(shard, lanes)| scope.spawn(move || run_shard(lanes, config, shard)))
                .collect();
            // Drain every shard before re-raising a panic (same
            // containment the parallel explorer uses): no shard thread
            // may outlive the unwind.
            let mut collected = Vec::with_capacity(shards);
            let mut first_panic = None;
            for handle in handles {
                match handle.join() {
                    Ok(output) => collected.push(output),
                    Err(payload) => {
                        if first_panic.is_none() {
                            first_panic = Some(payload);
                        }
                    }
                }
            }
            if let Some(payload) = first_panic {
                std::panic::resume_unwind(payload);
            }
            collected
        })
    };

    let mut totals = Vec::with_capacity(shard_outputs.len());
    let mut flight_dumps = Vec::new();
    for (shard_totals, dumps) in shard_outputs {
        totals.push(shard_totals);
        flight_dumps.extend(dumps);
    }
    fold_report(mix, instances, shards, totals, flight_dumps)
}

/// The naive baseline the batch pool is measured against: one fresh
/// [`Engine::run`] (or [`Engine::run_traced`]) per instance, in
/// instance order, single-threaded, no buffer reuse. Decision- and
/// trace-identical to [`run_batch`] over the same `(mix, instances,
/// seed)` — the differential suite pins this.
#[must_use]
pub fn run_sequential(mix: &MixSpec, instances: u64, config: &PoolConfig) -> BatchReport {
    let mut totals: Vec<LaneTotals> = mix
        .classes()
        .iter()
        .enumerate()
        .map(|(class_index, _)| LaneTotals {
            class_index,
            completed: 0,
            errored: 0,
            rounds: 0,
            results: Vec::new(),
            conf: config.conformance.then(LaneConf::default),
        })
        .collect();
    for id in 0..instances {
        let index = mix.class_of(id);
        let Some(spec) = mix.classes().get(index) else {
            continue;
        };
        let result = match spec.kind {
            ClassKind::KSet => run_one(&KSetClass::new(*spec, config.seed), id, config),
            ClassKind::FloodMin => run_one(&FloodMinClass::new(*spec, config.seed), id, config),
            ClassKind::SConsensus => run_one(&SConsensusClass::new(*spec, config.seed), id, config),
            ClassKind::Early => run_one(&EarlyClass::new(*spec, config.seed), id, config),
            ClassKind::Stall => run_one(&StallClass::new(*spec), id, config),
        };
        let lane = &mut totals[index];
        match &result.outcome {
            Ok(summary) => {
                lane.completed += 1;
                lane.rounds += u64::from(summary.rounds_executed);
            }
            Err(_) => lane.errored += 1,
        }
        if let (Some(conf), Some(summary)) = (lane.conf.as_mut(), result.conformance.as_ref()) {
            conf.absorb(summary);
        }
        if config.keep_results {
            lane.results.push(result);
        }
    }
    fold_report(mix, instances, 1, vec![totals], Vec::new())
}

/// Runs a single instance of `class` to completion the naive way.
fn run_one<C: InstanceClass>(class: &C, id: u64, config: &PoolConfig) -> InstanceResult {
    let engine = Engine::new(class.system_size())
        .max_rounds(class.max_rounds())
        .obs(config.obs.clone());
    let (protocols, detector, model) = class.build(id);
    // `start`/`start_traced` rather than `run`/`run_traced`: the
    // resumable handle exposes the instance-id and round-hook seams,
    // and a started run stepped to completion is decision- and
    // trace-identical to a `run` call (the engine's contract).
    let started = if config.capture_traces {
        engine.start_traced(protocols, detector, model)
    } else {
        engine.start(protocols, detector, model)
    };
    let mut run = match started {
        Ok(run) => run,
        Err(error) => {
            return InstanceResult {
                instance: id,
                class: class.name(),
                shard: 0,
                outcome: Err(error),
                trace: None,
                conformance: None,
            }
        }
    };
    run.set_instance(id);
    let monitor = config
        .conformance
        .then(|| attach_monitor(&mut run, class.system_size()));
    let finished = run.run_to_completion();
    let conformance = monitor.map(|monitor| {
        let mon = monitor
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        mon.record(&config.obs);
        InstanceConformance::from_verdict(&mon.verdict())
    });
    InstanceResult {
        instance: id,
        class: class.name(),
        shard: 0,
        outcome: summarize(finished.result),
        trace: finished.trace,
        conformance,
    }
}

fn fold_report(
    mix: &MixSpec,
    instances: u64,
    shards: usize,
    totals: Vec<Vec<LaneTotals>>,
    flight_dumps: Vec<String>,
) -> BatchReport {
    let mut classes: Vec<ClassTotals> = mix
        .classes()
        .iter()
        .map(|spec| ClassTotals {
            class: spec.to_string(),
            ..ClassTotals::default()
        })
        .collect();
    let mut conf_acc: Vec<Option<LaneConf>> = (0..mix.classes().len()).map(|_| None).collect();
    let mut results = Vec::new();
    let mut completed = 0u64;
    let mut errored = 0u64;
    let mut rounds = 0u64;
    for lane in totals.into_iter().flatten() {
        completed += lane.completed;
        errored += lane.errored;
        rounds += lane.rounds;
        if let Some(class) = classes.get_mut(lane.class_index) {
            class.completed += lane.completed;
            class.errored += lane.errored;
            class.rounds += lane.rounds;
        }
        if let Some(lane_conf) = lane.conf {
            match &mut conf_acc[lane.class_index] {
                Some(acc) => acc.merge(lane_conf),
                slot => *slot = Some(lane_conf),
            }
        }
        results.extend(lane.results);
    }
    results.sort_by_key(|r| r.instance);
    let conformance = conf_acc
        .into_iter()
        .enumerate()
        .filter_map(|(index, conf)| {
            let conf = conf?;
            (conf.instances > 0).then(|| ClassConformance {
                class: mix.classes()[index].to_string(),
                instances: conf.instances,
                clean: conf.clean,
                worst_rank: conf.worst_rank,
                worst_name: conf.worst_name,
            })
        })
        .collect();
    BatchReport {
        instances,
        completed,
        errored,
        rounds,
        shards,
        classes,
        results,
        conformance,
        flight_dumps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix() -> MixSpec {
        MixSpec::default_mix()
    }

    #[test]
    fn batch_accounts_for_every_instance() {
        let report = run_batch(&mix(), 90, &PoolConfig::new(3));
        assert_eq!(report.instances, 90);
        assert_eq!(report.completed + report.errored, 90);
        // The default mix gives `stall` 1 of 9 weight shares; every
        // stall instance errors (round limit), nothing else does.
        assert_eq!(report.errored, 10);
        let per_class: u64 = report.classes.iter().map(|c| c.completed + c.errored).sum();
        assert_eq!(per_class, 90);
        assert!(report.rounds > 0);
    }

    #[test]
    fn batch_is_deterministic_across_shard_counts() {
        let config1 = PoolConfig::new(1).keep_results(true).seed(42);
        let config4 = PoolConfig::new(4).keep_results(true).seed(42);
        let one = run_batch(&mix(), 45, &config1);
        let four = run_batch(&mix(), 45, &config4);
        assert_eq!(one.completed, four.completed);
        assert_eq!(one.errored, four.errored);
        assert_eq!(one.rounds, four.rounds);
        assert_eq!(one.classes, four.classes);
        // Results align instance-for-instance once shard is masked.
        assert_eq!(one.results.len(), four.results.len());
        for (a, b) in one.results.iter().zip(&four.results) {
            assert_eq!(a.instance, b.instance);
            assert_eq!(a.outcome, b.outcome);
        }
    }

    #[test]
    fn failing_instances_do_not_poison_their_shard() {
        // A mix that is 1/2 stall: every shard interleaves failures
        // with successes and still retires everything.
        let mix = MixSpec::parse("stall:n=3:rounds=2:w=1,kset:n=4:k=1:w=1").unwrap();
        let report = run_batch(&mix, 40, &PoolConfig::new(2).window(4));
        assert_eq!(report.completed, 20);
        assert_eq!(report.errored, 20);
    }

    #[test]
    fn pool_metrics_are_recorded() {
        let obs = Obs::logical();
        // A small window with deep per-class queues forces admission to
        // interleave with retirement, so retired runs' emission buffers
        // actually get recycled.
        let config = PoolConfig::new(2).window(2).obs(obs.clone());
        let report = run_batch(&mix(), 72, &config);
        let snap = obs.snapshot();
        assert_eq!(snap.counter_total(names::POOL_INSTANCES), report.completed);
        assert_eq!(snap.counter_total(names::POOL_ERRORS), report.errored);
        assert_eq!(snap.counter_total(names::POOL_ROUNDS), report.rounds);
        assert!(snap.counter_total(names::POOL_BUFFER_REUSES) > 0);
        let latency = snap.get(names::POOL_ROUND_LATENCY, Labels::GLOBAL);
        assert!(latency.is_some(), "per-step latency histogram missing");
    }

    #[test]
    fn window_of_one_still_drains() {
        let report = run_batch(&mix(), 9, &PoolConfig::new(1).window(1));
        assert_eq!(report.completed + report.errored, 9);
    }

    #[test]
    fn sequential_baseline_matches_batch_totals() {
        let config = PoolConfig::new(3).seed(7);
        let batch = run_batch(&mix(), 36, &config);
        let seq = run_sequential(&mix(), 36, &PoolConfig::new(1).seed(7));
        assert_eq!(batch.completed, seq.completed);
        assert_eq!(batch.errored, seq.errored);
        assert_eq!(batch.rounds, seq.rounds);
        assert_eq!(batch.classes, seq.classes);
    }

    #[test]
    fn conformance_verdicts_fold_and_agree_with_the_baseline() {
        let batch_config = PoolConfig::new(3)
            .seed(11)
            .conformance(true)
            .keep_results(true);
        let seq_config = PoolConfig::new(1)
            .seed(11)
            .conformance(true)
            .keep_results(true);
        let batch = run_batch(&mix(), 36, &batch_config);
        let seq = run_sequential(&mix(), 36, &seq_config);

        assert!(!batch.conformance.is_empty());
        // Deterministic sharding ⇒ the folded verdicts agree exactly.
        assert_eq!(batch.conformance, seq.conformance);
        let monitored: u64 = batch.conformance.iter().map(|c| c.instances).sum();
        assert_eq!(monitored, 36);
        for class in &batch.conformance {
            assert!(class.clean <= class.instances);
            assert!(class.worst_rank >= -1);
        }
        // Per-instance verdicts agree too.
        for (a, b) in batch.results.iter().zip(&seq.results) {
            assert_eq!(a.instance, b.instance);
            assert_eq!(a.conformance, b.conformance, "instance {}", a.instance);
            assert!(a.conformance.is_some());
        }
    }

    #[test]
    fn erroring_instances_leave_flight_dumps() {
        // Every stall instance errors, so the armed flight recorder
        // must capture at least one dump per shard that saw one.
        let mix = MixSpec::parse("stall:n=3:rounds=2:w=1,kset:n=4:k=1:w=1").unwrap();
        let report = run_batch(&mix, 20, &PoolConfig::new(2).window(4).flight(true));
        assert!(report.errored > 0);
        assert!(!report.flight_dumps.is_empty());
        for dump in &report.flight_dumps {
            assert!(dump.starts_with("rrfd-flight v1\n"), "{dump}");
            assert!(dump.contains("errored mid-batch on shard"), "{dump}");
        }
        // Unarmed runs carry none.
        let quiet = run_batch(&mix, 20, &PoolConfig::new(2).window(4));
        assert!(quiet.flight_dumps.is_empty());
    }

    #[test]
    fn pool_spans_are_stamped_with_instance_ids() {
        let obs = Obs::logical();
        let config = PoolConfig::new(2).obs(obs.clone());
        let _ = run_batch(&mix(), 9, &config);
        let spans = obs.spans();
        assert!(!spans.is_empty());
        let mut instances: Vec<u64> = spans.iter().map(|s| s.instance).collect();
        instances.sort_unstable();
        instances.dedup();
        assert_eq!(instances, (0..9).collect::<Vec<u64>>());
        // Every instance's tree has exactly one run-span root.
        for id in 0..9u64 {
            let runs = spans
                .iter()
                .filter(|s| s.instance == id && s.kind == rrfd_obs::SpanKind::Run)
                .count();
            assert_eq!(runs, 1, "instance {id}");
        }
    }
}
