//! Multi-tenant batch execution for RRFD protocol instances.
//!
//! The paper (and the rest of the workspace) takes *one run of one
//! protocol under one predicate* as the unit of analysis. A
//! production-shaped system runs **many** such instances concurrently —
//! different protocols, different system sizes, different adversaries,
//! some of them failing — and its service-level quantities are
//! throughput (instances/sec) and tail round latency, not single-run
//! speed. This crate is that throughput axis:
//!
//! * [`mix`] — weighted specifications of the tenant population
//!   ([`MixSpec`]), parsed from compact spec strings, and the concrete
//!   protocol/model/adversary classes they denote.
//! * [`slab`] — the per-shard arena ([`Slab`]) holding live runs
//!   cache-local with slot reuse.
//! * [`pool`] — the sharded pool itself: [`run_batch`] multiplexes
//!   instances over worker threads by stepping resumable
//!   [`rrfd_core::EngineRun`]s one round at a time, recycling emission
//!   buffers across instance turnover; [`run_sequential`] is the naive
//!   one-`Engine::run`-per-instance baseline it is measured (and
//!   differentially tested) against.
//!
//! Everything is deterministic in `(mix, instances, seed)`: instance →
//! shard and instance → class assignments are pure functions of the
//! instance id, so the pool and the baseline build identical instances
//! without coordination, and a batch's decisions are reproducible at
//! any shard count. The `rrfd-bench` crate's `serve` binary exposes
//! this as a CLI and feeds the `throughput` section of BENCH_rrfd.json.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mix;
pub mod pool;
pub mod slab;

pub use mix::{ClassKind, ClassSpec, MixError, MixSpec, Stall};
pub use pool::{
    run_batch, run_sequential, BatchReport, ClassConformance, ClassTotals, InstanceClass,
    InstanceConformance, InstanceResult, PoolConfig, RunSummary, DEFAULT_WINDOW,
};
pub use slab::Slab;
