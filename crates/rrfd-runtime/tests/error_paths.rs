//! Error-path coverage for the threaded runtime: a worker that dies
//! mid-run must surface as a typed error — with its panic payload when one
//! exists — instead of hanging the coordinator.

use rrfd_core::{AnyPattern, Control, Delivery, ProcessId, Round, RoundProtocol, SystemSize};
use rrfd_models::adversary::NoFailures;
use rrfd_runtime::{ThreadedEngine, ThreadedError};
use std::time::Duration;

fn n(v: usize) -> SystemSize {
    SystemSize::new(v).unwrap()
}

/// Panics inside `emit` once the given round is reached (for one chosen
/// process). Dying in `emit` means the coordinator never gets the round's
/// emission and must detect the death via its gather timeout, unlike a
/// panic in `deliver` which the next gather notices naturally.
struct DiesEmitting {
    me: u64,
    victim: bool,
    at_round: u32,
}

impl RoundProtocol for DiesEmitting {
    type Msg = u64;
    type Output = u64;
    fn emit(&mut self, r: Round) -> u64 {
        if self.victim && r.get() >= self.at_round {
            panic!("emit exploded at round {}", r.get());
        }
        self.me
    }
    fn deliver(&mut self, d: Delivery<'_, u64>) -> Control<u64> {
        if d.round.get() >= 10 {
            Control::Decide(self.me)
        } else {
            Control::Continue
        }
    }
}

#[test]
fn gather_timeout_turns_a_dead_worker_into_a_typed_error() {
    let size = n(3);
    let protos: Vec<_> = (0..3)
        .map(|i| DiesEmitting {
            me: i,
            victim: i == 2,
            at_round: 2,
        })
        .collect();
    let err = ThreadedEngine::new(size)
        .gather_timeout(Duration::from_millis(200))
        .run(protos, &mut NoFailures::new(size), &AnyPattern::new(size))
        .unwrap_err();
    match err {
        ThreadedError::ProcessPanicked { process, message } => {
            assert_eq!(process, ProcessId::new(2));
            assert!(message.contains("emit exploded at round 2"), "{message}");
        }
        other => panic!("expected ProcessPanicked, got {other}"),
    }
}

/// Panics with a non-string payload; the join-time recovery can only
/// report a placeholder message.
struct PanicsWithValue;

impl RoundProtocol for PanicsWithValue {
    type Msg = ();
    type Output = ();
    fn emit(&mut self, _r: Round) {}
    fn deliver(&mut self, d: Delivery<'_, ()>) -> Control<()> {
        if d.me == ProcessId::new(0) {
            std::panic::panic_any(42u32);
        }
        Control::Continue
    }
}

#[test]
fn non_string_panic_payloads_get_a_placeholder_message() {
    let size = n(2);
    let err = ThreadedEngine::new(size)
        .gather_timeout(Duration::from_millis(200))
        .max_rounds(5)
        .run(
            vec![PanicsWithValue, PanicsWithValue],
            &mut NoFailures::new(size),
            &AnyPattern::new(size),
        )
        .unwrap_err();
    match err {
        ThreadedError::ProcessPanicked { process, message } => {
            assert_eq!(process, ProcessId::new(0));
            assert_eq!(message, "non-string panic payload");
        }
        other => panic!("expected ProcessPanicked, got {other}"),
    }
}

#[test]
fn wrong_process_count_is_rejected_up_front() {
    let size = n(3);
    let err = ThreadedEngine::new(size)
        .run(
            vec![PanicsWithValue],
            &mut NoFailures::new(size),
            &AnyPattern::new(size),
        )
        .unwrap_err();
    assert!(matches!(
        err,
        ThreadedError::WrongProcessCount {
            supplied: 1,
            expected: 3
        }
    ));
}
