//! A threaded execution harness: the paper's abstract emit/receive loop on
//! real OS threads, with the round-by-round fault detector realised as a
//! coordinator service.
//!
//! Each process runs on its own thread and speaks only to the coordinator:
//! it emits its round message, then blocks until the coordinator answers
//! with the round's delivery — the messages of every unsuspected peer plus
//! the suspicion set `D(i,r)`. The coordinator gathers the `n` emissions,
//! asks the [`FaultDetector`] for the round's suspicion sets, validates
//! them against the model predicate (exactly like the in-process
//! [`rrfd_core::Engine`]), and replies. The harness exists to demonstrate
//! that RRFD systems are *executable* designs, not just proof devices —
//! experiment E13 runs Theorem 3.1 end to end on threads.

use crossbeam::channel::{self, Receiver, Sender};
use rrfd_core::{validate_round, FaultDetector};
use rrfd_core::{
    Control, Delivery, FaultPattern, IdSet, PatternViolation, ProcessId, Round, RoundProtocol,
    RrfdPredicate, RunTrace, SystemSize, TraceBuilder, TraceOutcome,
};
use std::fmt;
use std::thread;
use std::time::Duration;

use crate::clock::RoundClock;
use crate::sink::{EventSink, RtSink};
use rrfd_core::{Actor, RtEventKind};
use rrfd_models::conformance::ConformanceMonitor;
use rrfd_obs::{names, FlightRecorder, Labels, Obs, SpanKind, SpanPhase, DEFAULT_FLIGHT_ROUNDS};
use std::sync::{Arc, Mutex};

/// Channel pair used between the coordinator and process threads.
type EmissionChannel<M, O> = (Sender<Emission<M, O>>, Receiver<Emission<M, O>>);
type ReplyChannel<M> = (Sender<CoordReply<M>>, Receiver<CoordReply<M>>);

/// What a process thread sends the coordinator each round.
struct Emission<M, O> {
    from: ProcessId,
    round: Round,
    msg: M,
    /// Decision reached while processing the *previous* round's delivery.
    decided: Option<O>,
}

/// What the coordinator sends a process thread.
enum CoordReply<M> {
    Delivery {
        round: Round,
        /// The round's emission table, shared by every recipient: the
        /// coordinator allocates it once per round and sends `n` reference
        /// counts instead of `n` cloned vectors. Workers read it through a
        /// [`Delivery`] view that masks their suspected senders.
        table: Arc<Vec<Option<M>>>,
        suspected: IdSet,
    },
    Stop,
}

/// Errors from [`ThreadedEngine::run`].
#[derive(Debug)]
pub enum ThreadedError {
    /// The adversary violated the model predicate (or well-formedness).
    Violation(PatternViolation),
    /// The protocol vector does not match the system size.
    WrongProcessCount {
        /// Instances supplied.
        supplied: usize,
        /// System size.
        expected: usize,
    },
    /// The round budget elapsed before every process decided.
    RoundLimitExceeded {
        /// The configured limit.
        max_rounds: u32,
    },
    /// A process thread disconnected unexpectedly with no panic payload
    /// recovered from its join handle.
    ProcessDied {
        /// The dead process.
        process: ProcessId,
    },
    /// A process thread panicked; the payload was captured at join time.
    ProcessPanicked {
        /// The panicking process.
        process: ProcessId,
        /// The panic message (or a placeholder for non-string payloads).
        message: String,
    },
    /// Every emission sender disconnected at once with no identifiable
    /// missing process — the coordinator's channel is simply gone.
    ChannelClosed,
}

/// The error type of threaded runs; alias of [`ThreadedError`] for callers
/// that speak in terms of "run errors".
pub type RunError = ThreadedError;

impl fmt::Display for ThreadedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThreadedError::Violation(v) => write!(f, "adversary violation: {v}"),
            ThreadedError::WrongProcessCount { supplied, expected } => {
                write!(f, "{supplied} protocols for a system of {expected}")
            }
            ThreadedError::RoundLimitExceeded { max_rounds } => {
                write!(f, "no full decision after {max_rounds} rounds")
            }
            ThreadedError::ProcessDied { process } => {
                write!(f, "thread of {process} terminated unexpectedly")
            }
            ThreadedError::ProcessPanicked { process, message } => {
                write!(f, "thread of {process} panicked: {message}")
            }
            ThreadedError::ChannelClosed => {
                write!(
                    f,
                    "emission channel closed with no identifiable dead process"
                )
            }
        }
    }
}

impl std::error::Error for ThreadedError {}

impl From<PatternViolation> for ThreadedError {
    fn from(v: PatternViolation) -> Self {
        ThreadedError::Violation(v)
    }
}

/// Outcome of a threaded run.
#[derive(Debug, Clone)]
pub struct ThreadedReport<O> {
    /// `decisions[i]` is `Some((value, round))` once `p_i` decided.
    pub decisions: Vec<Option<(O, Round)>>,
    /// The recorded fault pattern.
    pub pattern: FaultPattern,
    /// Rounds executed.
    pub rounds_executed: u32,
}

impl<O: Clone> ThreadedReport<O> {
    /// The decision values, by process.
    #[must_use]
    pub fn outputs(&self) -> Vec<Option<O>> {
        self.decisions
            .iter()
            .map(|d| d.as_ref().map(|(v, _)| v.clone()))
            .collect()
    }
}

/// Reattributes channel-level failure symptoms to their panic causes.
///
/// The coordinator can only observe the *symptom* of a worker panic — a
/// missing emission ([`ThreadedError::ProcessDied`]) or, in principle, every
/// sender vanishing at once ([`ThreadedError::ChannelClosed`]). After
/// joining the threads, `panics[i]` holds the panic message recovered from
/// `p_i`'s join handle, and this function upgrades the symptom to a
/// [`ThreadedError::ProcessPanicked`] cause where one is available. A
/// symptom with no recovered payload passes through unchanged, as do
/// successes and every other error.
fn attribute_panics<T>(
    result: Result<T, ThreadedError>,
    panics: &mut [Option<String>],
) -> Result<T, ThreadedError> {
    match result {
        Err(ThreadedError::ProcessDied { process }) => match panics[process.index()].take() {
            Some(message) => Err(ThreadedError::ProcessPanicked { process, message }),
            None => Err(ThreadedError::ProcessDied { process }),
        },
        Err(ThreadedError::ChannelClosed) => {
            match panics
                .iter_mut()
                .enumerate()
                .find_map(|(i, p)| p.take().map(|m| (ProcessId::new(i), m)))
            {
                Some((process, message)) => {
                    Err(ThreadedError::ProcessPanicked { process, message })
                }
                None => Err(ThreadedError::ChannelClosed),
            }
        }
        other => other,
    }
}

/// Default for how long the coordinator waits for a round's emissions
/// before declaring a process dead. Generous: in a healthy run every
/// thread answers in microseconds; the timeout exists only to turn a dead
/// or wedged thread into a typed error instead of a deadlock. Override
/// with [`ThreadedEngine::gather_timeout`].
const DEFAULT_GATHER_TIMEOUT: Duration = Duration::from_secs(5);

/// The threaded engine: one OS thread per process plus the caller's thread
/// as coordinator.
///
/// # Examples
///
/// ```
/// use rrfd_core::{Control, Delivery, Round, RoundProtocol, SystemSize};
/// use rrfd_models::adversary::NoFailures;
/// use rrfd_core::AnyPattern;
/// use rrfd_runtime::ThreadedEngine;
///
/// struct Once;
/// impl RoundProtocol for Once {
///     type Msg = u32;
///     type Output = u32;
///     fn emit(&mut self, _r: Round) -> u32 { 7 }
///     fn deliver(&mut self, d: Delivery<'_, u32>) -> Control<u32> {
///         Control::Decide(d.values().sum())
///     }
/// }
///
/// let n = SystemSize::new(4).unwrap();
/// let report = ThreadedEngine::new(n)
///     .run(vec![Once, Once, Once, Once], &mut NoFailures::new(n), &AnyPattern::new(n))
///     .unwrap();
/// assert_eq!(report.outputs(), vec![Some(28); 4]);
/// ```
#[derive(Debug, Clone)]
pub struct ThreadedEngine {
    n: SystemSize,
    max_rounds: u32,
    gather_timeout: Duration,
    clock: RoundClock,
    sink: Option<Arc<dyn RtSink>>,
    obs: Obs,
    instance: u64,
    flight_rounds: u32,
    flight_dump: Arc<Mutex<Option<String>>>,
    conformance: Option<Arc<Mutex<ConformanceMonitor>>>,
}

impl ThreadedEngine {
    /// Creates an engine for `n` processes.
    #[must_use]
    pub fn new(n: SystemSize) -> Self {
        ThreadedEngine {
            n,
            max_rounds: 100_000,
            gather_timeout: DEFAULT_GATHER_TIMEOUT,
            clock: RoundClock::new(),
            sink: None,
            obs: Obs::noop(),
            instance: 0,
            flight_rounds: DEFAULT_FLIGHT_ROUNDS as u32,
            flight_dump: Arc::new(Mutex::new(None)),
            conformance: None,
        }
    }

    /// Overrides the round budget.
    #[must_use]
    pub fn max_rounds(mut self, max_rounds: u32) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Overrides how long the coordinator waits for a round's emissions
    /// before declaring the missing process dead. Tests that deliberately
    /// kill a worker mid-round lower this so the typed error surfaces
    /// quickly instead of after the generous default.
    #[must_use]
    pub fn gather_timeout(mut self, timeout: Duration) -> Self {
        self.gather_timeout = timeout;
        self
    }

    /// Installs an [`EventSink`]: the coordinator and every process thread
    /// record their channel operations and shared-state accesses into it as
    /// the run executes, for the happens-before analysis in
    /// `rrfd-analyze races`. Convenience for [`ThreadedEngine::sink`]; to
    /// capture events *and* metrics at once, install a
    /// [`crate::TeeSink`] instead.
    #[must_use]
    pub fn event_sink(self, sink: EventSink) -> Self {
        self.sink(Arc::new(sink))
    }

    /// Installs any [`RtSink`]: every runtime event of the run flows into
    /// it. Use [`crate::TeeSink`] to fan out to several consumers (e.g. an
    /// [`EventSink`] for race analysis plus a [`crate::MetricsSink`]).
    #[must_use]
    pub fn sink(mut self, sink: Arc<dyn RtSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Attaches an observability handle. The coordinator then records
    /// per-round wall latency, gather timeouts, and terminal error
    /// counters under the `rrfd_runtime_*` names. This is independent of
    /// [`ThreadedEngine::sink`]: the sink sees discrete events, the
    /// handle aggregates timings the events cannot carry.
    #[must_use]
    pub fn obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Sets the instance id stamped on this engine's causal spans (see
    /// `rrfd_core::Engine::instance`). Defaults to 0.
    #[must_use]
    pub fn instance(mut self, instance: u64) -> Self {
        self.instance = instance;
        self
    }

    /// Overrides how many recent rounds the crash flight recorder retains
    /// (default [`DEFAULT_FLIGHT_ROUNDS`]). `0` disables the recorder
    /// entirely — no per-round notes are formatted.
    ///
    /// The flight recorder is always on otherwise: when a run ends in any
    /// [`RunError`], a post-mortem capture of the last K rounds (gathers,
    /// suspicion sets, deliveries, decisions) is stashed for
    /// [`ThreadedEngine::take_flight_dump`].
    #[must_use]
    pub fn flight_rounds(mut self, rounds: u32) -> Self {
        self.flight_rounds = rounds;
        self
    }

    /// Attaches a live conformance monitor: the coordinator feeds it every
    /// validated round's suspicion sets (and, on the violation path, the
    /// violating round — the evidence), so the zoo verdict is available
    /// the moment the run ends. Call
    /// [`ConformanceMonitor::record`] afterwards to
    /// export the verdict as `rrfd_conformance_*` metrics.
    #[must_use]
    pub fn conformance(mut self, monitor: Arc<Mutex<ConformanceMonitor>>) -> Self {
        self.conformance = Some(monitor);
        self
    }

    /// Takes the post-mortem flight dump left by the most recent failed
    /// run, if any. Runs that succeed leave nothing; a second take returns
    /// `None` until another run fails.
    #[must_use]
    pub fn take_flight_dump(&self) -> Option<String> {
        self.flight_dump
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
    }

    /// Records one coordinator-side event, if a sink is installed.
    fn record(&self, kind: RtEventKind) {
        if let Some(sink) = &self.sink {
            sink.record(Actor::Coordinator, kind);
        }
    }

    /// Stashes the flight recorder's post-mortem capture for
    /// [`ThreadedEngine::take_flight_dump`], keyed by the terminal error.
    fn stash_flight(&self, flight: &FlightRecorder, error: &ThreadedError) {
        if self.flight_rounds == 0 {
            return;
        }
        *self
            .flight_dump
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) =
            Some(flight.dump(&error.to_string()));
    }

    /// Feeds one round's suspicion sets to the attached conformance
    /// monitor, if any.
    fn observe_conformance(&self, faults: &rrfd_core::RoundFaults) {
        if let Some(monitor) = &self.conformance {
            monitor
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .observe(faults);
        }
    }

    /// Counts a terminal error under its `rrfd_runtime_errors_*` name.
    fn record_error(&self, error: &ThreadedError) {
        if !self.obs.is_enabled() {
            return;
        }
        let (metric, labels) = match error {
            ThreadedError::Violation(_) => (names::RUNTIME_ERR_VIOLATION, Labels::GLOBAL),
            ThreadedError::WrongProcessCount { .. } => {
                (names::RUNTIME_ERR_WRONG_COUNT, Labels::GLOBAL)
            }
            ThreadedError::RoundLimitExceeded { .. } => {
                (names::RUNTIME_ERR_ROUND_LIMIT, Labels::GLOBAL)
            }
            ThreadedError::ProcessDied { process } => (
                names::RUNTIME_ERR_PROCESS_DIED,
                Labels::process(process.index()),
            ),
            ThreadedError::ProcessPanicked { process, .. } => (
                names::RUNTIME_ERR_PROCESS_PANICKED,
                Labels::process(process.index()),
            ),
            ThreadedError::ChannelClosed => (names::RUNTIME_ERR_CHANNEL_CLOSED, Labels::GLOBAL),
        };
        self.obs.add(metric, labels, 1);
    }

    /// A clock observers can use to watch the run's progress from other
    /// threads.
    #[must_use]
    pub fn clock(&self) -> RoundClock {
        self.clock.clone()
    }

    /// Runs the protocols on threads, coordinated by the calling thread.
    ///
    /// # Errors
    ///
    /// See [`ThreadedError`].
    pub fn run<P, D, Q>(
        &self,
        protocols: Vec<P>,
        detector: &mut D,
        model: &Q,
    ) -> Result<ThreadedReport<P::Output>, ThreadedError>
    where
        P: RoundProtocol + Send + 'static,
        P::Msg: Send + Sync + 'static,
        P::Output: Send + Clone + 'static,
        D: FaultDetector + ?Sized,
        Q: RrfdPredicate + ?Sized,
    {
        self.run_inner(protocols, detector, model, None).0
    }

    /// Like [`ThreadedEngine::run`], but also records a [`RunTrace`]: the
    /// same capture format as the in-process engine, so a threaded run can
    /// be replayed (bit-for-bit, via a replay detector) on either substrate.
    pub fn run_traced<P, D, Q>(
        &self,
        protocols: Vec<P>,
        detector: &mut D,
        model: &Q,
    ) -> (Result<ThreadedReport<P::Output>, ThreadedError>, RunTrace)
    where
        P: RoundProtocol + Send + 'static,
        P::Msg: Send + Sync + 'static,
        P::Output: Send + Clone + 'static,
        D: FaultDetector + ?Sized,
        Q: RrfdPredicate + ?Sized,
    {
        let mut trace = TraceBuilder::new(self.n);
        let (result, outcome) = self.run_inner(protocols, detector, model, Some(&mut trace));
        (result, trace.finish(outcome))
    }

    /// The shared run body. With `trace` absent ([`ThreadedEngine::run`])
    /// the coordinator skips all trace bookkeeping — no heard-set vectors,
    /// no per-round fault clones.
    fn run_inner<P, D, Q>(
        &self,
        protocols: Vec<P>,
        detector: &mut D,
        model: &Q,
        trace: Option<&mut TraceBuilder>,
    ) -> (
        Result<ThreadedReport<P::Output>, ThreadedError>,
        TraceOutcome,
    )
    where
        P: RoundProtocol + Send + 'static,
        P::Msg: Send + Sync + 'static,
        P::Output: Send + Clone + 'static,
        D: FaultDetector + ?Sized,
        Q: RrfdPredicate + ?Sized,
    {
        let mut flight = FlightRecorder::new(self.flight_rounds as usize);
        let run_start_ns = self.obs.now_ns();
        let n = self.n.get();
        if protocols.len() != n {
            let error = ThreadedError::WrongProcessCount {
                supplied: protocols.len(),
                expected: n,
            };
            self.record_error(&error);
            self.stash_flight(&flight, &error);
            return (Err(error), TraceOutcome::Aborted);
        }

        let (emit_tx, emit_rx): EmissionChannel<P::Msg, P::Output> = channel::unbounded();

        let mut reply_txs = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for (i, mut protocol) in protocols.into_iter().enumerate() {
            let me = ProcessId::new(i);
            let emit_tx = emit_tx.clone();
            let (reply_tx, reply_rx): ReplyChannel<P::Msg> = channel::unbounded();
            reply_txs.push(reply_tx);
            let sink = self.sink.clone();
            handles.push(thread::spawn(move || {
                let mut decided: Option<P::Output> = None;
                let mut round = Round::FIRST;
                loop {
                    let msg = protocol.emit(round);
                    if let Some(sink) = &sink {
                        sink.record(Actor::Process(me), RtEventKind::Emit { round });
                    }
                    if emit_tx
                        .send(Emission {
                            from: me,
                            round,
                            msg,
                            decided: decided.take(),
                        })
                        .is_err()
                    {
                        return; // coordinator gone
                    }
                    match reply_rx.recv() {
                        Ok(CoordReply::Delivery {
                            round: r,
                            table,
                            suspected,
                        }) => {
                            debug_assert_eq!(r, round);
                            if let Some(sink) = &sink {
                                sink.record(Actor::Process(me), RtEventKind::Receive { round: r });
                            }
                            if let Control::Decide(v) =
                                protocol.deliver(Delivery::new(r, me, &table, suspected))
                            {
                                if let Some(sink) = &sink {
                                    sink.record(
                                        Actor::Process(me),
                                        RtEventKind::Decide { round: r },
                                    );
                                }
                                decided = Some(v);
                            }
                            round = round.next();
                        }
                        Ok(CoordReply::Stop) | Err(_) => return,
                    }
                }
            }));
        }
        drop(emit_tx);

        let (result, outcome) =
            self.coordinate::<P>(&emit_rx, &reply_txs, detector, model, trace, &mut flight);

        // Stop every thread (ignore send failures: thread may be gone).
        for tx in &reply_txs {
            let _ = tx.send(CoordReply::Stop);
        }
        // Joining surfaces panic payloads instead of swallowing them: a
        // thread that died from a panic turns the channel-level symptom
        // (ProcessDied / ChannelClosed) into a ProcessPanicked cause.
        let mut panics: Vec<Option<String>> = (0..n).map(|_| None).collect();
        for (i, handle) in handles.into_iter().enumerate() {
            if let Err(payload) = handle.join() {
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_owned());
                panics[i] = Some(message);
            }
        }
        let result = attribute_panics(result, &mut panics);
        if let Err(error) = &result {
            self.record_error(error);
            // The post-mortem capture is stashed *after* panic
            // attribution so the dump header names the cause
            // (ProcessPanicked), not the channel-level symptom.
            self.stash_flight(&flight, error);
        }
        self.obs
            .close_span(self.instance, SpanKind::Run, 0, None, run_start_ns);
        self.clock.finish();
        (result, outcome)
    }

    /// Runs the coordinator loop. Returns the run result plus the trace
    /// outcome to seal the recorded trace with (the builder itself is
    /// filled in as rounds execute).
    fn coordinate<P>(
        &self,
        emit_rx: &Receiver<Emission<P::Msg, P::Output>>,
        reply_txs: &[Sender<CoordReply<P::Msg>>],
        detector: &mut (impl FaultDetector + ?Sized),
        model: &(impl RrfdPredicate + ?Sized),
        mut trace: Option<&mut TraceBuilder>,
        flight: &mut FlightRecorder,
    ) -> (
        Result<ThreadedReport<P::Output>, ThreadedError>,
        TraceOutcome,
    )
    where
        P: RoundProtocol,
        P::Output: Clone,
    {
        let n = self.n.get();
        let black_box = self.flight_rounds > 0;
        let mut decisions: Vec<Option<(P::Output, Round)>> = vec![None; n];
        let mut pattern = FaultPattern::new(self.n);

        for round_no in 1..=self.max_rounds {
            let round = Round::new(round_no);
            let span = self.obs.round_enter(Labels::round(round_no));

            // Gather every process's emission for this round.
            let mut messages: Vec<Option<P::Msg>> = (0..n).map(|_| None).collect();
            for _ in 0..n {
                // A plain `recv` would deadlock if one thread dies while its
                // peers stay alive (their sender clones keep the channel
                // open), so bound the wait. The timeout only fires when a
                // thread is genuinely gone or wedged.
                let emission = match emit_rx.recv_timeout(self.gather_timeout) {
                    Ok(emission) => emission,
                    Err(_) => {
                        self.obs
                            .add(names::RUNTIME_GATHER_TIMEOUTS, Labels::round(round_no), 1);
                        if black_box {
                            let missing: Vec<usize> = messages
                                .iter()
                                .enumerate()
                                .filter_map(|(i, m)| m.is_none().then_some(i))
                                .collect();
                            flight.note(
                                round_no,
                                format!("gather timeout; emissions missing from {missing:?}"),
                            );
                        }
                        // A process whose emission is still missing this
                        // round is the dead one; if all slots are somehow
                        // filled, report the closed channel itself rather
                        // than guessing.
                        let error = match messages
                            .iter()
                            .position(Option::is_none)
                            .map(ProcessId::new)
                        {
                            Some(process) => ThreadedError::ProcessDied { process },
                            None => ThreadedError::ChannelClosed,
                        };
                        return (Err(error), TraceOutcome::Aborted);
                    }
                };
                debug_assert_eq!(emission.round, round, "lock-step protocol violated");
                self.record(RtEventKind::Gather {
                    from: emission.from,
                    round: emission.round,
                });
                if black_box {
                    flight.note(round_no, format!("gather p{}", emission.from.index()));
                }
                if let Some(v) = emission.decided {
                    // Decision reached in the previous round's deliver.
                    if decisions[emission.from.index()].is_none() {
                        let decided_at = Round::new(round_no - 1);
                        decisions[emission.from.index()] = Some((v, decided_at));
                        if let Some(t) = trace.as_deref_mut() {
                            t.record_decision(emission.from, decided_at);
                        }
                        if black_box {
                            flight.note(
                                round_no,
                                format!(
                                    "p{} decided (in round {})",
                                    emission.from.index(),
                                    decided_at.get()
                                ),
                            );
                        }
                        self.obs.close_span(
                            self.instance,
                            SpanKind::Phase(SpanPhase::Decide),
                            decided_at.get(),
                            Some(emission.from.index() as u32),
                            span.start_ns(),
                        );
                        self.record(RtEventKind::Access {
                            loc: "decisions".to_owned(),
                            write: true,
                        });
                    }
                }
                messages[emission.from.index()] = Some(emission.msg);
            }

            if round_no > 1 && decisions.iter().all(Option::is_some) {
                let rounds_executed = round_no - 1;
                return (
                    Ok(ThreadedReport {
                        decisions,
                        pattern,
                        rounds_executed,
                    }),
                    TraceOutcome::Decided { rounds_executed },
                );
            }

            // The emit/gather phase of the round is over once every
            // emission is in hand.
            self.obs.close_span(
                self.instance,
                SpanKind::Phase(SpanPhase::Emit),
                round_no,
                None,
                span.start_ns(),
            );

            self.record(RtEventKind::Detect { round });
            let faults = detector.next_round(round, &pattern);
            if black_box {
                for i in 0..n {
                    let suspected = faults.of(ProcessId::new(i));
                    if !suspected.is_empty() {
                        flight.note(round_no, format!("D(p{i}) = {suspected}"));
                    }
                }
            }
            if let Err(violation) = validate_round(model, &pattern, &faults) {
                if black_box {
                    flight.note(round_no, format!("VIOLATION: {violation}"));
                }
                // The monitor sees the violating round too: it is the
                // evidence the certificate replays.
                self.observe_conformance(&faults);
                if let Some(t) = trace.as_deref_mut() {
                    t.record_violating_round(faults);
                }
                return (
                    Err(violation.clone().into()),
                    TraceOutcome::Violation(violation),
                );
            }
            self.observe_conformance(&faults);

            // One shared emission table for the whole round: `n` reference
            // counts go out instead of `n` cloned vectors; each worker's
            // `Delivery` view masks its own suspected senders.
            let deliver_start = self.obs.now_ns();
            let table = Arc::new(messages);
            let mut heard: Option<Vec<IdSet>> = trace.is_some().then(|| Vec::with_capacity(n));
            for (i, reply_tx) in reply_txs.iter().enumerate() {
                let me = ProcessId::new(i);
                let suspected = faults.of(me);
                if self.obs.is_enabled() {
                    // Everyone emitted (the gather saw all n), so the
                    // shared plane serves the full unsuspected set.
                    self.obs.add(
                        names::ENGINE_DELIVERIES_SHARED,
                        Labels::process_round(i, round_no),
                        suspected.complement(self.n).len() as u64,
                    );
                }
                if let Some(h) = heard.as_mut() {
                    h.push(suspected.complement(self.n));
                }
                self.record(RtEventKind::Deliver { to: me, round });
                if reply_tx
                    .send(CoordReply::Delivery {
                        round,
                        table: Arc::clone(&table),
                        suspected,
                    })
                    .is_err()
                {
                    if black_box {
                        flight.note(round_no, format!("deliver to p{i} failed: thread gone"));
                    }
                    return (
                        Err(ThreadedError::ProcessDied { process: me }),
                        TraceOutcome::Aborted,
                    );
                }
            }
            if black_box {
                flight.note(round_no, format!("delivered shared table to {n} processes"));
            }
            self.obs.close_span(
                self.instance,
                SpanKind::Phase(SpanPhase::Deliver),
                round_no,
                None,
                deliver_start,
            );

            if let (Some(t), Some(h)) = (trace.as_deref_mut(), heard.take()) {
                t.record_round(&faults, h);
            }
            self.record(RtEventKind::Access {
                loc: "pattern".to_owned(),
                write: true,
            });
            pattern.push(faults);
            self.clock.advance(round_no);
            self.obs.round_exit(names::RUNTIME_ROUND_LATENCY, span);
            self.obs.close_span(
                self.instance,
                SpanKind::Round,
                round_no,
                None,
                span.start_ns(),
            );
        }

        // Decisions piggyback on the *next* round's emission, so decisions
        // made exactly at `max_rounds` arrive after the loop: gather one
        // final batch before giving up (matching the in-process Engine's
        // semantics).
        let mut gathered = 0usize;
        while gathered < n {
            // Every live thread already sent its next emission before
            // blocking on the reply; the timeout only fires if a thread
            // died, in which case the round-limit error below stands.
            let Ok(emission) = emit_rx.recv_timeout(self.gather_timeout) else {
                self.obs.add(
                    names::RUNTIME_GATHER_TIMEOUTS,
                    Labels::round(self.max_rounds),
                    1,
                );
                break;
            };
            gathered += 1;
            self.record(RtEventKind::Gather {
                from: emission.from,
                round: emission.round,
            });
            if let Some(v) = emission.decided {
                if decisions[emission.from.index()].is_none() {
                    let decided_at = Round::new(self.max_rounds);
                    decisions[emission.from.index()] = Some((v, decided_at));
                    if let Some(t) = trace.as_deref_mut() {
                        t.record_decision(emission.from, decided_at);
                    }
                    if black_box {
                        flight.note(
                            self.max_rounds,
                            format!("p{} decided (at the round limit)", emission.from.index()),
                        );
                    }
                    self.record(RtEventKind::Access {
                        loc: "decisions".to_owned(),
                        write: true,
                    });
                }
            }
        }
        if decisions.iter().all(Option::is_some) {
            let rounds_executed = self.max_rounds;
            return (
                Ok(ThreadedReport {
                    decisions,
                    pattern,
                    rounds_executed,
                }),
                TraceOutcome::Decided { rounds_executed },
            );
        }

        (
            Err(ThreadedError::RoundLimitExceeded {
                max_rounds: self.max_rounds,
            }),
            TraceOutcome::RoundLimit {
                max_rounds: self.max_rounds,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrfd_core::AnyPattern;
    use rrfd_models::adversary::{NoFailures, RandomAdversary};
    use rrfd_models::predicates::KUncertainty;

    fn n(v: usize) -> SystemSize {
        SystemSize::new(v).unwrap()
    }

    /// Decides the sum of received values after `rounds` rounds.
    struct SumAfter {
        rounds: u32,
        acc: u64,
        me: u64,
    }

    impl RoundProtocol for SumAfter {
        type Msg = u64;
        type Output = u64;
        fn emit(&mut self, _r: Round) -> u64 {
            self.me
        }
        fn deliver(&mut self, d: Delivery<'_, u64>) -> Control<u64> {
            self.acc += d.values().sum::<u64>();
            if d.round.get() >= self.rounds {
                Control::Decide(self.acc)
            } else {
                Control::Continue
            }
        }
    }

    #[test]
    fn threads_reach_the_same_result_as_the_engine() {
        let size = n(4);
        let build = || {
            (0..4)
                .map(|i| SumAfter {
                    rounds: 3,
                    acc: 0,
                    me: i as u64 + 1,
                })
                .collect::<Vec<_>>()
        };
        let threaded = ThreadedEngine::new(size)
            .run(build(), &mut NoFailures::new(size), &AnyPattern::new(size))
            .unwrap();
        let inproc = rrfd_core::Engine::new(size)
            .run(build(), &mut NoFailures::new(size), &AnyPattern::new(size))
            .unwrap();
        assert_eq!(threaded.outputs(), inproc.outputs());
        assert_eq!(threaded.rounds_executed, inproc.rounds_executed);
    }

    #[test]
    fn one_round_kset_runs_on_threads() {
        // Theorem 3.1 end to end on real threads (experiment E13's core).
        struct OneRound {
            input: u64,
        }
        impl RoundProtocol for OneRound {
            type Msg = u64;
            type Output = u64;
            fn emit(&mut self, _r: Round) -> u64 {
                self.input
            }
            fn deliver(&mut self, d: Delivery<'_, u64>) -> Control<u64> {
                let winner = d.heard_from().min().expect("someone was heard");
                Control::Decide(*d.get(winner).expect("winner heard"))
            }
        }

        let size = n(6);
        let k = 2;
        let model = KUncertainty::new(size, k);
        for seed in 0..10u64 {
            let protos: Vec<_> = (0..6).map(|i| OneRound { input: 100 + i }).collect();
            let mut adv = RandomAdversary::new(model, seed);
            let report = ThreadedEngine::new(size)
                .run(protos, &mut adv, &model)
                .unwrap();
            let mut distinct: Vec<u64> = report.outputs().into_iter().flatten().collect();
            distinct.sort_unstable();
            distinct.dedup();
            assert!(distinct.len() <= k, "seed {seed}");
        }
    }

    #[test]
    fn violation_is_surfaced_and_threads_are_joined() {
        use rrfd_core::{FaultPattern as FP, RoundFaults};

        struct BadDetector(SystemSize);
        impl FaultDetector for BadDetector {
            fn system_size(&self) -> SystemSize {
                self.0
            }
            fn next_round(&mut self, _r: Round, _h: &FP) -> RoundFaults {
                let mut rf = RoundFaults::none(self.0);
                rf.set(ProcessId::new(0), IdSet::universe(self.0));
                rf
            }
        }

        let size = n(3);
        let protos: Vec<_> = (0..3)
            .map(|i| SumAfter {
                rounds: 2,
                acc: 0,
                me: i,
            })
            .collect();
        let err = ThreadedEngine::new(size)
            .run(protos, &mut BadDetector(size), &AnyPattern::new(size))
            .unwrap_err();
        assert!(matches!(err, ThreadedError::Violation(_)));
    }

    #[test]
    fn decisions_at_the_round_limit_are_collected() {
        // Regression: decisions piggyback on the next emission; a decision
        // made exactly at max_rounds must still be gathered.
        struct DecideRound1;
        impl RoundProtocol for DecideRound1 {
            type Msg = ();
            type Output = u32;
            fn emit(&mut self, _r: Round) {}
            fn deliver(&mut self, d: Delivery<'_, ()>) -> Control<u32> {
                Control::Decide(d.round.get())
            }
        }

        let size = n(2);
        let report = ThreadedEngine::new(size)
            .max_rounds(1)
            .run(
                vec![DecideRound1, DecideRound1],
                &mut NoFailures::new(size),
                &AnyPattern::new(size),
            )
            .unwrap();
        assert_eq!(report.outputs(), vec![Some(1), Some(1)]);
        assert_eq!(report.rounds_executed, 1);
    }

    #[test]
    fn round_limit_is_enforced() {
        let size = n(2);
        let protos: Vec<_> = (0..2)
            .map(|i| SumAfter {
                rounds: 1000,
                acc: 0,
                me: i,
            })
            .collect();
        let err = ThreadedEngine::new(size)
            .max_rounds(4)
            .run(protos, &mut NoFailures::new(size), &AnyPattern::new(size))
            .unwrap_err();
        assert!(matches!(err, ThreadedError::RoundLimitExceeded { .. }));
    }

    #[test]
    fn trace_matches_the_in_process_engine() {
        // The same protocol and the same deterministic adversary must
        // produce byte-identical traces on both substrates: that equality
        // is what makes cross-substrate replay meaningful.
        let size = n(5);
        let model = KUncertainty::new(size, 2);
        let build = || {
            (0..5)
                .map(|i| SumAfter {
                    rounds: 4,
                    acc: 0,
                    me: i as u64 + 1,
                })
                .collect::<Vec<_>>()
        };
        for seed in 0..5u64 {
            let (threaded, threaded_trace) = ThreadedEngine::new(size).run_traced(
                build(),
                &mut RandomAdversary::new(model, seed),
                &model,
            );
            let (inproc, inproc_trace) = rrfd_core::Engine::new(size).run_traced(
                build(),
                &mut RandomAdversary::new(model, seed),
                &model,
            );
            assert_eq!(threaded_trace, inproc_trace, "seed {seed}");
            assert_eq!(
                threaded_trace.to_string(),
                inproc_trace.to_string(),
                "seed {seed}"
            );
            let threaded = threaded.unwrap();
            let inproc = inproc.unwrap();
            assert_eq!(threaded.outputs(), inproc.outputs(), "seed {seed}");
            assert_eq!(threaded.pattern, inproc.pattern, "seed {seed}");
        }
    }

    #[test]
    fn traced_run_serializes_and_parses_back() {
        let size = n(3);
        let protos: Vec<_> = (0..3)
            .map(|i| SumAfter {
                rounds: 2,
                acc: 0,
                me: i,
            })
            .collect();
        let (report, trace) = ThreadedEngine::new(size).run_traced(
            protos,
            &mut NoFailures::new(size),
            &AnyPattern::new(size),
        );
        let report = report.unwrap();
        assert_eq!(trace.pattern(), report.pattern);
        let reparsed: RunTrace = trace.to_string().parse().unwrap();
        assert_eq!(reparsed, trace);
    }

    #[test]
    fn panicking_process_is_reported_with_its_message() {
        struct PanicsInRound2 {
            me: u64,
        }
        impl RoundProtocol for PanicsInRound2 {
            type Msg = u64;
            type Output = u64;
            fn emit(&mut self, _r: Round) -> u64 {
                self.me
            }
            fn deliver(&mut self, d: Delivery<'_, u64>) -> Control<u64> {
                if d.round.get() >= 2 && d.me == ProcessId::new(1) {
                    panic!("protocol bug in round 2");
                }
                Control::Continue
            }
        }

        let size = n(3);
        let protos: Vec<_> = (0..3).map(|i| PanicsInRound2 { me: i }).collect();
        let (result, trace) = ThreadedEngine::new(size).max_rounds(10).run_traced(
            protos,
            &mut NoFailures::new(size),
            &AnyPattern::new(size),
        );
        let err = result.unwrap_err();
        match err {
            ThreadedError::ProcessPanicked { process, message } => {
                assert_eq!(process, ProcessId::new(1));
                assert!(message.contains("protocol bug in round 2"), "{message}");
            }
            other => panic!("expected ProcessPanicked, got {other}"),
        }
        assert_eq!(*trace.outcome(), TraceOutcome::Aborted);
    }

    #[test]
    fn attribute_panics_upgrades_process_died() {
        let mut panics = vec![None, Some("boom".to_owned())];
        let result: Result<(), _> = attribute_panics(
            Err(ThreadedError::ProcessDied {
                process: ProcessId::new(1),
            }),
            &mut panics,
        );
        match result.unwrap_err() {
            ThreadedError::ProcessPanicked { process, message } => {
                assert_eq!(process, ProcessId::new(1));
                assert_eq!(message, "boom");
            }
            other => panic!("expected ProcessPanicked, got {other}"),
        }
    }

    #[test]
    fn attribute_panics_keeps_process_died_without_payload() {
        let mut panics = vec![None, None];
        let result: Result<(), _> = attribute_panics(
            Err(ThreadedError::ProcessDied {
                process: ProcessId::new(0),
            }),
            &mut panics,
        );
        assert!(matches!(
            result.unwrap_err(),
            ThreadedError::ProcessDied { .. }
        ));
    }

    #[test]
    fn attribute_panics_resolves_channel_closed_to_first_panicker() {
        // ChannelClosed carries no process identity; the first recovered
        // payload names the culprit.
        let mut panics = vec![None, None, Some("late panic".to_owned())];
        let result: Result<(), _> =
            attribute_panics(Err(ThreadedError::ChannelClosed), &mut panics);
        match result.unwrap_err() {
            ThreadedError::ProcessPanicked { process, message } => {
                assert_eq!(process, ProcessId::new(2));
                assert_eq!(message, "late panic");
            }
            other => panic!("expected ProcessPanicked, got {other}"),
        }

        let mut no_panics = vec![None, None];
        let result: Result<(), _> =
            attribute_panics(Err(ThreadedError::ChannelClosed), &mut no_panics);
        assert!(matches!(result.unwrap_err(), ThreadedError::ChannelClosed));
    }

    #[test]
    fn attribute_panics_passes_successes_and_other_errors_through() {
        let mut panics = vec![Some("unrelated".to_owned())];
        let ok: Result<u32, _> = attribute_panics(Ok(7), &mut panics);
        assert_eq!(ok.unwrap(), 7);
        let err: Result<(), _> = attribute_panics(
            Err(ThreadedError::RoundLimitExceeded { max_rounds: 3 }),
            &mut panics,
        );
        assert!(matches!(
            err.unwrap_err(),
            ThreadedError::RoundLimitExceeded { max_rounds: 3 }
        ));
    }

    #[test]
    fn event_sink_captures_a_parseable_log() {
        use crate::sink::EventSink;
        use rrfd_core::EventLog;

        let size = n(3);
        let sink = EventSink::new(size);
        let protos: Vec<_> = (0..3)
            .map(|i| SumAfter {
                rounds: 2,
                acc: 0,
                me: i,
            })
            .collect();
        ThreadedEngine::new(size)
            .event_sink(sink.clone())
            .run(protos, &mut NoFailures::new(size), &AnyPattern::new(size))
            .unwrap();
        let log = sink.snapshot();
        assert!(!log.is_empty());
        // Every event kind that a healthy run exercises shows up.
        let has = |pred: &dyn Fn(&rrfd_core::RtEventKind) -> bool| {
            log.events().iter().any(|e| pred(&e.kind))
        };
        assert!(has(&|k| matches!(k, RtEventKind::Emit { .. })));
        assert!(has(&|k| matches!(k, RtEventKind::Gather { .. })));
        assert!(has(&|k| matches!(k, RtEventKind::Detect { .. })));
        assert!(has(&|k| matches!(k, RtEventKind::Deliver { .. })));
        assert!(has(&|k| matches!(k, RtEventKind::Receive { .. })));
        assert!(has(&|k| matches!(k, RtEventKind::Decide { .. })));
        assert!(has(&|k| matches!(k, RtEventKind::Access { .. })));
        // And the textual form round-trips.
        let back: EventLog = log.to_string().parse().unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn tee_sink_captures_events_and_metrics_simultaneously() {
        use crate::sink::{MetricsSink, TeeSink};
        use rrfd_obs::Obs;

        let size = n(3);
        let events = EventSink::new(size);
        let obs = Obs::logical();
        let tee = TeeSink::new()
            .with(Arc::new(events.clone()))
            .with(Arc::new(MetricsSink::new(obs.clone())));
        let protos: Vec<_> = (0..3)
            .map(|i| SumAfter {
                rounds: 2,
                acc: 0,
                me: i,
            })
            .collect();
        ThreadedEngine::new(size)
            .sink(Arc::new(tee))
            .obs(obs.clone())
            .run(protos, &mut NoFailures::new(size), &AnyPattern::new(size))
            .unwrap();

        // The event log captured the run...
        let log = events.snapshot();
        assert!(!log.is_empty());
        // ...and the same events surfaced as metrics, in the same counts.
        let snap = obs.snapshot();
        let emits = log
            .events()
            .iter()
            .filter(|e| matches!(e.kind, RtEventKind::Emit { .. }))
            .count() as u64;
        assert_eq!(
            snap.counter_total(rrfd_obs::names::RUNTIME_MESSAGES_EMITTED),
            emits
        );
        assert_eq!(snap.counter_total(rrfd_obs::names::RUNTIME_DECISIONS), 3);
        // The coordinator recorded wall latency for each completed round.
        let latency_rounds = snap
            .entries()
            .iter()
            .filter(|e| e.metric == rrfd_obs::names::RUNTIME_ROUND_LATENCY)
            .count();
        assert!(latency_rounds >= 2, "{latency_rounds}");
        assert_eq!(
            snap.counter_total(rrfd_obs::names::RUNTIME_GATHER_TIMEOUTS),
            0
        );
    }

    #[test]
    fn terminal_errors_are_counted() {
        use rrfd_obs::Obs;

        let size = n(2);
        let protos: Vec<_> = (0..2)
            .map(|i| SumAfter {
                rounds: 1000,
                acc: 0,
                me: i,
            })
            .collect();
        let obs = Obs::logical();
        let err = ThreadedEngine::new(size)
            .max_rounds(4)
            .obs(obs.clone())
            .run(protos, &mut NoFailures::new(size), &AnyPattern::new(size))
            .unwrap_err();
        assert!(matches!(err, ThreadedError::RoundLimitExceeded { .. }));
        assert_eq!(
            obs.snapshot()
                .counter_total(rrfd_obs::names::RUNTIME_ERR_ROUND_LIMIT),
            1
        );
    }

    #[test]
    fn failed_run_leaves_a_flight_dump_of_the_last_rounds() {
        let size = n(2);
        let protos: Vec<_> = (0..2)
            .map(|i| SumAfter {
                rounds: 1000,
                acc: 0,
                me: i,
            })
            .collect();
        let engine = ThreadedEngine::new(size).max_rounds(20).flight_rounds(4);
        let err = engine
            .run(protos, &mut NoFailures::new(size), &AnyPattern::new(size))
            .unwrap_err();
        assert!(matches!(err, ThreadedError::RoundLimitExceeded { .. }));
        let dump = engine.take_flight_dump().expect("failed run leaves a dump");
        assert!(dump.starts_with("rrfd-flight v1\n"), "{dump}");
        assert!(dump.contains("no full decision after 20 rounds"), "{dump}");
        // Only the last K=4 rounds are retained: 17..=20.
        assert!(dump.contains("round 20:"), "{dump}");
        assert!(dump.contains("round 17:"), "{dump}");
        assert!(!dump.contains("round 16:"), "{dump}");
        // Taking the dump drains it.
        assert!(engine.take_flight_dump().is_none());
    }

    #[test]
    fn successful_run_leaves_no_flight_dump() {
        let size = n(3);
        let protos: Vec<_> = (0..3)
            .map(|i| SumAfter {
                rounds: 2,
                acc: 0,
                me: i,
            })
            .collect();
        let engine = ThreadedEngine::new(size);
        engine
            .run(protos, &mut NoFailures::new(size), &AnyPattern::new(size))
            .unwrap();
        assert!(engine.take_flight_dump().is_none());
    }

    #[test]
    fn conformance_monitor_follows_the_run_live() {
        let size = n(3);
        let monitor = Arc::new(Mutex::new(ConformanceMonitor::zoo(size, 1)));
        let protos: Vec<_> = (0..3)
            .map(|i| SumAfter {
                rounds: 3,
                acc: 0,
                me: i,
            })
            .collect();
        ThreadedEngine::new(size)
            .conformance(Arc::clone(&monitor))
            .run(protos, &mut NoFailures::new(size), &AnyPattern::new(size))
            .unwrap();
        let verdict = monitor.lock().unwrap().verdict();
        // A failure-free run satisfies the whole zoo; the strongest
        // surviving class is the top of the lattice.
        assert!(verdict.rounds_observed >= 3);
        let strongest = verdict.strongest_satisfied().expect("zoo satisfied");
        assert_eq!(strongest.rank, 0);
    }

    #[test]
    fn clock_tracks_progress() {
        let size = n(3);
        let engine = ThreadedEngine::new(size);
        let clock = engine.clock();
        let protos: Vec<_> = (0..3)
            .map(|i| SumAfter {
                rounds: 5,
                acc: 0,
                me: i,
            })
            .collect();
        let report = engine
            .run(protos, &mut NoFailures::new(size), &AnyPattern::new(size))
            .unwrap();
        assert!(clock.is_finished());
        assert!(clock.current_round() >= report.rounds_executed);
    }
}
