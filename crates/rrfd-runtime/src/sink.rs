//! Runtime event sinks: where the threaded harness reports what happened.
//!
//! [`RtSink`] is the seam — the coordinator and every process thread call
//! [`RtSink::record`] for each channel send/receive, detector
//! consultation, and shared-state access. Three implementations cover the
//! workspace's needs:
//!
//! * [`EventSink`] collects a full [`EventLog`] (the `rrfd-events v1`
//!   capture format) for the happens-before race checker in
//!   `rrfd-analyze races`.
//! * [`MetricsSink`] translates each event into `rrfd_runtime_*` metrics
//!   on an [`Obs`] handle, keyed by `(process, round)`.
//! * [`TeeSink`] fans one stream out to several sinks, so event-log
//!   capture and metrics recording run simultaneously instead of
//!   one-or-the-other.
//!
//! An [`EventSink`] is a mutex around a log; the lock serializes
//! *recording*, but the analysis derives ordering only from the semantic
//! edges (program order, emit → gather, deliver → receive), never from log
//! order, so the lock does not mask races in the analyzed execution.

use rrfd_core::{Actor, EventLog, RtEvent, RtEventKind, SystemSize};
use rrfd_obs::{names, Labels, Obs};
use std::sync::{Arc, Mutex};

/// A consumer of runtime events. Implementations must be cheap and
/// non-blocking where possible: `record` runs inline on the coordinator
/// and process threads.
pub trait RtSink: Send + Sync + std::fmt::Debug {
    /// Consumes one event, attributed to the thread (`actor`) that
    /// performed it.
    fn record(&self, actor: Actor, kind: RtEventKind);
}

/// A cloneable, thread-safe collector of runtime events.
#[derive(Debug, Clone)]
pub struct EventSink {
    inner: Arc<Mutex<EventLog>>,
}

impl EventSink {
    /// Creates an empty sink for a system of `n` processes.
    #[must_use]
    pub fn new(n: SystemSize) -> Self {
        EventSink {
            inner: Arc::new(Mutex::new(EventLog::new(n))),
        }
    }

    /// Records one event. Never panics: a poisoned lock (a recording
    /// thread died mid-push) is recovered, since the log stays
    /// structurally valid.
    pub fn record(&self, actor: Actor, kind: RtEventKind) {
        let mut log = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        log.push(RtEvent { actor, kind });
    }

    /// A snapshot of everything recorded so far.
    #[must_use]
    pub fn snapshot(&self) -> EventLog {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

impl RtSink for EventSink {
    fn record(&self, actor: Actor, kind: RtEventKind) {
        EventSink::record(self, actor, kind);
    }
}

/// Translates runtime events into `rrfd_runtime_*` metrics on an [`Obs`]
/// handle. Every event becomes a counter increment keyed by the acting
/// process (where one is identifiable) and the event's round.
#[derive(Debug, Clone)]
pub struct MetricsSink {
    obs: Obs,
}

impl MetricsSink {
    /// Wraps an observability handle.
    #[must_use]
    pub fn new(obs: Obs) -> Self {
        MetricsSink { obs }
    }

    /// The wrapped handle (for taking snapshots after a run).
    #[must_use]
    pub fn obs(&self) -> &Obs {
        &self.obs
    }
}

impl RtSink for MetricsSink {
    fn record(&self, actor: Actor, kind: RtEventKind) {
        let (metric, labels) = match (&actor, &kind) {
            (Actor::Process(p), RtEventKind::Emit { round }) => (
                names::RUNTIME_MESSAGES_EMITTED,
                Labels::process_round(p.index(), round.get()),
            ),
            (_, RtEventKind::Gather { from, round }) => (
                names::RUNTIME_GATHERS,
                Labels::process_round(from.index(), round.get()),
            ),
            (_, RtEventKind::Detect { round }) => {
                (names::RUNTIME_DETECTS, Labels::round(round.get()))
            }
            (_, RtEventKind::Deliver { to, round }) => (
                names::RUNTIME_DELIVERIES,
                Labels::process_round(to.index(), round.get()),
            ),
            (Actor::Process(p), RtEventKind::Receive { round }) => (
                names::RUNTIME_MESSAGES_RECEIVED,
                Labels::process_round(p.index(), round.get()),
            ),
            (Actor::Process(p), RtEventKind::Decide { round }) => (
                names::RUNTIME_DECISIONS,
                Labels::process_round(p.index(), round.get()),
            ),
            (_, RtEventKind::Access { .. }) => (names::RUNTIME_STATE_ACCESSES, Labels::GLOBAL),
            // Coordinator-attributed emit/receive/decide events do not occur
            // in the harness; count them globally rather than dropping them.
            (Actor::Coordinator, RtEventKind::Emit { round }) => {
                (names::RUNTIME_MESSAGES_EMITTED, Labels::round(round.get()))
            }
            (Actor::Coordinator, RtEventKind::Receive { round }) => {
                (names::RUNTIME_MESSAGES_RECEIVED, Labels::round(round.get()))
            }
            (Actor::Coordinator, RtEventKind::Decide { round }) => {
                (names::RUNTIME_DECISIONS, Labels::round(round.get()))
            }
        };
        self.obs.add(metric, labels, 1);
    }
}

/// Fans one event stream out to several sinks, in installation order.
#[derive(Debug, Clone, Default)]
pub struct TeeSink {
    sinks: Vec<Arc<dyn RtSink>>,
}

impl TeeSink {
    /// An empty tee (records nothing until sinks are added).
    #[must_use]
    pub fn new() -> Self {
        TeeSink::default()
    }

    /// Adds a downstream sink.
    #[must_use]
    pub fn with(mut self, sink: Arc<dyn RtSink>) -> Self {
        self.sinks.push(sink);
        self
    }
}

impl RtSink for TeeSink {
    fn record(&self, actor: Actor, kind: RtEventKind) {
        for sink in &self.sinks {
            sink.record(actor, kind.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrfd_core::{ProcessId, Round};

    #[test]
    fn records_across_clones() {
        let n = SystemSize::new(2).unwrap();
        let sink = EventSink::new(n);
        let other = sink.clone();
        other.record(
            Actor::Process(ProcessId::new(0)),
            RtEventKind::Emit {
                round: Round::new(1),
            },
        );
        sink.record(
            Actor::Coordinator,
            RtEventKind::Gather {
                from: ProcessId::new(0),
                round: Round::new(1),
            },
        );
        let log = sink.snapshot();
        assert_eq!(log.len(), 2);
        assert_eq!(log.system_size(), n);
    }

    #[test]
    fn metrics_sink_translates_events() {
        let obs = Obs::logical();
        let sink = MetricsSink::new(obs.clone());
        RtSink::record(
            &sink,
            Actor::Process(ProcessId::new(1)),
            RtEventKind::Emit {
                round: Round::new(3),
            },
        );
        RtSink::record(
            &sink,
            Actor::Coordinator,
            RtEventKind::Gather {
                from: ProcessId::new(1),
                round: Round::new(3),
            },
        );
        RtSink::record(
            &sink,
            Actor::Coordinator,
            RtEventKind::Access {
                loc: "pattern".to_owned(),
                write: true,
            },
        );
        let snap = obs.snapshot();
        assert_eq!(
            snap.get(names::RUNTIME_MESSAGES_EMITTED, Labels::process_round(1, 3)),
            Some(&rrfd_obs::MetricValue::Counter(1))
        );
        assert_eq!(snap.counter_total(names::RUNTIME_GATHERS), 1);
        assert_eq!(snap.counter_total(names::RUNTIME_STATE_ACCESSES), 1);
    }

    #[test]
    fn tee_fans_out_to_every_sink() {
        let n = SystemSize::new(2).unwrap();
        let events = EventSink::new(n);
        let obs = Obs::logical();
        let tee = TeeSink::new()
            .with(Arc::new(events.clone()))
            .with(Arc::new(MetricsSink::new(obs.clone())));
        RtSink::record(
            &tee,
            Actor::Process(ProcessId::new(0)),
            RtEventKind::Emit {
                round: Round::new(1),
            },
        );
        assert_eq!(events.snapshot().len(), 1);
        assert_eq!(
            obs.snapshot()
                .counter_total(names::RUNTIME_MESSAGES_EMITTED),
            1
        );
    }
}
