//! Event-sink instrumentation for the threaded runtime (feature
//! `analyze`).
//!
//! An [`EventSink`] is a thread-safe collector of [`rrfd_core::RtEvent`]s.
//! Install one on a [`crate::ThreadedEngine`] with
//! [`crate::ThreadedEngine::event_sink`]; the coordinator and every process
//! thread then record their channel sends/receives, detector
//! consultations, and shared-state accesses as the run executes. The
//! resulting [`EventLog`] serializes to the `rrfd-events v1` text format
//! and feeds `rrfd-analyze races`, which rebuilds the happens-before
//! partial order with vector clocks.
//!
//! The sink is a mutex around a log; the lock serializes *recording*, but
//! the analysis derives ordering only from the semantic edges (program
//! order, emit → gather, deliver → receive), never from log order, so the
//! lock does not mask races in the analyzed execution.

use rrfd_core::{Actor, EventLog, RtEvent, RtEventKind, SystemSize};
use std::sync::{Arc, Mutex};

/// A cloneable, thread-safe collector of runtime events.
#[derive(Debug, Clone)]
pub struct EventSink {
    inner: Arc<Mutex<EventLog>>,
}

impl EventSink {
    /// Creates an empty sink for a system of `n` processes.
    #[must_use]
    pub fn new(n: SystemSize) -> Self {
        EventSink {
            inner: Arc::new(Mutex::new(EventLog::new(n))),
        }
    }

    /// Records one event. Never panics: a poisoned lock (a recording
    /// thread died mid-push) is recovered, since the log stays
    /// structurally valid.
    pub fn record(&self, actor: Actor, kind: RtEventKind) {
        let mut log = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        log.push(RtEvent { actor, kind });
    }

    /// A snapshot of everything recorded so far.
    #[must_use]
    pub fn snapshot(&self) -> EventLog {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrfd_core::{ProcessId, Round};

    #[test]
    fn records_across_clones() {
        let n = SystemSize::new(2).unwrap();
        let sink = EventSink::new(n);
        let other = sink.clone();
        other.record(
            Actor::Process(ProcessId::new(0)),
            RtEventKind::Emit {
                round: Round::new(1),
            },
        );
        sink.record(
            Actor::Coordinator,
            RtEventKind::Gather {
                from: ProcessId::new(0),
                round: Round::new(1),
            },
        );
        let log = sink.snapshot();
        assert_eq!(log.len(), 2);
        assert_eq!(log.system_size(), n);
    }
}
