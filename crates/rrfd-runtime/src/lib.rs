//! Threaded execution harness for RRFD algorithms.
//!
//! The other crates *simulate*; this one *executes*: each process of the
//! paper's abstract emit/receive loop runs on its own OS thread, and the
//! round-by-round fault detector is a coordinator service the threads talk
//! to over channels. The harness validates every detector move against the
//! model predicate, exactly like the in-process engine, so a run on
//! threads is a run of the same mathematical object — experiment E13
//! demonstrates Theorem 3.1's one-round k-set agreement end to end this
//! way.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod sink;
mod threaded;

pub use clock::RoundClock;
pub use sink::{EventSink, MetricsSink, RtSink, TeeSink};
pub use threaded::{RunError, ThreadedEngine, ThreadedError, ThreadedReport};
