//! A shared round clock: lets observers outside the computation watch a
//! threaded run's progress without participating in it.

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::Duration;

#[derive(Debug, Default)]
struct ClockState {
    round: u32,
    finished: bool,
}

/// A monotonically advancing round counter shared between the coordinator
/// thread and any number of observers.
///
/// # Examples
///
/// ```
/// use rrfd_runtime::RoundClock;
/// let clock = RoundClock::new();
/// let observer = clock.clone();
/// clock.advance(1);
/// assert_eq!(observer.current_round(), 1);
/// clock.finish();
/// assert!(observer.wait_finished(std::time::Duration::from_secs(1)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RoundClock {
    inner: Arc<(Mutex<ClockState>, Condvar)>,
}

impl RoundClock {
    /// Creates a clock at round 0 (no round completed yet).
    #[must_use]
    pub fn new() -> Self {
        RoundClock::default()
    }

    /// The last completed round (0 before the first round completes).
    #[must_use]
    pub fn current_round(&self) -> u32 {
        self.inner.0.lock().round
    }

    /// `true` once the run has finished.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.inner.0.lock().finished
    }

    /// Marks round `round` as completed and wakes waiters.
    pub fn advance(&self, round: u32) {
        let mut state = self.inner.0.lock();
        state.round = state.round.max(round);
        self.inner.1.notify_all();
    }

    /// Marks the run as finished and wakes waiters.
    pub fn finish(&self) {
        let mut state = self.inner.0.lock();
        state.finished = true;
        self.inner.1.notify_all();
    }

    /// Blocks until at least `round` has completed, or `timeout` elapses.
    /// Returns `true` when the round was reached.
    #[must_use]
    pub fn wait_for_round(&self, round: u32, timeout: Duration) -> bool {
        let mut state = self.inner.0.lock();
        while state.round < round && !state.finished {
            if self.inner.1.wait_for(&mut state, timeout).timed_out() {
                break;
            }
        }
        state.round >= round
    }

    /// Blocks until the run finishes, or `timeout` elapses. Returns `true`
    /// when finished.
    #[must_use]
    pub fn wait_finished(&self, timeout: Duration) -> bool {
        let mut state = self.inner.0.lock();
        while !state.finished {
            if self.inner.1.wait_for(&mut state, timeout).timed_out() {
                break;
            }
        }
        state.finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn starts_at_zero_unfinished() {
        let clock = RoundClock::new();
        assert_eq!(clock.current_round(), 0);
        assert!(!clock.is_finished());
    }

    #[test]
    fn advance_is_monotone() {
        let clock = RoundClock::new();
        clock.advance(5);
        clock.advance(3);
        assert_eq!(clock.current_round(), 5);
    }

    #[test]
    fn waiters_wake_on_advance() {
        let clock = RoundClock::new();
        let observer = clock.clone();
        let handle = thread::spawn(move || observer.wait_for_round(2, Duration::from_secs(5)));
        clock.advance(1);
        clock.advance(2);
        assert!(handle.join().unwrap());
    }

    #[test]
    fn wait_for_round_times_out() {
        let clock = RoundClock::new();
        assert!(!clock.wait_for_round(1, Duration::from_millis(20)));
    }

    #[test]
    fn finish_unblocks_everyone() {
        let clock = RoundClock::new();
        let observer = clock.clone();
        let handle = thread::spawn(move || observer.wait_finished(Duration::from_secs(5)));
        clock.finish();
        assert!(handle.join().unwrap());
        // A round-waiter past the end sees "not reached" but returns.
        assert!(!clock.wait_for_round(9, Duration::from_millis(50)));
    }
}
