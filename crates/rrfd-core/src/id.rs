//! Process identifiers and system sizes.
//!
//! The paper works with a fixed set `S` of `n` processes `p_1, …, p_n`.
//! We index processes from `0` to `n − 1` with [`ProcessId`], and capture the
//! validated system size with [`SystemSize`]. Both are cheap `Copy` newtypes
//! so they can flow through hot simulation paths without indirection.

use std::fmt;

/// Maximum number of processes supported by the library.
///
/// [`crate::IdSet`] packs membership into a `u128`, which bounds systems to
/// 128 processes. Every experiment in the paper is comfortably below this
/// (lower-bound constructions are interesting already at `n ≤ 64`).
pub const MAX_PROCESSES: usize = 128;

/// Identifier of a process, in `0..n`.
///
/// The paper's one-round k-set agreement algorithm (Theorem 3.1) relies on
/// identifiers being totally ordered ("the process in `S − D(i,1)` with the
/// lowest process identifier"), so `ProcessId` is `Ord`.
///
/// # Examples
///
/// ```
/// use rrfd_core::ProcessId;
/// let p = ProcessId::new(3);
/// assert_eq!(p.index(), 3);
/// assert!(ProcessId::new(1) < ProcessId::new(2));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessId(u8);

impl ProcessId {
    /// Creates a process identifier from its zero-based index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= MAX_PROCESSES`.
    #[must_use]
    pub fn new(index: usize) -> Self {
        assert!(
            index < MAX_PROCESSES,
            "process index {index} exceeds MAX_PROCESSES ({MAX_PROCESSES})"
        );
        ProcessId(index as u8)
    }

    /// Zero-based index of this process.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<ProcessId> for usize {
    fn from(id: ProcessId) -> usize {
        id.index()
    }
}

/// A validated system size `n` with `1 ≤ n ≤ MAX_PROCESSES`.
///
/// Constructing a `SystemSize` once at the boundary lets the rest of the
/// library assume a well-formed process universe.
///
/// # Examples
///
/// ```
/// use rrfd_core::SystemSize;
/// let n = SystemSize::new(5).unwrap();
/// assert_eq!(n.get(), 5);
/// let ids: Vec<_> = n.processes().collect();
/// assert_eq!(ids.len(), 5);
/// assert!(SystemSize::new(0).is_err());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SystemSize(u8);

impl SystemSize {
    /// Creates a system size.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidSystemSize`] when `n == 0` or `n > MAX_PROCESSES`.
    pub fn new(n: usize) -> Result<Self, InvalidSystemSize> {
        if n == 0 || n > MAX_PROCESSES {
            Err(InvalidSystemSize { requested: n })
        } else {
            Ok(SystemSize(n as u8))
        }
    }

    /// The number of processes `n`.
    #[must_use]
    pub fn get(self) -> usize {
        self.0 as usize
    }

    /// Iterates over every process identifier `p_0, …, p_{n−1}`.
    pub fn processes(self) -> impl Iterator<Item = ProcessId> + Clone {
        (0..self.get()).map(ProcessId::new)
    }

    /// Returns `true` when `id` belongs to this system.
    #[must_use]
    pub fn contains(self, id: ProcessId) -> bool {
        id.index() < self.get()
    }
}

impl fmt::Debug for SystemSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n={}", self.0)
    }
}

impl fmt::Display for SystemSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Error returned by [`SystemSize::new`] for out-of-range sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidSystemSize {
    /// The rejected size.
    pub requested: usize,
}

impl fmt::Display for InvalidSystemSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid system size {} (must be in 1..={})",
            self.requested, MAX_PROCESSES
        )
    }
}

impl std::error::Error for InvalidSystemSize {}

/// A round number, starting at 1 as in the paper (`r = 1, 2, …`).
///
/// # Examples
///
/// ```
/// use rrfd_core::Round;
/// let r = Round::FIRST;
/// assert_eq!(r.get(), 1);
/// assert_eq!(r.next().get(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Round(u32);

impl Round {
    /// The first round, `r = 1`.
    pub const FIRST: Round = Round(1);

    /// Creates a round number.
    ///
    /// # Panics
    ///
    /// Panics if `r == 0`; the paper's rounds start at 1.
    #[must_use]
    pub fn new(r: u32) -> Self {
        assert!(r >= 1, "rounds are 1-based");
        Round(r)
    }

    /// The round number.
    #[must_use]
    pub fn get(self) -> u32 {
        self.0
    }

    /// Zero-based index of this round (round 1 has index 0), convenient for
    /// indexing per-round storage.
    #[must_use]
    pub fn index(self) -> usize {
        (self.0 - 1) as usize
    }

    /// The following round.
    #[must_use]
    pub fn next(self) -> Round {
        Round(self.0 + 1)
    }
}

impl fmt::Debug for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_roundtrips_index() {
        for i in [0usize, 1, 7, 127] {
            assert_eq!(ProcessId::new(i).index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_PROCESSES")]
    fn process_id_rejects_overflow() {
        let _ = ProcessId::new(MAX_PROCESSES);
    }

    #[test]
    fn process_ids_order_by_index() {
        assert!(ProcessId::new(0) < ProcessId::new(1));
        assert!(ProcessId::new(5) > ProcessId::new(4));
    }

    #[test]
    fn system_size_bounds() {
        assert!(SystemSize::new(0).is_err());
        assert!(SystemSize::new(1).is_ok());
        assert!(SystemSize::new(MAX_PROCESSES).is_ok());
        assert!(SystemSize::new(MAX_PROCESSES + 1).is_err());
    }

    #[test]
    fn system_size_enumerates_all_processes() {
        let n = SystemSize::new(4).unwrap();
        let ids: Vec<usize> = n.processes().map(ProcessId::index).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert!(n.contains(ProcessId::new(3)));
        assert!(!n.contains(ProcessId::new(4)));
    }

    #[test]
    fn invalid_size_error_displays_bounds() {
        let err = SystemSize::new(0).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("invalid system size 0"));
    }

    #[test]
    fn rounds_start_at_one() {
        assert_eq!(Round::FIRST.get(), 1);
        assert_eq!(Round::FIRST.index(), 0);
        assert_eq!(Round::new(3).next().get(), 4);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn round_zero_is_rejected() {
        let _ = Round::new(0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ProcessId::new(2).to_string(), "p2");
        assert_eq!(Round::new(7).to_string(), "7");
        assert_eq!(format!("{:?}", Round::new(7)), "r7");
        assert_eq!(SystemSize::new(9).unwrap().to_string(), "9");
    }
}
