//! Run traces: serializable, replayable records of RRFD executions.
//!
//! A [`RunTrace`] captures everything the round engine saw an adversary do:
//! per-round suspicion sets `D(i,r)`, the delivered-message summary `S(i,r)`
//! (who each process actually heard from), per-process decision rounds, and
//! how the run ended — full decision, predicate violation, or round-limit
//! exhaustion. [`crate::Engine::run_traced`] and the threaded runtime's
//! equivalent record one as they go, so a failing run is never an opaque
//! assertion: the trace can be printed (stable text format, one value per
//! line), parsed back, and re-driven bit-for-bit through any engine via a
//! replay detector (`rrfd-models::adversary::ReplayDetector`).
//!
//! The text format is line-oriented and versioned:
//!
//! ```text
//! rrfd-trace v1
//! n 3
//! round 1
//! d - 2 -
//! s 0,1,2 0,1 0,1,2
//! decisions 1 1 1
//! outcome decided rounds=1
//! ```
//!
//! `d` lines hold `D(i,r)` per process (comma-separated ids, `-` for the
//! empty set); `s` lines hold `S(i,r)` the same way; `decisions` holds each
//! process's decision round or `-`.

use crate::id::{ProcessId, Round, SystemSize, MAX_PROCESSES};
use crate::idset::IdSet;
use crate::lineformat::{self, DisplayIdSet, LineError};
use crate::pattern::{FaultPattern, RoundFaults};
use crate::predicate::PatternViolation;
use std::fmt;
use std::str::FromStr;

/// One executed round as seen by the engine: the adversary's suspicion sets
/// and what each process actually heard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRound {
    /// `faults.of(i)` is `D(i, r)`.
    pub faults: RoundFaults,
    /// `heard[i]` is `S(i, r)` — processes whose round message reached `i`.
    /// Empty for a round the adversary aborted with a violation (no
    /// delivery happened).
    pub heard: Vec<IdSet>,
}

/// How a traced run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceOutcome {
    /// Every process decided; the run took `rounds_executed` full rounds.
    Decided {
        /// Number of rounds executed.
        rounds_executed: u32,
    },
    /// The adversary broke well-formedness or the model predicate. The
    /// offending round's `D` sets are the trace's final [`TraceRound`].
    Violation(PatternViolation),
    /// The round budget elapsed before every process decided.
    RoundLimit {
        /// The configured limit.
        max_rounds: u32,
    },
    /// The run ended without a verdict from the adversary/protocol
    /// interaction itself: it never started (wrong protocol count) or a
    /// harness-level failure cut it short (for example, a process thread
    /// dying in the threaded runtime).
    Aborted,
}

impl fmt::Display for TraceOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceOutcome::Decided { rounds_executed } => {
                write!(f, "decided rounds={rounds_executed}")
            }
            TraceOutcome::Violation(PatternViolation::IllFormed { process, round }) => {
                write!(
                    f,
                    "violation ill-formed process={} round={}",
                    process.index(),
                    round.get()
                )
            }
            TraceOutcome::Violation(PatternViolation::PredicateRejected { predicate, round }) => {
                write!(
                    f,
                    "violation predicate round={} name={predicate}",
                    round.get()
                )
            }
            TraceOutcome::RoundLimit { max_rounds } => write!(f, "limit max={max_rounds}"),
            TraceOutcome::Aborted => write!(f, "aborted"),
        }
    }
}

/// A complete record of one engine run. Build with [`TraceBuilder`] (the
/// engines do this) or parse from the text format with [`str::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunTrace {
    n: SystemSize,
    rounds: Vec<TraceRound>,
    decision_rounds: Vec<Option<Round>>,
    outcome: TraceOutcome,
}

impl RunTrace {
    /// The system size the trace was recorded over.
    #[must_use]
    pub fn system_size(&self) -> SystemSize {
        self.n
    }

    /// The recorded rounds, in execution order.
    #[must_use]
    pub fn rounds(&self) -> &[TraceRound] {
        &self.rounds
    }

    /// The round at which each process decided, aligned by process index.
    #[must_use]
    pub fn decision_rounds(&self) -> &[Option<Round>] {
        &self.decision_rounds
    }

    /// How the run ended.
    #[must_use]
    pub fn outcome(&self) -> &TraceOutcome {
        &self.outcome
    }

    /// The fault pattern over every recorded round — including, for a
    /// violation trace, the final offending round that the engine refused
    /// to push into its own history.
    #[must_use]
    pub fn pattern(&self) -> FaultPattern {
        let mut pattern = FaultPattern::new(self.n);
        for round in &self.rounds {
            pattern.push(round.faults.clone());
        }
        pattern
    }

    /// The processes whose first decision landed in round `r`.
    #[must_use]
    pub fn deciders_at(&self, r: Round) -> IdSet {
        self.decision_rounds
            .iter()
            .enumerate()
            .filter(|(_, d)| **d == Some(r))
            .map(|(i, _)| ProcessId::new(i))
            .collect()
    }
}

/// Incrementally records a [`RunTrace`] while an engine runs.
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    n: SystemSize,
    rounds: Vec<TraceRound>,
    decision_rounds: Vec<Option<Round>>,
}

impl TraceBuilder {
    /// Starts an empty trace for a system of `n` processes.
    #[must_use]
    pub fn new(n: SystemSize) -> Self {
        TraceBuilder {
            n,
            rounds: Vec::new(),
            decision_rounds: vec![None; n.get()],
        }
    }

    /// Records a completed round: the adversary's sets plus what each
    /// process heard. Takes the faults by reference — the engines keep
    /// ownership for their own pattern bookkeeping, and only a recording
    /// run pays for the copy.
    ///
    /// # Panics
    ///
    /// Panics if `heard` is not one set per process.
    pub fn record_round(&mut self, faults: &RoundFaults, heard: Vec<IdSet>) {
        assert_eq!(heard.len(), self.n.get(), "one S(i,r) per process required");
        self.rounds.push(TraceRound {
            faults: faults.clone(),
            heard,
        });
    }

    /// Records a round the engine rejected before delivery: the offending
    /// `D` sets are kept (that is the evidence) with empty heard-sets.
    pub fn record_violating_round(&mut self, faults: RoundFaults) {
        let heard = vec![IdSet::empty(); self.n.get()];
        self.rounds.push(TraceRound { faults, heard });
    }

    /// Records `process`'s first decision round; later calls are ignored,
    /// matching the engines' "first decision wins".
    pub fn record_decision(&mut self, process: ProcessId, round: Round) {
        self.decision_rounds[process.index()].get_or_insert(round);
    }

    /// Seals the trace with its outcome.
    #[must_use]
    pub fn finish(self, outcome: TraceOutcome) -> RunTrace {
        RunTrace {
            n: self.n,
            rounds: self.rounds,
            decision_rounds: self.decision_rounds,
            outcome,
        }
    }
}

fn write_idset(f: &mut fmt::Formatter<'_>, set: IdSet) -> fmt::Result {
    write!(f, "{}", DisplayIdSet(set))
}

impl fmt::Display for RunTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "rrfd-trace v1")?;
        writeln!(f, "n {}", self.n.get())?;
        for (idx, round) in self.rounds.iter().enumerate() {
            writeln!(f, "round {}", idx + 1)?;
            f.write_str("d")?;
            for (_, d) in round.faults.iter() {
                f.write_str(" ")?;
                write_idset(f, d)?;
            }
            f.write_str("\ns")?;
            for &s in &round.heard {
                f.write_str(" ")?;
                write_idset(f, s)?;
            }
            f.write_str("\n")?;
        }
        f.write_str("decisions")?;
        for d in &self.decision_rounds {
            match d {
                Some(r) => write!(f, " {}", r.get())?,
                None => f.write_str(" -")?,
            }
        }
        writeln!(f, "\noutcome {}", self.outcome)
    }
}

/// Why a serialized trace failed to parse. An alias of the workspace-wide
/// [`LineError`] — every line-oriented format shares the same error shape.
pub type ParseTraceError = LineError;

fn parse_set_line(rest: &str, n: SystemSize, line: usize) -> Result<Vec<IdSet>, ParseTraceError> {
    let sets: Vec<IdSet> = rest
        .split_whitespace()
        .map(|tok| lineformat::parse_idset(tok, n).map_err(|m| ParseTraceError::new(line, m)))
        .collect::<Result<_, _>>()?;
    if sets.len() != n.get() {
        return Err(ParseTraceError::new(
            line,
            format!("expected {} sets, found {}", n.get(), sets.len()),
        ));
    }
    Ok(sets)
}

fn parse_kv<'a>(token: &'a str, key: &str, line: usize) -> Result<&'a str, ParseTraceError> {
    lineformat::parse_kv(token, key).map_err(|m| ParseTraceError::new(line, m))
}

fn parse_outcome(rest: &str, line: usize) -> Result<TraceOutcome, ParseTraceError> {
    let mut words = rest.split_whitespace();
    match words.next() {
        Some("decided") => {
            let rounds = parse_kv(words.next().unwrap_or(""), "rounds", line)?;
            let rounds_executed = rounds
                .parse()
                .map_err(|_| ParseTraceError::new(line, "bad round count"))?;
            Ok(TraceOutcome::Decided { rounds_executed })
        }
        Some("limit") => {
            let max = parse_kv(words.next().unwrap_or(""), "max", line)?;
            let max_rounds = max
                .parse()
                .map_err(|_| ParseTraceError::new(line, "bad round limit"))?;
            Ok(TraceOutcome::RoundLimit { max_rounds })
        }
        Some("aborted") => Ok(TraceOutcome::Aborted),
        Some("violation") => match words.next() {
            Some("ill-formed") => {
                let process: usize = parse_kv(words.next().unwrap_or(""), "process", line)?
                    .parse()
                    .map_err(|_| ParseTraceError::new(line, "bad process id"))?;
                let round: u32 = parse_kv(words.next().unwrap_or(""), "round", line)?
                    .parse()
                    .map_err(|_| ParseTraceError::new(line, "bad round"))?;
                if process >= MAX_PROCESSES || round == 0 {
                    return Err(ParseTraceError::new(line, "violation out of range"));
                }
                Ok(TraceOutcome::Violation(PatternViolation::IllFormed {
                    process: ProcessId::new(process),
                    round: Round::new(round),
                }))
            }
            Some("predicate") => {
                let round: u32 = parse_kv(words.next().unwrap_or(""), "round", line)?
                    .parse()
                    .map_err(|_| ParseTraceError::new(line, "bad round"))?;
                if round == 0 {
                    return Err(ParseTraceError::new(line, "round must be positive"));
                }
                // The name is everything after `name=` on the original line
                // (predicate names may contain spaces).
                let name = rest
                    .split_once("name=")
                    .map(|(_, name)| name.to_owned())
                    .ok_or_else(|| ParseTraceError::new(line, "missing predicate name"))?;
                Ok(TraceOutcome::Violation(
                    PatternViolation::PredicateRejected {
                        predicate: name,
                        round: Round::new(round),
                    },
                ))
            }
            other => Err(ParseTraceError::new(
                line,
                format!("unknown violation kind {other:?}"),
            )),
        },
        other => Err(ParseTraceError::new(
            line,
            format!("unknown outcome {other:?}"),
        )),
    }
}

impl FromStr for RunTrace {
    type Err = ParseTraceError;

    fn from_str(text: &str) -> Result<Self, Self::Err> {
        let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));
        let (lno, header) = lines
            .next()
            .ok_or_else(|| ParseTraceError::new(0, "empty trace"))?;
        if header != "rrfd-trace v1" {
            return Err(ParseTraceError::new(lno, "missing `rrfd-trace v1` header"));
        }
        let (lno, n_line) = lines
            .next()
            .ok_or_else(|| ParseTraceError::new(lno, "missing `n` line"))?;
        let n_val: usize = n_line
            .strip_prefix("n ")
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| ParseTraceError::new(lno, "expected `n <size>`"))?;
        let n = SystemSize::new(n_val)
            .map_err(|e| ParseTraceError::new(lno, format!("bad system size: {e}")))?;

        let mut builder = TraceBuilder::new(n);
        let mut decision_rounds: Option<Vec<Option<Round>>> = None;
        let mut outcome: Option<TraceOutcome> = None;
        let mut pending_faults: Option<RoundFaults> = None;

        for (lno, line) in lines {
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("round ") {
                if pending_faults.is_some() {
                    return Err(ParseTraceError::new(lno, "round without `s` line"));
                }
                let _: u32 = rest
                    .trim()
                    .parse()
                    .map_err(|_| ParseTraceError::new(lno, "bad round number"))?;
            } else if let Some(rest) = line.strip_prefix("d ") {
                if pending_faults.is_some() {
                    return Err(ParseTraceError::new(lno, "two `d` lines in one round"));
                }
                let sets = parse_set_line(rest, n, lno)?;
                pending_faults = Some(RoundFaults::from_sets(n, sets));
            } else if let Some(rest) = line.strip_prefix("s ") {
                let faults = pending_faults
                    .take()
                    .ok_or_else(|| ParseTraceError::new(lno, "`s` line without `d` line"))?;
                let heard = parse_set_line(rest, n, lno)?;
                builder.record_round(&faults, heard);
            } else if let Some(rest) = line.strip_prefix("decisions") {
                let ds: Vec<Option<Round>> = rest
                    .split_whitespace()
                    .map(|tok| {
                        if tok == "-" {
                            Ok(None)
                        } else {
                            tok.parse::<u32>()
                                .ok()
                                .filter(|&r| r > 0)
                                .map(|r| Some(Round::new(r)))
                                .ok_or_else(|| {
                                    ParseTraceError::new(lno, format!("bad decision round {tok:?}"))
                                })
                        }
                    })
                    .collect::<Result<_, _>>()?;
                if ds.len() != n.get() {
                    return Err(ParseTraceError::new(
                        lno,
                        format!("expected {} decisions, found {}", n.get(), ds.len()),
                    ));
                }
                decision_rounds = Some(ds);
            } else if let Some(rest) = line.strip_prefix("outcome ") {
                outcome = Some(parse_outcome(rest, lno)?);
            } else {
                return Err(ParseTraceError::new(
                    lno,
                    format!("unrecognised line {line:?}"),
                ));
            }
        }

        if pending_faults.is_some() {
            return Err(ParseTraceError::new(
                0,
                "trailing `d` line without `s` line",
            ));
        }
        let mut trace = builder
            .finish(outcome.ok_or_else(|| ParseTraceError::new(0, "missing `outcome` line"))?);
        if let Some(ds) = decision_rounds {
            trace.decision_rounds = ds;
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: usize) -> SystemSize {
        SystemSize::new(v).unwrap()
    }

    fn ids(xs: &[usize]) -> IdSet {
        xs.iter().map(|&i| ProcessId::new(i)).collect()
    }

    fn sample_trace() -> RunTrace {
        let size = n(3);
        let mut builder = TraceBuilder::new(size);
        let mut r1 = RoundFaults::none(size);
        r1.set(ProcessId::new(1), ids(&[2]));
        builder.record_round(&r1, vec![ids(&[0, 1, 2]), ids(&[0, 1]), ids(&[0, 1, 2])]);
        builder.record_round(&RoundFaults::none(size), vec![ids(&[0, 1, 2]); 3]);
        builder.record_decision(ProcessId::new(0), Round::new(1));
        builder.record_decision(ProcessId::new(1), Round::new(2));
        builder.record_decision(ProcessId::new(2), Round::new(2));
        builder.finish(TraceOutcome::Decided { rounds_executed: 2 })
    }

    #[test]
    fn round_trip_through_text() {
        let trace = sample_trace();
        let text = trace.to_string();
        let parsed: RunTrace = text.parse().unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn violation_outcomes_round_trip() {
        let size = n(2);
        let mut builder = TraceBuilder::new(size);
        let mut bad = RoundFaults::none(size);
        bad.set(ProcessId::new(0), IdSet::universe(size));
        builder.record_violating_round(bad);
        let trace = builder.finish(TraceOutcome::Violation(PatternViolation::IllFormed {
            process: ProcessId::new(0),
            round: Round::new(1),
        }));
        let parsed: RunTrace = trace.to_string().parse().unwrap();
        assert_eq!(parsed, trace);

        let mut builder = TraceBuilder::new(size);
        builder.record_violating_round(RoundFaults::none(size));
        let trace = builder.finish(TraceOutcome::Violation(
            PatternViolation::PredicateRejected {
                predicate: "crash(f = 1, with spaces)".to_owned(),
                round: Round::new(1),
            },
        ));
        let parsed: RunTrace = trace.to_string().parse().unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn limit_and_aborted_round_trip() {
        for outcome in [
            TraceOutcome::RoundLimit { max_rounds: 17 },
            TraceOutcome::Aborted,
        ] {
            let trace = TraceBuilder::new(n(2)).finish(outcome.clone());
            let parsed: RunTrace = trace.to_string().parse().unwrap();
            assert_eq!(parsed.outcome(), &outcome);
        }
    }

    #[test]
    fn pattern_reconstructs_all_rounds() {
        let trace = sample_trace();
        let pattern = trace.pattern();
        assert_eq!(pattern.rounds(), 2);
        assert_eq!(
            pattern.of(ProcessId::new(1), Round::new(1)),
            Some(ids(&[2]))
        );
    }

    #[test]
    fn deciders_at_groups_by_round() {
        let trace = sample_trace();
        assert_eq!(trace.deciders_at(Round::new(1)), ids(&[0]));
        assert_eq!(trace.deciders_at(Round::new(2)), ids(&[1, 2]));
    }

    #[test]
    fn first_decision_wins_in_builder() {
        let mut builder = TraceBuilder::new(n(2));
        builder.record_decision(ProcessId::new(0), Round::new(3));
        builder.record_decision(ProcessId::new(0), Round::new(5));
        let trace = builder.finish(TraceOutcome::Aborted);
        assert_eq!(trace.decision_rounds()[0], Some(Round::new(3)));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!("".parse::<RunTrace>().is_err());
        assert!("bogus header\nn 3".parse::<RunTrace>().is_err());
        // Process id outside the universe.
        let bad = "rrfd-trace v1\nn 2\nround 1\nd 5 -\ns - -\noutcome aborted\n";
        assert!(bad.parse::<RunTrace>().is_err());
        // Wrong arity.
        let bad = "rrfd-trace v1\nn 3\nround 1\nd - -\ns - - -\noutcome aborted\n";
        assert!(bad.parse::<RunTrace>().is_err());
        // Missing outcome.
        let bad = "rrfd-trace v1\nn 2\ndecisions - -\n";
        assert!(bad.parse::<RunTrace>().is_err());
    }
}
