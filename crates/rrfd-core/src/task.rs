//! Decision-task specifications and mechanical output checking.
//!
//! "An RRFD system satisfying predicate P solves a task T if … processes
//! commit to outputs that satisfy T's input/output requirements." This
//! module captures the tasks the paper studies — consensus and k-set
//! agreement (§3) — as checkable specifications, plus the adopt-commit
//! relation used by the crash-fault simulation of §4.2.

use crate::id::ProcessId;
use std::collections::BTreeSet;
use std::fmt;

/// A value processes propose and decide. All of the paper's tasks are
/// value-agnostic, so a fixed `u64` keeps the harness simple while staying
/// general (callers can index arbitrary payloads by `u64`).
pub type Value = u64;

/// Violation of a task's input/output relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskViolation {
    /// A process decided a value that was nobody's input.
    Validity {
        /// The deciding process.
        process: ProcessId,
        /// The offending decision.
        decided: Value,
    },
    /// More distinct values were decided than the task allows.
    Agreement {
        /// Distinct decided values found.
        found: usize,
        /// Maximum the task allows.
        allowed: usize,
    },
    /// A process that was required to decide did not.
    Termination {
        /// The non-deciding process.
        process: ProcessId,
    },
}

impl fmt::Display for TaskViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskViolation::Validity { process, decided } => {
                write!(f, "{process} decided {decided}, which is not any input")
            }
            TaskViolation::Agreement { found, allowed } => {
                write!(
                    f,
                    "{found} distinct values decided, at most {allowed} allowed"
                )
            }
            TaskViolation::Termination { process } => {
                write!(f, "{process} failed to decide")
            }
        }
    }
}

impl std::error::Error for TaskViolation {}

/// k-set agreement (§3): each process must decide some process's input, and
/// at most `k` distinct values may be decided system-wide. `k = 1` is
/// consensus.
///
/// # Examples
///
/// ```
/// use rrfd_core::task::KSetAgreement;
///
/// let task = KSetAgreement::new(2);
/// let inputs = [10, 20, 30];
/// assert!(task.check(&inputs, &[Some(10), Some(20), Some(10)]).is_ok());
/// assert!(task.check(&inputs, &[Some(10), Some(20), Some(30)]).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KSetAgreement {
    k: usize,
}

impl KSetAgreement {
    /// The k-set agreement task.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "k-set agreement requires k ≥ 1");
        KSetAgreement { k }
    }

    /// The consensus task (`k = 1`).
    #[must_use]
    pub fn consensus() -> Self {
        KSetAgreement { k: 1 }
    }

    /// The agreement parameter `k`.
    #[must_use]
    pub fn k(self) -> usize {
        self.k
    }

    /// Checks validity and k-agreement over the deciders. Processes with
    /// `None` outputs are ignored here; use [`KSetAgreement::check_terminating`]
    /// when every process is required to decide.
    ///
    /// # Errors
    ///
    /// Returns the first [`TaskViolation`] found: a validity breach, then an
    /// agreement breach.
    pub fn check(self, inputs: &[Value], outputs: &[Option<Value>]) -> Result<(), TaskViolation> {
        let input_set: BTreeSet<Value> = inputs.iter().copied().collect();
        let mut decided = BTreeSet::new();
        for (i, out) in outputs.iter().enumerate() {
            if let Some(v) = out {
                if !input_set.contains(v) {
                    return Err(TaskViolation::Validity {
                        process: ProcessId::new(i),
                        decided: *v,
                    });
                }
                decided.insert(*v);
            }
        }
        if decided.len() > self.k {
            return Err(TaskViolation::Agreement {
                found: decided.len(),
                allowed: self.k,
            });
        }
        Ok(())
    }

    /// Like [`KSetAgreement::check`], but additionally requires every
    /// process to have decided.
    ///
    /// # Errors
    ///
    /// Returns [`TaskViolation::Termination`] for the first non-decider, or
    /// the violations of [`KSetAgreement::check`].
    pub fn check_terminating(
        self,
        inputs: &[Value],
        outputs: &[Option<Value>],
    ) -> Result<(), TaskViolation> {
        for (i, out) in outputs.iter().enumerate() {
            if out.is_none() {
                return Err(TaskViolation::Termination {
                    process: ProcessId::new(i),
                });
            }
        }
        self.check(inputs, outputs)
    }
}

/// The output grade of the adopt-commit task (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Grade {
    /// The process adopts the value but knows agreement was not certain.
    Adopt,
    /// The process commits: everyone else adopted or committed this value.
    Commit,
}

/// An adopt-commit decision: a grade and a value.
pub type AdoptCommitOutput = (Grade, Value);

/// The adopt-commit specification of §4.2:
///
/// 1. *Convergence*: if all inputs equal `v`, every process commits `v`.
/// 2. *Agreement*: if any process commits `v`, every process commits or
///    adopts `v` (in particular no other value is output at all).
/// 3. *Validity*: every output value is some process's input.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdoptCommitSpec;

/// Violation of the adopt-commit relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdoptCommitViolation {
    /// All inputs were equal yet some process failed to commit that value.
    Convergence {
        /// The offending process.
        process: ProcessId,
    },
    /// Some process committed `v` while another output a different value.
    Agreement {
        /// The committed value.
        committed: Value,
        /// A process that output something else.
        process: ProcessId,
    },
    /// An output value was nobody's input.
    Validity {
        /// The offending process.
        process: ProcessId,
        /// The non-input value.
        value: Value,
    },
    /// A process produced no output.
    Termination {
        /// The non-deciding process.
        process: ProcessId,
    },
}

impl fmt::Display for AdoptCommitViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdoptCommitViolation::Convergence { process } => {
                write!(f, "unanimous inputs but {process} did not commit them")
            }
            AdoptCommitViolation::Agreement { committed, process } => write!(
                f,
                "{committed} was committed but {process} output a different value"
            ),
            AdoptCommitViolation::Validity { process, value } => {
                write!(f, "{process} output {value}, which is not any input")
            }
            AdoptCommitViolation::Termination { process } => {
                write!(f, "{process} produced no adopt-commit output")
            }
        }
    }
}

impl std::error::Error for AdoptCommitViolation {}

impl AdoptCommitSpec {
    /// Checks the adopt-commit relation over full outputs.
    ///
    /// # Errors
    ///
    /// Returns the first [`AdoptCommitViolation`] found, in the order
    /// termination, validity, convergence, agreement.
    pub fn check(
        self,
        inputs: &[Value],
        outputs: &[Option<AdoptCommitOutput>],
    ) -> Result<(), AdoptCommitViolation> {
        for (i, out) in outputs.iter().enumerate() {
            if out.is_none() {
                return Err(AdoptCommitViolation::Termination {
                    process: ProcessId::new(i),
                });
            }
        }
        let outs: Vec<AdoptCommitOutput> =
            outputs.iter().map(|o| o.expect("checked above")).collect();

        let input_set: BTreeSet<Value> = inputs.iter().copied().collect();
        for (i, (_, v)) in outs.iter().enumerate() {
            if !input_set.contains(v) {
                return Err(AdoptCommitViolation::Validity {
                    process: ProcessId::new(i),
                    value: *v,
                });
            }
        }

        if input_set.len() == 1 {
            let v = *input_set.iter().next().expect("non-empty inputs");
            for (i, out) in outs.iter().enumerate() {
                if *out != (Grade::Commit, v) {
                    return Err(AdoptCommitViolation::Convergence {
                        process: ProcessId::new(i),
                    });
                }
            }
        }

        for &(grade, v) in &outs {
            if grade == Grade::Commit {
                for (j, &(_, w)) in outs.iter().enumerate() {
                    if w != v {
                        return Err(AdoptCommitViolation::Agreement {
                            committed: v,
                            process: ProcessId::new(j),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consensus_is_one_set_agreement() {
        let task = KSetAgreement::consensus();
        assert_eq!(task.k(), 1);
        let inputs = [1, 2];
        assert!(task.check(&inputs, &[Some(1), Some(1)]).is_ok());
        assert_eq!(
            task.check(&inputs, &[Some(1), Some(2)]),
            Err(TaskViolation::Agreement {
                found: 2,
                allowed: 1
            })
        );
    }

    #[test]
    fn validity_is_checked_before_agreement() {
        let task = KSetAgreement::new(2);
        let inputs = [1, 2, 3];
        assert_eq!(
            task.check(&inputs, &[Some(9), Some(1), Some(2)]),
            Err(TaskViolation::Validity {
                process: ProcessId::new(0),
                decided: 9
            })
        );
    }

    #[test]
    fn non_deciders_are_tolerated_by_check_but_not_terminating() {
        let task = KSetAgreement::new(1);
        let inputs = [4, 5];
        assert!(task.check(&inputs, &[Some(4), None]).is_ok());
        assert_eq!(
            task.check_terminating(&inputs, &[Some(4), None]),
            Err(TaskViolation::Termination {
                process: ProcessId::new(1)
            })
        );
    }

    #[test]
    fn k_bound_is_tight() {
        let task = KSetAgreement::new(3);
        let inputs = [1, 2, 3, 4];
        assert!(task
            .check(&inputs, &[Some(1), Some(2), Some(3), Some(3)])
            .is_ok());
        assert!(task
            .check(&inputs, &[Some(1), Some(2), Some(3), Some(4)])
            .is_err());
    }

    #[test]
    #[should_panic(expected = "k ≥ 1")]
    fn zero_k_is_rejected() {
        let _ = KSetAgreement::new(0);
    }

    #[test]
    fn adopt_commit_convergence() {
        let spec = AdoptCommitSpec;
        let inputs = [7, 7, 7];
        let ok = vec![Some((Grade::Commit, 7)); 3];
        assert!(spec.check(&inputs, &ok).is_ok());
        let bad = vec![
            Some((Grade::Commit, 7)),
            Some((Grade::Adopt, 7)),
            Some((Grade::Commit, 7)),
        ];
        assert_eq!(
            spec.check(&inputs, &bad),
            Err(AdoptCommitViolation::Convergence {
                process: ProcessId::new(1)
            })
        );
    }

    #[test]
    fn adopt_commit_agreement() {
        let spec = AdoptCommitSpec;
        let inputs = [1, 2];
        let ok = vec![Some((Grade::Commit, 1)), Some((Grade::Adopt, 1))];
        assert!(spec.check(&inputs, &ok).is_ok());
        let bad = vec![Some((Grade::Commit, 1)), Some((Grade::Adopt, 2))];
        assert_eq!(
            spec.check(&inputs, &bad),
            Err(AdoptCommitViolation::Agreement {
                committed: 1,
                process: ProcessId::new(1)
            })
        );
    }

    #[test]
    fn adopt_commit_mixed_adopts_without_commit_are_fine() {
        let spec = AdoptCommitSpec;
        let inputs = [1, 2];
        let outs = vec![Some((Grade::Adopt, 1)), Some((Grade::Adopt, 2))];
        assert!(spec.check(&inputs, &outs).is_ok());
    }

    #[test]
    fn adopt_commit_validity_and_termination() {
        let spec = AdoptCommitSpec;
        let inputs = [1, 2];
        assert_eq!(
            spec.check(&inputs, &[Some((Grade::Adopt, 3)), Some((Grade::Adopt, 1))]),
            Err(AdoptCommitViolation::Validity {
                process: ProcessId::new(0),
                value: 3
            })
        );
        assert_eq!(
            spec.check(&inputs, &[None, Some((Grade::Adopt, 1))]),
            Err(AdoptCommitViolation::Termination {
                process: ProcessId::new(0)
            })
        );
    }

    #[test]
    fn violations_display_cleanly() {
        let v = TaskViolation::Agreement {
            found: 3,
            allowed: 2,
        };
        assert!(v.to_string().contains("3 distinct values"));
        let a = AdoptCommitViolation::Termination {
            process: ProcessId::new(1),
        };
        assert!(a.to_string().contains("p1"));
    }
}
