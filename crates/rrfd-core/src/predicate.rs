//! Predicates over fault patterns — the heart of the RRFD framework.
//!
//! The paper identifies a model with a predicate `P` over the family of sets
//! `D(i,r)`. A [`RrfdPredicate`] judges whether appending one more round to a
//! history keeps the pattern legal; every predicate in the paper is a
//! prefix-closed safety condition on finite runs, so this per-round view is
//! fully general for executable systems.
//!
//! Concrete predicates live in the `rrfd-models` crate; this module defines
//! the trait, the universal well-formedness rule (`D(i,r) ≠ S` — "not all
//! processes can be late"), and combinators for building compound predicates
//! such as the crash model (eq. 1 **and** eq. 2).

use crate::id::{ProcessId, Round, SystemSize};
use crate::idset::IdSet;
use crate::pattern::{FaultPattern, RoundFaults};
use std::fmt;

/// A predicate over fault patterns, defining one RRFD system.
///
/// Implementations must be *prefix-closed*: if `admits` accepts every round
/// of a pattern in order, the pattern is legal. The engine re-checks each
/// adversary output against the model predicate, so a buggy adversary is
/// caught at the round it misbehaves.
pub trait RrfdPredicate {
    /// Human-readable name used in diagnostics, e.g. `"P1(send-omission,f=2)"`.
    fn name(&self) -> String;

    /// The system size this predicate is defined over.
    fn system_size(&self) -> SystemSize;

    /// Returns `true` when `round` may legally extend `history`.
    ///
    /// `history` contains the rounds *before* this one; the candidate round
    /// is not yet part of it.
    fn admits(&self, history: &FaultPattern, round: &RoundFaults) -> bool;

    /// Checks an entire pattern round by round.
    fn admits_pattern(&self, pattern: &FaultPattern) -> bool {
        let mut prefix = FaultPattern::new(pattern.system_size());
        for (_, round) in pattern.iter() {
            if !self.admits(&prefix, round) {
                return false;
            }
            prefix.push(round.clone());
        }
        true
    }
}

impl<P: RrfdPredicate + ?Sized> RrfdPredicate for &P {
    fn name(&self) -> String {
        (**self).name()
    }
    fn system_size(&self) -> SystemSize {
        (**self).system_size()
    }
    fn admits(&self, history: &FaultPattern, round: &RoundFaults) -> bool {
        (**self).admits(history, round)
    }
}

impl<P: RrfdPredicate + ?Sized> RrfdPredicate for Box<P> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn system_size(&self) -> SystemSize {
        (**self).system_size()
    }
    fn admits(&self, history: &FaultPattern, round: &RoundFaults) -> bool {
        (**self).admits(history, round)
    }
}

/// The universal well-formedness rule of the framework: for every process,
/// `D(i,r) ≠ S`. "If one interprets `D(i,r)` as a set of late processes, not
/// all processes can be late."
///
/// Returns the first offending process, or `None` if the round is well
/// formed.
#[must_use]
pub fn ill_formed_process(round: &RoundFaults) -> Option<ProcessId> {
    let universe = IdSet::universe(round.system_size());
    round.iter().find(|&(_, d)| d == universe).map(|(i, _)| i)
}

/// The trivially-true predicate: any well-formed pattern is admitted.
///
/// Useful as the "weakest possible" bound in submodel experiments and as the
/// model argument when a caller only wants the engine's well-formedness
/// checking.
#[derive(Debug, Clone, Copy)]
pub struct AnyPattern {
    n: SystemSize,
}

impl AnyPattern {
    /// Creates the trivial predicate for a system of `n` processes.
    #[must_use]
    pub fn new(n: SystemSize) -> Self {
        AnyPattern { n }
    }
}

impl RrfdPredicate for AnyPattern {
    fn name(&self) -> String {
        "Any".to_owned()
    }

    fn system_size(&self) -> SystemSize {
        self.n
    }

    fn admits(&self, _history: &FaultPattern, _round: &RoundFaults) -> bool {
        true
    }
}

/// Conjunction of two predicates: `A ∧ B`.
///
/// The paper's crash model is exactly `And(P1, P2)`; the snapshot model is
/// `And(P3, containment)`. The combinator keeps each clause independently
/// reusable.
///
/// # Examples
///
/// ```
/// use rrfd_core::{And, AnyPattern, RrfdPredicate, SystemSize};
/// let n = SystemSize::new(3).unwrap();
/// let p = And::new(AnyPattern::new(n), AnyPattern::new(n));
/// assert_eq!(p.system_size(), n);
/// ```
#[derive(Debug, Clone)]
pub struct And<A, B> {
    a: A,
    b: B,
}

impl<A: RrfdPredicate, B: RrfdPredicate> And<A, B> {
    /// Combines two predicates over the same system.
    ///
    /// # Panics
    ///
    /// Panics if the predicates disagree on the system size.
    #[must_use]
    pub fn new(a: A, b: B) -> Self {
        assert_eq!(
            a.system_size(),
            b.system_size(),
            "conjoined predicates must share a system size"
        );
        And { a, b }
    }

    /// The left clause.
    #[must_use]
    pub fn left(&self) -> &A {
        &self.a
    }

    /// The right clause.
    #[must_use]
    pub fn right(&self) -> &B {
        &self.b
    }
}

impl<A: RrfdPredicate, B: RrfdPredicate> RrfdPredicate for And<A, B> {
    fn name(&self) -> String {
        format!("({} ∧ {})", self.a.name(), self.b.name())
    }

    fn system_size(&self) -> SystemSize {
        self.a.system_size()
    }

    fn admits(&self, history: &FaultPattern, round: &RoundFaults) -> bool {
        self.a.admits(history, round) && self.b.admits(history, round)
    }
}

/// Disjunction of two predicates: `A ∨ B`.
///
/// The join of the model lattice: a system that may behave like either A
/// or B (the adversary picks, round by round). Useful when asking for the
/// *weakest* RRFD equivalent to a system (§2's question 2): candidate
/// weakest models are joins of known ones.
///
/// Note that `Or` is evaluated round-wise; a pattern may interleave
/// A-rounds and B-rounds.
#[derive(Debug, Clone)]
pub struct Or<A, B> {
    a: A,
    b: B,
}

impl<A: RrfdPredicate, B: RrfdPredicate> Or<A, B> {
    /// Combines two predicates over the same system.
    ///
    /// # Panics
    ///
    /// Panics if the predicates disagree on the system size.
    #[must_use]
    pub fn new(a: A, b: B) -> Self {
        assert_eq!(
            a.system_size(),
            b.system_size(),
            "disjoined predicates must share a system size"
        );
        Or { a, b }
    }
}

impl<A: RrfdPredicate, B: RrfdPredicate> RrfdPredicate for Or<A, B> {
    fn name(&self) -> String {
        format!("({} ∨ {})", self.a.name(), self.b.name())
    }

    fn system_size(&self) -> SystemSize {
        self.a.system_size()
    }

    fn admits(&self, history: &FaultPattern, round: &RoundFaults) -> bool {
        self.a.admits(history, round) || self.b.admits(history, round)
    }
}

/// Violation raised when a fault pattern breaks a predicate or the universal
/// well-formedness rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternViolation {
    /// Some `D(i,r)` equals the full universe.
    IllFormed {
        /// The offending process.
        process: ProcessId,
        /// The round at which it happened.
        round: Round,
    },
    /// The model predicate rejected the round.
    PredicateRejected {
        /// Name of the predicate that rejected.
        predicate: String,
        /// The round at which it happened.
        round: Round,
    },
}

impl fmt::Display for PatternViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternViolation::IllFormed { process, round } => write!(
                f,
                "ill-formed round {round}: D({process},{round}) equals the whole universe"
            ),
            PatternViolation::PredicateRejected { predicate, round } => {
                write!(f, "predicate {predicate} rejected round {round}")
            }
        }
    }
}

impl std::error::Error for PatternViolation {}

/// Validates one candidate round: well-formedness first, then the model
/// predicate. Returns the violation, if any.
///
/// # Errors
///
/// Returns [`PatternViolation::IllFormed`] when some `D(i,r)` covers the
/// whole universe, and [`PatternViolation::PredicateRejected`] when the
/// model predicate refuses the extension.
pub fn validate_round<P: RrfdPredicate + ?Sized>(
    predicate: &P,
    history: &FaultPattern,
    round: &RoundFaults,
) -> Result<(), PatternViolation> {
    let round_no = Round::new(history.rounds() as u32 + 1);
    if let Some(process) = ill_formed_process(round) {
        return Err(PatternViolation::IllFormed {
            process,
            round: round_no,
        });
    }
    if !predicate.admits(history, round) {
        return Err(PatternViolation::PredicateRejected {
            predicate: predicate.name(),
            round: round_no,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n3() -> SystemSize {
        SystemSize::new(3).unwrap()
    }

    /// A predicate admitting only empty suspicion sets — used to exercise
    /// rejection paths.
    #[derive(Debug)]
    struct NoFaults(SystemSize);

    impl RrfdPredicate for NoFaults {
        fn name(&self) -> String {
            "NoFaults".into()
        }
        fn system_size(&self) -> SystemSize {
            self.0
        }
        fn admits(&self, _h: &FaultPattern, round: &RoundFaults) -> bool {
            round.union().is_empty()
        }
    }

    #[test]
    fn ill_formed_detects_full_universe() {
        let n = n3();
        let mut rf = RoundFaults::none(n);
        assert_eq!(ill_formed_process(&rf), None);
        rf.set(ProcessId::new(1), IdSet::universe(n));
        assert_eq!(ill_formed_process(&rf), Some(ProcessId::new(1)));
    }

    #[test]
    fn any_pattern_admits_everything_well_formed() {
        let n = n3();
        let p = AnyPattern::new(n);
        let h = FaultPattern::new(n);
        let mut rf = RoundFaults::none(n);
        rf.set(ProcessId::new(0), IdSet::singleton(ProcessId::new(1)));
        assert!(p.admits(&h, &rf));
        assert!(validate_round(&p, &h, &rf).is_ok());
    }

    #[test]
    fn validate_flags_ill_formed_before_predicate() {
        let n = n3();
        let p = NoFaults(n);
        let h = FaultPattern::new(n);
        let mut rf = RoundFaults::none(n);
        rf.set(ProcessId::new(2), IdSet::universe(n));
        match validate_round(&p, &h, &rf) {
            Err(PatternViolation::IllFormed { process, round }) => {
                assert_eq!(process, ProcessId::new(2));
                assert_eq!(round, Round::new(1));
            }
            other => panic!("expected IllFormed, got {other:?}"),
        }
    }

    #[test]
    fn validate_flags_predicate_rejection_with_round_number() {
        let n = n3();
        let p = NoFaults(n);
        let mut h = FaultPattern::new(n);
        h.push(RoundFaults::none(n));
        let mut rf = RoundFaults::none(n);
        rf.set(ProcessId::new(0), IdSet::singleton(ProcessId::new(1)));
        match validate_round(&p, &h, &rf) {
            Err(PatternViolation::PredicateRejected { predicate, round }) => {
                assert_eq!(predicate, "NoFaults");
                assert_eq!(round, Round::new(2));
            }
            other => panic!("expected PredicateRejected, got {other:?}"),
        }
    }

    #[test]
    fn and_combines_clauses() {
        let n = n3();
        let p = And::new(AnyPattern::new(n), NoFaults(n));
        let h = FaultPattern::new(n);
        assert!(p.admits(&h, &RoundFaults::none(n)));
        let mut rf = RoundFaults::none(n);
        rf.set(ProcessId::new(0), IdSet::singleton(ProcessId::new(1)));
        assert!(!p.admits(&h, &rf));
        assert!(p.name().contains("Any"));
        assert!(p.name().contains("NoFaults"));
    }

    #[test]
    fn or_is_the_lattice_join() {
        let n = n3();
        let p = Or::new(NoFaults(n), AnyPattern::new(n));
        let h = FaultPattern::new(n);
        let mut rf = RoundFaults::none(n);
        rf.set(ProcessId::new(0), IdSet::singleton(ProcessId::new(1)));
        // AnyPattern carries the join.
        assert!(p.admits(&h, &rf));
        assert!(p.name().contains('∨'));

        // Both sides reject ⇒ the join rejects.
        let q = Or::new(NoFaults(n), NoFaults(n));
        assert!(!q.admits(&h, &rf));
        assert!(q.admits(&h, &RoundFaults::none(n)));
    }

    #[test]
    fn and_refines_both_or_arms() {
        // A ∧ B ⇒ A ∨ B on every round: spot-check the lattice shape.
        let n = n3();
        let conj = And::new(AnyPattern::new(n), NoFaults(n));
        let disj = Or::new(AnyPattern::new(n), NoFaults(n));
        let h = FaultPattern::new(n);
        for sets in [
            vec![IdSet::empty(); 3],
            vec![
                IdSet::singleton(ProcessId::new(1)),
                IdSet::empty(),
                IdSet::empty(),
            ],
        ] {
            let rf = RoundFaults::from_sets(n, sets);
            if conj.admits(&h, &rf) {
                assert!(disj.admits(&h, &rf));
            }
        }
    }

    #[test]
    fn admits_pattern_checks_prefixes() {
        let n = n3();
        let p = NoFaults(n);
        let mut pat = FaultPattern::new(n);
        pat.push(RoundFaults::none(n));
        assert!(p.admits_pattern(&pat));
        let mut bad = RoundFaults::none(n);
        bad.set(ProcessId::new(1), IdSet::singleton(ProcessId::new(0)));
        pat.push(bad);
        assert!(!p.admits_pattern(&pat));
    }

    #[test]
    fn trait_objects_and_boxes_delegate() {
        let n = n3();
        let boxed: Box<dyn RrfdPredicate> = Box::new(AnyPattern::new(n));
        assert_eq!(boxed.system_size(), n);
        assert!(boxed.admits(&FaultPattern::new(n), &RoundFaults::none(n)));
        let by_ref: &dyn RrfdPredicate = &AnyPattern::new(n);
        assert_eq!(by_ref.name(), "Any");
    }
}
