//! Full-information protocols and knowledge tracking.
//!
//! Several of the paper's arguments "run the system in full information
//! mode": every process relays everything it knows each round, and claims
//! are made about how knowledge spreads (e.g. §2 item 4's cycle argument —
//! if after `k` rounds no process is known by all, the "does not know"
//! relation contains a cycle of length ≥ k+1, hence after `n` rounds some
//! process is known to all).
//!
//! [`KnowledgeState`] is a reusable full-information process state: it knows
//! a subset of the `n` inputs, emits its whole knowledge, and merges what it
//! receives. [`KnowledgeProtocol`] wraps it as a [`RoundProtocol`] that runs
//! for a fixed number of rounds and then reports its final knowledge.

use crate::engine::{Control, Delivery, RoundProtocol};
use crate::id::{ProcessId, Round, SystemSize};
use crate::idset::IdSet;
use std::sync::Arc;

/// What one process knows: for each originator, the originator's input if
/// it has been learned (directly or transitively).
///
/// # Examples
///
/// ```
/// use rrfd_core::{KnowledgeState, ProcessId, SystemSize};
///
/// let n = SystemSize::new(3).unwrap();
/// let mut a = KnowledgeState::with_own_input(n, ProcessId::new(0), 10);
/// let b = KnowledgeState::with_own_input(n, ProcessId::new(1), 20);
/// a.merge(&b);
/// assert_eq!(a.input_of(ProcessId::new(1)), Some(20));
/// assert_eq!(a.known().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KnowledgeState<V> {
    /// The originators whose input is recorded — kept alongside the dense
    /// values so subset tests and merges are bitmap operations, not `O(n)`
    /// `Option` walks.
    known: IdSet,
    inputs: Vec<Option<V>>,
}

impl<V: Clone + PartialEq> KnowledgeState<V> {
    /// Empty knowledge over a system of `n` processes.
    #[must_use]
    pub fn empty(n: SystemSize) -> Self {
        KnowledgeState {
            known: IdSet::empty(),
            inputs: vec![None; n.get()],
        }
    }

    /// Knowledge consisting only of one's own input.
    #[must_use]
    pub fn with_own_input(n: SystemSize, me: ProcessId, input: V) -> Self {
        let mut state = Self::empty(n);
        state.inputs[me.index()] = Some(input);
        state.known.insert(me);
        state
    }

    /// The set of originators whose input is known.
    #[must_use]
    pub fn known(&self) -> IdSet {
        self.known
    }

    /// The input of `origin`, if known.
    #[must_use]
    pub fn input_of(&self, origin: ProcessId) -> Option<V> {
        self.inputs[origin.index()].clone()
    }

    /// Learns `input` as the value of `origin`.
    ///
    /// # Panics
    ///
    /// Panics if a *different* value was already recorded for `origin` —
    /// full-information relaying never produces conflicting values for the
    /// same originator, so a conflict is a harness bug.
    pub fn learn(&mut self, origin: ProcessId, input: V) {
        match &self.inputs[origin.index()] {
            Some(existing) => assert!(
                *existing == input,
                "conflicting inputs recorded for {origin}"
            ),
            None => {
                self.inputs[origin.index()] = Some(input);
                self.known.insert(origin);
            }
        }
    }

    /// Merges everything `other` knows into `self`: a bitmap difference
    /// picks out the genuinely new originators and only their values are
    /// copied, so merging an already-absorbed state is `O(1)`.
    ///
    /// In debug builds, overlapping originators are checked for the same
    /// conflict [`KnowledgeState::learn`] panics on; release builds skip
    /// the walk.
    pub fn merge(&mut self, other: &KnowledgeState<V>) {
        debug_assert!(
            self.known
                .intersection(other.known)
                .iter()
                .all(|j| self.inputs[j.index()] == other.inputs[j.index()]),
            "conflicting inputs recorded for an overlapping originator"
        );
        let fresh = other.known.difference(self.known);
        for j in fresh.iter() {
            self.inputs[j.index()] = other.inputs[j.index()].clone();
        }
        self.known = self.known.union(fresh);
    }

    /// The known `(origin, input)` pairs in identifier order.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, &V)> + '_ {
        self.inputs
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_ref().map(|v| (ProcessId::new(i), v)))
    }
}

/// A full-information [`RoundProtocol`]: relays its entire knowledge every
/// round and decides its final [`KnowledgeState`] after `rounds` rounds.
///
/// The state is held behind an [`Arc`] and emitted by reference count, so
/// an `O(n)` knowledge vector costs one pointer copy to broadcast. Deliver
/// is copy-on-write: the state is deep-copied ([`Arc::make_mut`]) only in
/// rounds where some received message actually adds knowledge — a
/// quiesced full-information run stops allocating entirely.
#[derive(Debug, Clone)]
pub struct KnowledgeProtocol<V> {
    state: Arc<KnowledgeState<V>>,
    rounds: u32,
}

impl<V: Clone + PartialEq> KnowledgeProtocol<V> {
    /// Creates a process that starts knowing only its own input and runs for
    /// `rounds` rounds.
    #[must_use]
    pub fn new(n: SystemSize, me: ProcessId, input: V, rounds: u32) -> Self {
        KnowledgeProtocol {
            state: Arc::new(KnowledgeState::with_own_input(n, me, input)),
            rounds,
        }
    }

    /// Current knowledge (useful mid-run in hand-driven harnesses).
    #[must_use]
    pub fn state(&self) -> &KnowledgeState<V> {
        &self.state
    }
}

impl<V: Clone + PartialEq> RoundProtocol for KnowledgeProtocol<V> {
    type Msg = Arc<KnowledgeState<V>>;
    type Output = KnowledgeState<V>;

    fn emit(&mut self, _round: Round) -> Arc<KnowledgeState<V>> {
        Arc::clone(&self.state)
    }

    fn deliver(
        &mut self,
        delivery: Delivery<'_, Arc<KnowledgeState<V>>>,
    ) -> Control<KnowledgeState<V>> {
        // Copy-on-write: touch the state only if some message teaches us
        // something — a bitmap subset test per sender, no value reads.
        if delivery
            .values()
            .any(|m| !m.known().is_subset(self.state.known()))
        {
            let state = Arc::make_mut(&mut self.state);
            for msg in delivery.values() {
                state.merge(msg);
            }
        }
        if delivery.round.get() >= self.rounds {
            Control::Decide((*self.state).clone())
        } else {
            Control::Continue
        }
    }
}

/// Tracks, across a run, which process is known by whom — the "does not
/// know" relation of §2 item 4.
///
/// `knows[i]` is the set of originators whose round-1 value `p_i` has
/// (transitively) learned. A process `p_j` is *known by all* when every
/// `knows[i]` contains `j`.
#[derive(Debug, Clone)]
pub struct KnowledgeMatrix {
    n: SystemSize,
    knows: Vec<IdSet>,
}

impl KnowledgeMatrix {
    /// Initial matrix: every process knows exactly itself.
    #[must_use]
    pub fn reflexive(n: SystemSize) -> Self {
        KnowledgeMatrix {
            n,
            knows: n.processes().map(IdSet::singleton).collect(),
        }
    }

    /// The system size.
    #[must_use]
    pub fn system_size(&self) -> SystemSize {
        self.n
    }

    /// The set of originators `p_i` knows.
    #[must_use]
    pub fn knows(&self, i: ProcessId) -> IdSet {
        self.knows[i.index()]
    }

    /// Applies one gossip round: `p_i` additionally learns everything known
    /// by each `p_j` it heard from (`j ∉ D(i,r)`), where `suspected[i]`
    /// is `D(i, r)`.
    pub fn gossip_round(&mut self, suspected: &[IdSet]) {
        assert_eq!(suspected.len(), self.n.get());
        let snapshot = self.knows.clone();
        for (knows, susp) in self.knows.iter_mut().zip(suspected) {
            let heard = susp.complement(self.n);
            for j in heard.iter() {
                *knows |= snapshot[j.index()];
            }
        }
    }

    /// Processes known by *every* process.
    #[must_use]
    pub fn known_by_all(&self) -> IdSet {
        self.knows
            .iter()
            .copied()
            .fold(IdSet::universe(self.n), IdSet::intersection)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::pattern::{FaultPattern, RoundFaults};
    use crate::predicate::AnyPattern;

    fn n(v: usize) -> SystemSize {
        SystemSize::new(v).unwrap()
    }

    #[test]
    fn knowledge_merges_without_conflict() {
        let size = n(4);
        let mut a = KnowledgeState::with_own_input(size, ProcessId::new(0), 5u64);
        let mut b = KnowledgeState::with_own_input(size, ProcessId::new(1), 6u64);
        b.learn(ProcessId::new(2), 7);
        a.merge(&b);
        assert_eq!(a.known().len(), 3);
        assert_eq!(a.input_of(ProcessId::new(2)), Some(7));
        let pairs: Vec<(usize, u64)> = a.iter().map(|(p, v)| (p.index(), *v)).collect();
        assert_eq!(pairs, vec![(0, 5), (1, 6), (2, 7)]);
    }

    #[test]
    #[should_panic(expected = "conflicting inputs")]
    fn conflicting_learn_panics() {
        let size = n(2);
        let mut a = KnowledgeState::with_own_input(size, ProcessId::new(0), 1u64);
        a.learn(ProcessId::new(0), 2);
    }

    #[test]
    fn fault_free_gossip_reaches_everyone_in_one_round() {
        let size = n(5);
        struct Silent(SystemSize);
        impl crate::engine::FaultDetector for Silent {
            fn system_size(&self) -> SystemSize {
                self.0
            }
            fn next_round(&mut self, _r: Round, _h: &FaultPattern) -> RoundFaults {
                RoundFaults::none(self.0)
            }
        }
        let protos: Vec<_> = size
            .processes()
            .map(|p| KnowledgeProtocol::new(size, p, p.index() as u64, 1))
            .collect();
        let report = Engine::new(size)
            .run(protos, &mut Silent(size), &AnyPattern::new(size))
            .unwrap();
        for out in report.outputs() {
            assert_eq!(out.unwrap().known(), IdSet::universe(size));
        }
    }

    #[test]
    fn matrix_gossip_respects_suspicions() {
        let size = n(3);
        let mut m = KnowledgeMatrix::reflexive(size);
        // p0 suspects p2; p1 and p2 hear everyone.
        let susp = vec![
            IdSet::singleton(ProcessId::new(2)),
            IdSet::empty(),
            IdSet::empty(),
        ];
        m.gossip_round(&susp);
        assert!(!m.knows(ProcessId::new(0)).contains(ProcessId::new(2)));
        assert_eq!(m.knows(ProcessId::new(1)), IdSet::universe(size));
        assert_eq!(m.known_by_all(), {
            let mut s = IdSet::empty();
            s.insert(ProcessId::new(0));
            s.insert(ProcessId::new(1));
            s
        });
    }

    #[test]
    fn cycle_argument_bound_holds_on_a_ring_miss_pattern() {
        // The §2 item 4 construction: p_i misses p_{i+1 mod n} every round.
        // Under the antisymmetric predicate this is legal, and the paper
        // argues some process becomes known to all within n rounds.
        let size = n(6);
        let mut m = KnowledgeMatrix::reflexive(size);
        let susp: Vec<IdSet> = (0..6)
            .map(|i| IdSet::singleton(ProcessId::new((i + 1) % 6)))
            .collect();
        let mut rounds_needed = None;
        for r in 1..=6 {
            m.gossip_round(&susp);
            if !m.known_by_all().is_empty() {
                rounds_needed = Some(r);
                break;
            }
        }
        let r = rounds_needed.expect("someone must be known to all within n rounds");
        assert!(r <= 6);
    }
}
