//! Shared helpers for the workspace's line-oriented text formats.
//!
//! Three serialized artifacts share one dialect: run traces
//! (`rrfd-trace v1`, [`crate::RunTrace`]), scheduler traces
//! (`rrfd-sched v1`, `rrfd-sims::trace::ScheduleTrace`) and runtime event
//! logs (`rrfd-events v1`, [`crate::EventLog`]). Each is a versioned header
//! line followed by one record per line, with process ids written as
//! decimal indices, process sets as comma-separated indices (`-` for the
//! empty set), and named fields as `key=value` tokens. This module is the
//! single definition of those primitives, so every parser in the workspace
//! accepts and produces the same syntax — the `rrfd-analyze` tooling
//! consumes all three formats through these helpers.

use crate::id::{ProcessId, SystemSize, MAX_PROCESSES};
use crate::idset::IdSet;
use std::fmt;

/// A parse failure in any line-oriented format: the 1-based line number and
/// a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineError {
    /// 1-based line number of the offending line (0 when the problem is the
    /// document as a whole, e.g. a missing trailer).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl LineError {
    /// Creates an error at `line`.
    #[must_use]
    pub fn new(line: usize, message: impl Into<String>) -> Self {
        LineError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for LineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LineError {}

/// Parses a process id token (a decimal index), range-checked against
/// [`MAX_PROCESSES`].
///
/// # Errors
///
/// Returns a description of the malformed token.
pub fn parse_process_id(token: &str) -> Result<ProcessId, String> {
    let idx: usize = token
        .parse()
        .map_err(|_| format!("bad process id {token:?}"))?;
    if idx >= MAX_PROCESSES {
        return Err(format!("process id {idx} out of range"));
    }
    Ok(ProcessId::new(idx))
}

/// Parses a process-set token: `-` for the empty set, otherwise
/// comma-separated indices, each checked against the `n`-process universe.
///
/// # Errors
///
/// Returns a description of the malformed token or out-of-universe id.
pub fn parse_idset(token: &str, n: SystemSize) -> Result<IdSet, String> {
    if token == "-" {
        return Ok(IdSet::empty());
    }
    let mut set = IdSet::empty();
    for part in token.split(',') {
        let id = parse_process_id(part)?;
        if !n.contains(id) {
            return Err(format!(
                "process id {} outside the {}-process universe",
                id.index(),
                n.get()
            ));
        }
        set.insert(id);
    }
    Ok(set)
}

/// Displays a process set in the shared token syntax (`-` / `0,2,3`).
///
/// # Examples
///
/// ```
/// use rrfd_core::{lineformat::DisplayIdSet, IdSet, ProcessId};
/// assert_eq!(DisplayIdSet(IdSet::empty()).to_string(), "-");
/// let set = IdSet::singleton(ProcessId::new(2));
/// assert_eq!(DisplayIdSet(set).to_string(), "2");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct DisplayIdSet(pub IdSet);

impl fmt::Display for DisplayIdSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return f.write_str("-");
        }
        for (k, p) in self.0.iter().enumerate() {
            if k > 0 {
                f.write_str(",")?;
            }
            write!(f, "{}", p.index())?;
        }
        Ok(())
    }
}

/// Extracts the value of a `key=value` token, verifying the key.
///
/// # Errors
///
/// Returns a description when the token is not `key=...`.
pub fn parse_kv<'a>(token: &'a str, key: &str) -> Result<&'a str, String> {
    token
        .strip_prefix(key)
        .and_then(|t| t.strip_prefix('='))
        .ok_or_else(|| format!("expected `{key}=...`, found {token:?}"))
}

/// Checks the versioned header line and returns an iterator over the
/// remaining non-empty lines as `(1-based line number, trimmed text)`.
///
/// # Errors
///
/// Returns a [`LineError`] when the first line is not exactly `header`.
pub fn body_lines<'a>(
    text: &'a str,
    header: &str,
) -> Result<impl Iterator<Item = (usize, &'a str)>, LineError> {
    let mut lines = text.lines();
    match lines.next() {
        Some(first) if first.trim() == header => {}
        other => {
            return Err(LineError::new(
                1,
                format!(
                    "expected header {header:?}, got {:?}",
                    other.unwrap_or_default()
                ),
            ))
        }
    }
    Ok(text
        .lines()
        .enumerate()
        .skip(1)
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: usize) -> SystemSize {
        SystemSize::new(v).unwrap()
    }

    #[test]
    fn process_ids_parse_and_reject() {
        assert_eq!(parse_process_id("3"), Ok(ProcessId::new(3)));
        assert!(parse_process_id("x").is_err());
        assert!(parse_process_id("-1").is_err());
        assert!(parse_process_id("9999").is_err());
    }

    #[test]
    fn idsets_round_trip_through_tokens() {
        let size = n(4);
        for set in [
            IdSet::empty(),
            IdSet::singleton(ProcessId::new(1)),
            IdSet::universe(size),
        ] {
            let token = DisplayIdSet(set).to_string();
            assert_eq!(parse_idset(&token, size), Ok(set), "{token}");
        }
        assert!(parse_idset("7", size).is_err(), "outside the universe");
        assert!(parse_idset("0,,1", size).is_err());
    }

    #[test]
    fn kv_tokens_are_checked() {
        assert_eq!(parse_kv("r=17", "r"), Ok("17"));
        assert!(parse_kv("round17", "round").is_err());
        assert!(parse_kv("s=17", "r").is_err());
    }

    #[test]
    fn body_lines_requires_the_header() {
        let doc = "hdr v1\n\n a b \nlast\n";
        let lines: Vec<_> = body_lines(doc, "hdr v1").unwrap().collect();
        assert_eq!(lines, vec![(3, "a b"), (4, "last")]);
        assert!(body_lines(doc, "other v1").is_err());
        assert!(body_lines("", "hdr v1").is_err());
    }

    #[test]
    fn line_error_displays_its_position() {
        let e = LineError::new(7, "boom");
        assert_eq!(e.to_string(), "parse error at line 7: boom");
    }
}
