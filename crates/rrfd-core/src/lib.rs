//! Core model of **round-by-round fault detectors** (RRFDs), after
//! Eli Gafni, *"Round-by-Round Fault Detectors: Unifying Synchrony and
//! Asynchrony"*, PODC 1998.
//!
//! An RRFD system evolves in communication-closed rounds. In round `r`
//! every process emits a message; process `p_i` then waits until, for every
//! `p_j`, it has either received `p_j`'s round-`r` message or been told by
//! the fault detector that `p_j ∈ D(i,r)` is faulty *for this round*. The
//! defining insight is that the detector is not a helpful oracle bolted onto
//! an asynchronous system but an **adversary that is part of the system**:
//! a concrete model is exactly a predicate `P` constraining the family
//! `{D(i,r)}`.
//!
//! This crate provides the machinery every other workspace crate builds on:
//!
//! * [`ProcessId`], [`SystemSize`], [`Round`] — the process universe.
//! * [`IdSet`] — allocation-free sets of processes.
//! * [`RoundFaults`], [`FaultPattern`] — one round of suspicion sets, and a
//!   recorded history.
//! * [`RrfdPredicate`] and combinators — models as predicates.
//! * [`Engine`], [`RoundProtocol`], [`FaultDetector`] — the emit/receive
//!   loop from Section 1 of the paper, with mechanical validation of every
//!   adversary move.
//! * [`KnowledgeState`], [`KnowledgeMatrix`] — full-information runs and the
//!   knowledge-spread arguments of §2 item 4.
//! * [`RunTrace`], [`TraceBuilder`] — serializable records of whole runs
//!   (every `D(i,r)`, every `S(i,r)`, decisions, violations) for the
//!   capture → replay debugging workflow.
//! * [`EventLog`], [`RtEvent`] — runtime-level event records (channel
//!   sends/receives, shared-state accesses) consumed by the happens-before
//!   race checker in `rrfd-analyze`; [`lineformat`] holds the shared
//!   line-oriented serialization dialect all trace formats use.
//! * [`task`] — checkable task specifications (consensus, k-set agreement,
//!   adopt-commit).
//!
//! Concrete predicates and adversaries live in `rrfd-models`; classical
//! system simulators in `rrfd-sims`; the paper's algorithms in
//! `rrfd-protocols`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod events;
mod full_info;
mod id;
mod idset;
pub mod lineformat;
mod pattern;
mod predicate;
pub mod task;
mod trace;

pub use engine::{
    Control, Delivery, Engine, EngineError, EngineRun, EngineStep, FaultDetector, FinishedRun,
    RoundHook, RoundProtocol, RunReport, DEFAULT_MAX_ROUNDS,
};
pub use events::{Actor, EventLog, RtEvent, RtEventKind};
pub use full_info::{KnowledgeMatrix, KnowledgeProtocol, KnowledgeState};
pub use id::{InvalidSystemSize, ProcessId, Round, SystemSize, MAX_PROCESSES};
pub use idset::{IdSet, Iter};
pub use lineformat::LineError;
pub use pattern::{FaultPattern, RoundFaults};
pub use predicate::{
    ill_formed_process, validate_round, And, AnyPattern, Or, PatternViolation, RrfdPredicate,
};
pub use trace::{ParseTraceError, RunTrace, TraceBuilder, TraceOutcome, TraceRound};
