//! The emit/receive round engine — the paper's abstract algorithm skeleton.
//!
//! ```text
//! r := 1
//! forever do
//!     compute messages m_{i,r} for round r
//!     emit m_{i,r}
//!     (wait until) ∀ p_j ∈ S: received m_{j,r} or p_j ∈ D(i,r)
//!     r := r + 1
//! end
//! ```
//!
//! [`Engine::run`] drives a vector of [`RoundProtocol`] instances against a
//! [`FaultDetector`] (the adversary), validating every adversary output
//! against the model predicate and recording the fault pattern so the run
//! can be audited afterwards.

use crate::id::{ProcessId, Round, SystemSize};
use crate::idset::IdSet;
use crate::pattern::{FaultPattern, RoundFaults};
use crate::predicate::{validate_round, PatternViolation, RrfdPredicate};
use crate::trace::{RunTrace, TraceBuilder, TraceOutcome};
use rrfd_obs::{names, Labels, Obs, SpanKind, SpanPhase};
use std::fmt;

/// A round-by-round fault detector, viewed as an adversary: at each round it
/// chooses the suspicion sets `D(i,r)` for every process, constrained (and
/// checked by the engine) against the model predicate.
pub trait FaultDetector {
    /// The system size the detector serves.
    fn system_size(&self) -> SystemSize;

    /// Produces the suspicion sets for the next round, given the recorded
    /// history of previous rounds.
    fn next_round(&mut self, round: Round, history: &FaultPattern) -> RoundFaults;
}

impl<D: FaultDetector + ?Sized> FaultDetector for &mut D {
    fn system_size(&self) -> SystemSize {
        (**self).system_size()
    }
    fn next_round(&mut self, round: Round, history: &FaultPattern) -> RoundFaults {
        (**self).next_round(round, history)
    }
}

impl<D: FaultDetector + ?Sized> FaultDetector for Box<D> {
    fn system_size(&self) -> SystemSize {
        (**self).system_size()
    }
    fn next_round(&mut self, round: Round, history: &FaultPattern) -> RoundFaults {
        (**self).next_round(round, history)
    }
}

/// What a process sees at the end of a round: a masked view into the
/// round's shared emission table plus the set of processes its fault
/// detector told it not to wait for.
///
/// Every recipient of a round borrows the *same* table — each message is
/// emitted once and never cloned per recipient. The view enforces the
/// paper's covering property `S(i,r) ∪ D(i,r) = S`: [`Delivery::get`]
/// returns `Some` exactly when the sender emitted this round and is not in
/// `suspected`, so a suspected sender's message is unobservable even though
/// the recipient physically holds the table. This masking is what makes
/// sharing sound: protocols only *read* deliveries (see `DESIGN.md` §12).
/// Note that `p_i ∈ suspected` is allowed — a process may be "late to its
/// own round" — in which case it still knows its own message through its
/// local state.
#[derive(Debug)]
pub struct Delivery<'a, M> {
    /// The round that just completed.
    pub round: Round,
    /// The receiving process.
    pub me: ProcessId,
    /// The set `D(me, round)`.
    pub suspected: IdSet,
    /// The shared emission table: `messages[j]` is `m_{j,r}` if `p_j`
    /// emitted this round. Access goes through the masking accessors.
    messages: &'a [Option<M>],
    /// `S(me, round)`: senders that emitted and are not suspected.
    visible: IdSet,
}

impl<'a, M> Delivery<'a, M> {
    /// Builds the round view for `me`: `messages[j]` is the message `p_j`
    /// emitted this round (`None` if it did not emit, e.g. it crashed in a
    /// simulator), and `suspected` is `D(me, round)`. Messages from
    /// suspected senders are masked out of every accessor.
    #[must_use]
    pub fn new(round: Round, me: ProcessId, messages: &'a [Option<M>], suspected: IdSet) -> Self {
        let mut visible = IdSet::empty();
        for (j, m) in messages.iter().enumerate() {
            let j = ProcessId::new(j);
            if m.is_some() && !suspected.contains(j) {
                visible.insert(j);
            }
        }
        Delivery {
            round,
            me,
            suspected,
            messages,
            visible,
        }
    }

    /// The message of `p_j`, or `None` when `p_j` is suspected (or never
    /// emitted). The borrow lives as long as the round's table, not this
    /// view.
    #[must_use]
    pub fn get(&self, j: ProcessId) -> Option<&'a M> {
        if self.visible.contains(j) {
            self.messages[j.index()].as_ref()
        } else {
            None
        }
    }

    /// The set `S(i,r)` of processes whose message arrived.
    #[must_use]
    pub fn heard_from(&self) -> IdSet {
        self.visible
    }

    /// The `(sender, message)` pairs that arrived, in identifier order.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, &'a M)> + '_ {
        self.visible
            .iter()
            .filter_map(move |j| self.messages[j.index()].as_ref().map(|m| (j, m)))
    }

    /// The messages that arrived, in sender-identifier order.
    pub fn values(&self) -> impl Iterator<Item = &'a M> + '_ {
        self.iter().map(|(_, m)| m)
    }
}

/// A process's verdict after a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control<O> {
    /// Keep running; compute the next round's message.
    Continue,
    /// Commit to an output. The process keeps participating in subsequent
    /// rounds (the abstract loop runs forever) but its decision is final.
    Decide(O),
}

/// A process in an RRFD computation: computes a message per round and folds
/// in what the round delivered.
pub trait RoundProtocol {
    /// Per-round message type.
    type Msg: Clone;
    /// Decision value type.
    type Output: Clone;

    /// Computes the message `m_{i,r}` to emit at `round`.
    fn emit(&mut self, round: Round) -> Self::Msg;

    /// Consumes the round's delivery; may decide.
    fn deliver(&mut self, delivery: Delivery<'_, Self::Msg>) -> Control<Self::Output>;
}

/// The outcome of [`Engine::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport<O> {
    /// `decisions[i]` is `Some` once `p_i` decided, with the round at which
    /// it did.
    pub decisions: Vec<Option<(O, Round)>>,
    /// The full fault pattern the detector produced.
    pub pattern: FaultPattern,
    /// Number of rounds executed.
    pub rounds_executed: u32,
}

impl<O: Clone> RunReport<O> {
    /// `true` when every process decided.
    #[must_use]
    pub fn all_decided(&self) -> bool {
        self.decisions.iter().all(Option::is_some)
    }

    /// The decision values without their rounds, aligned by process.
    #[must_use]
    pub fn outputs(&self) -> Vec<Option<O>> {
        self.decisions
            .iter()
            .map(|d| d.as_ref().map(|(v, _)| v.clone()))
            .collect()
    }

    /// The latest round at which any process decided, if all decided.
    #[must_use]
    pub fn decision_round(&self) -> Option<Round> {
        self.decisions
            .iter()
            .map(|d| d.as_ref().map(|&(_, r)| r))
            .collect::<Option<Vec<_>>>()
            .and_then(|rs| rs.into_iter().max())
    }
}

/// Errors surfaced by [`Engine::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The adversary produced an illegal round (caught by validation).
    Violation(PatternViolation),
    /// The protocol vector does not match the system size.
    WrongProcessCount {
        /// Number of protocol instances supplied.
        supplied: usize,
        /// System size expected.
        expected: usize,
    },
    /// `max_rounds` elapsed before every process decided.
    RoundLimitExceeded {
        /// The configured limit.
        max_rounds: u32,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Violation(v) => write!(f, "adversary violation: {v}"),
            EngineError::WrongProcessCount { supplied, expected } => write!(
                f,
                "supplied {supplied} protocol instances for a system of {expected} processes"
            ),
            EngineError::RoundLimitExceeded { max_rounds } => {
                write!(f, "no full decision after {max_rounds} rounds")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<PatternViolation> for EngineError {
    fn from(v: PatternViolation) -> Self {
        EngineError::Violation(v)
    }
}

/// Drives protocols against a fault detector under a model predicate.
///
/// # Examples
///
/// Echo protocols that decide on the set of processes heard from in round 1:
///
/// ```
/// use rrfd_core::{
///     AnyPattern, Control, Delivery, Engine, FaultDetector, FaultPattern, IdSet,
///     Round, RoundFaults, RoundProtocol, SystemSize,
/// };
///
/// struct Echo;
/// impl RoundProtocol for Echo {
///     type Msg = ();
///     type Output = IdSet;
///     fn emit(&mut self, _r: Round) {}
///     fn deliver(&mut self, d: Delivery<'_, ()>) -> Control<IdSet> {
///         Control::Decide(d.heard_from())
///     }
/// }
///
/// struct Silent(SystemSize);
/// impl FaultDetector for Silent {
///     fn system_size(&self) -> SystemSize { self.0 }
///     fn next_round(&mut self, _r: Round, _h: &FaultPattern) -> RoundFaults {
///         RoundFaults::none(self.0)
///     }
/// }
///
/// let n = SystemSize::new(3).unwrap();
/// let report = Engine::new(n)
///     .run(vec![Echo, Echo, Echo], &mut Silent(n), &AnyPattern::new(n))
///     .unwrap();
/// assert!(report.all_decided());
/// assert_eq!(report.rounds_executed, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    n: SystemSize,
    max_rounds: u32,
    obs: Obs,
    instance: u64,
}

/// Default bound on rounds before the engine reports
/// [`EngineError::RoundLimitExceeded`].
pub const DEFAULT_MAX_ROUNDS: u32 = 10_000;

impl Engine {
    /// Creates an engine for a system of `n` processes with the default
    /// round limit.
    #[must_use]
    pub fn new(n: SystemSize) -> Self {
        Engine {
            n,
            max_rounds: DEFAULT_MAX_ROUNDS,
            obs: Obs::noop(),
            instance: 0,
        }
    }

    /// Sets the maximum number of rounds before the run is abandoned.
    #[must_use]
    pub fn max_rounds(mut self, max_rounds: u32) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Attaches an observability handle. Every run then records
    /// round-structured metrics — rounds, message counts, `|D(i,r)|` and
    /// `|S(i,r)|` size histograms, decisions, round latency — under the
    /// `rrfd_engine_*` names. The default is [`Obs::noop`], which records
    /// nothing and costs one branch per call site.
    #[must_use]
    pub fn obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Sets the instance id stamped on this engine's causal spans. Span
    /// and parent ids are pure functions of `(instance, round, process)`,
    /// so multiplexed substrates (the batch pool) give each admitted run
    /// a distinct id to keep their span trees disjoint. Defaults to 0.
    #[must_use]
    pub fn instance(mut self, instance: u64) -> Self {
        self.instance = instance;
        self
    }

    /// The system size.
    #[must_use]
    pub fn system_size(&self) -> SystemSize {
        self.n
    }

    /// Runs the protocols to completion (all decided) or to the round limit.
    ///
    /// Each round: every process emits; the detector chooses `D(i,r)`; the
    /// engine validates the round against `model`; every process receives
    /// `m_{j,r}` for each `j ∉ D(i,r)` plus its suspicion set.
    ///
    /// # Errors
    ///
    /// * [`EngineError::WrongProcessCount`] if `protocols.len() != n`.
    /// * [`EngineError::Violation`] if the detector breaks well-formedness
    ///   or the model predicate.
    /// * [`EngineError::RoundLimitExceeded`] if some process never decides.
    pub fn run<P, D, Q>(
        &self,
        protocols: Vec<P>,
        detector: &mut D,
        model: &Q,
    ) -> Result<RunReport<P::Output>, EngineError>
    where
        P: RoundProtocol,
        D: FaultDetector + ?Sized,
        Q: RrfdPredicate + ?Sized,
    {
        self.start(protocols, detector, model)?
            .run_to_completion()
            .result
    }

    /// Like [`Engine::run`], but also records a [`RunTrace`] of everything
    /// the adversary did — even (especially) when the run fails. The trace
    /// can be serialized, diffed, and replayed bit-for-bit through a replay
    /// detector, which is the debugging workflow for any failing run.
    pub fn run_traced<P, D, Q>(
        &self,
        protocols: Vec<P>,
        detector: &mut D,
        model: &Q,
    ) -> (Result<RunReport<P::Output>, EngineError>, RunTrace)
    where
        P: RoundProtocol,
        D: FaultDetector + ?Sized,
        Q: RrfdPredicate + ?Sized,
    {
        match self.start_traced(protocols, detector, model) {
            Ok(run) => {
                let finished = run.run_to_completion();
                let trace = match finished.trace {
                    Some(trace) => trace,
                    // Unreachable (start_traced always arms the builder),
                    // but kept total: an absent trace reads as aborted.
                    None => TraceBuilder::new(self.n).finish(TraceOutcome::Aborted),
                };
                (finished.result, trace)
            }
            Err(err) => (
                Err(err),
                TraceBuilder::new(self.n).finish(TraceOutcome::Aborted),
            ),
        }
    }

    /// Starts a resumable run: the returned [`EngineRun`] executes one
    /// round per [`EngineRun::step`] call instead of running to
    /// completion. This is the multiplexing seam the batch execution pool
    /// is built on — one OS thread can round-robin thousands of
    /// independent `EngineRun`s, each stepping a round at a time.
    ///
    /// Unlike [`Engine::run`], the run owns its detector and model (use
    /// `&mut D` / `&Q` via the blanket impls to borrow instead).
    ///
    /// # Errors
    ///
    /// [`EngineError::WrongProcessCount`] if `protocols.len() != n`. All
    /// other errors surface through stepping.
    pub fn start<P, D, Q>(
        &self,
        protocols: Vec<P>,
        detector: D,
        model: Q,
    ) -> Result<EngineRun<P, D, Q>, EngineError>
    where
        P: RoundProtocol,
        D: FaultDetector,
        Q: RrfdPredicate,
    {
        self.start_with(protocols, detector, model, false, Vec::new())
    }

    /// [`Engine::start`] with trace capture armed: the finished run's
    /// [`FinishedRun::trace`] is `Some`, byte-identical to what
    /// [`Engine::run_traced`] would have produced.
    ///
    /// # Errors
    ///
    /// As [`Engine::start`].
    pub fn start_traced<P, D, Q>(
        &self,
        protocols: Vec<P>,
        detector: D,
        model: Q,
    ) -> Result<EngineRun<P, D, Q>, EngineError>
    where
        P: RoundProtocol,
        D: FaultDetector,
        Q: RrfdPredicate,
    {
        self.start_with(protocols, detector, model, true, Vec::new())
    }

    /// [`Engine::start`] reusing a retired run's emission-table buffer
    /// (see [`FinishedRun::buffer`]): the new run's steady-state rounds
    /// then allocate nothing even on their first round. This is the slab
    /// lifecycle the batch pool's shards use to keep instance turnover
    /// allocation-free.
    ///
    /// # Errors
    ///
    /// As [`Engine::start`].
    pub fn start_with_buffer<P, D, Q>(
        &self,
        protocols: Vec<P>,
        detector: D,
        model: Q,
        buffer: Vec<Option<P::Msg>>,
    ) -> Result<EngineRun<P, D, Q>, EngineError>
    where
        P: RoundProtocol,
        D: FaultDetector,
        Q: RrfdPredicate,
    {
        self.start_with(protocols, detector, model, false, buffer)
    }

    fn start_with<P, D, Q>(
        &self,
        protocols: Vec<P>,
        detector: D,
        model: Q,
        traced: bool,
        mut buffer: Vec<Option<P::Msg>>,
    ) -> Result<EngineRun<P, D, Q>, EngineError>
    where
        P: RoundProtocol,
        D: FaultDetector,
        Q: RrfdPredicate,
    {
        if protocols.len() != self.n.get() {
            return Err(EngineError::WrongProcessCount {
                supplied: protocols.len(),
                expected: self.n.get(),
            });
        }
        let n = self.n.get();
        buffer.clear();
        buffer.reserve(n);
        Ok(EngineRun {
            n: self.n,
            max_rounds: self.max_rounds,
            obs: self.obs.clone(),
            instance: self.instance,
            run_start_ns: self.obs.now_ns(),
            round_hook: None,
            protocols,
            detector,
            model,
            pattern: FaultPattern::new(self.n),
            decisions: vec![None; n],
            messages: buffer,
            next_round: 1,
            trace: traced.then(|| TraceBuilder::new(self.n)),
            finished_trace: None,
            done: None,
        })
    }
}

/// A per-round observation callback installed on an [`EngineRun`] via
/// [`EngineRun::set_round_hook`]: called once per executed round with the
/// validated (or, on the violation path, violating) suspicion sets —
/// exactly the rounds a captured [`RunTrace`] would record. This is the
/// seam the conformance monitor hangs off: substrates that multiplex runs
/// (the batch pool) feed each instance's monitor without the engine
/// knowing what a predicate zoo is.
pub struct RoundHook(Box<dyn FnMut(&RoundFaults) + Send>);

impl RoundHook {
    /// Wraps `hook` as a round observation callback.
    pub fn new<F: FnMut(&RoundFaults) + Send + 'static>(hook: F) -> Self {
        RoundHook(Box::new(hook))
    }
}

impl fmt::Debug for RoundHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RoundHook(..)")
    }
}

/// What one [`EngineRun::step`] call reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineStep {
    /// A round executed and the run can continue: not every process has
    /// decided and no terminal condition was hit.
    Running,
    /// The run is terminal — all processes decided, the adversary violated
    /// the model, or the round limit elapsed. Stepping again is a no-op
    /// that reports `Finished` again; collect the result with
    /// [`EngineRun::run_to_completion`].
    Finished,
}

/// A finished [`EngineRun`], dismantled into its products.
#[derive(Debug)]
pub struct FinishedRun<O: Clone, M> {
    /// The run's outcome, exactly as [`Engine::run`] would report it.
    pub result: Result<RunReport<O>, EngineError>,
    /// The captured trace when the run was started with
    /// [`Engine::start_traced`]; `None` otherwise.
    pub trace: Option<RunTrace>,
    /// The run's emission-table buffer, cleared, for reuse via
    /// [`Engine::start_with_buffer`].
    pub buffer: Vec<Option<M>>,
}

/// A resumable run: [`Engine::start`]'s handle, executing one round per
/// [`EngineRun::step`] call.
///
/// The round semantics are *the* engine semantics — [`Engine::run`] and
/// [`Engine::run_traced`] are thin loops over this type — so a run stepped
/// to completion is decision- and trace-identical to a `run` call with the
/// same inputs (the batch pool's differential suite pins this).
#[derive(Debug)]
pub struct EngineRun<P: RoundProtocol, D, Q> {
    n: SystemSize,
    max_rounds: u32,
    obs: Obs,
    instance: u64,
    run_start_ns: u64,
    round_hook: Option<RoundHook>,
    protocols: Vec<P>,
    detector: D,
    model: Q,
    pattern: FaultPattern,
    decisions: Vec<Option<(P::Output, Round)>>,
    // The round's emission table, reused across rounds so steady-state
    // rounds are allocation-free. Every recipient borrows this one table
    // through its `Delivery` view — no per-recipient clones.
    messages: Vec<Option<P::Msg>>,
    next_round: u32,
    trace: Option<TraceBuilder>,
    finished_trace: Option<RunTrace>,
    done: Option<Result<RunReport<P::Output>, EngineError>>,
}

impl<P, D, Q> EngineRun<P, D, Q>
where
    P: RoundProtocol,
    D: FaultDetector,
    Q: RrfdPredicate,
{
    /// The system size of the run.
    #[must_use]
    pub fn system_size(&self) -> SystemSize {
        self.n
    }

    /// Rounds executed so far.
    #[must_use]
    pub fn rounds_executed(&self) -> u32 {
        self.next_round - 1
    }

    /// `true` once the run hit a terminal state.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.done.is_some()
    }

    /// Installs (or replaces) the per-round observation hook; see
    /// [`RoundHook`].
    pub fn set_round_hook(&mut self, hook: RoundHook) {
        self.round_hook = Some(hook);
    }

    /// Overrides the instance id stamped on this run's causal spans
    /// (normally inherited from [`Engine::instance`]). The pool calls this
    /// per admitted instance so span trees from multiplexed runs stay
    /// disjoint.
    pub fn set_instance(&mut self, instance: u64) {
        self.instance = instance;
    }

    /// Executes one round (emit → detect/validate → deliver), or reports
    /// [`EngineStep::Finished`] without executing anything when the run is
    /// already terminal.
    pub fn step(&mut self) -> EngineStep {
        if self.done.is_some() {
            return EngineStep::Finished;
        }
        let round_no = self.next_round;
        if round_no > self.max_rounds {
            self.finish(
                Err(EngineError::RoundLimitExceeded {
                    max_rounds: self.max_rounds,
                }),
                TraceOutcome::RoundLimit {
                    max_rounds: self.max_rounds,
                },
            );
            return EngineStep::Finished;
        }

        let n = self.n.get();
        let round = Round::new(round_no);
        let span = self.obs.round_enter(Labels::round(round_no));

        // Emit phase: one message per emitter, shared by all recipients.
        self.messages.clear();
        self.messages
            .extend(self.protocols.iter_mut().map(|p| Some(p.emit(round))));
        self.obs
            .add(names::ENGINE_ROUNDS, Labels::round(round_no), 1);
        self.obs.add(
            names::ENGINE_MESSAGES_EMITTED,
            Labels::round(round_no),
            n as u64,
        );
        self.obs.close_span(
            self.instance,
            SpanKind::Phase(SpanPhase::Emit),
            round_no,
            None,
            span.start_ns(),
        );

        // The detector chooses and the engine validates D(·, r).
        let faults = self.detector.next_round(round, &self.pattern);
        if let Err(violation) = validate_round(&self.model, &self.pattern, &faults) {
            self.obs
                .add(names::ENGINE_VIOLATIONS, Labels::round(round_no), 1);
            if let Some(RoundHook(hook)) = self.round_hook.as_mut() {
                // The hook sees the violating round too — it is exactly
                // what a captured trace records as evidence.
                hook(&faults);
            }
            self.obs.round_exit(names::ENGINE_ROUND_LATENCY, span);
            self.obs.close_span(
                self.instance,
                SpanKind::Round,
                round_no,
                None,
                span.start_ns(),
            );
            // Keep the offending round in the trace: it is the evidence.
            if let Some(t) = self.trace.as_mut() {
                t.record_violating_round(faults);
            }
            self.finish(
                Err(violation.clone().into()),
                TraceOutcome::Violation(violation),
            );
            return EngineStep::Finished;
        }

        // Receive phase: p_i sees m_{j,r} iff j ∉ D(i,r), through a
        // masked view of the shared table.
        let deliver_start = self.obs.now_ns();
        let mut heard: Option<Vec<IdSet>> = self.trace.is_some().then(|| Vec::with_capacity(n));
        for (i, protocol) in self.protocols.iter_mut().enumerate() {
            let me = ProcessId::new(i);
            let suspected = faults.of(me);
            let delivery = Delivery::new(round, me, &self.messages, suspected);
            let heard_set = delivery.heard_from();
            if self.obs.is_enabled() {
                let labels = Labels::process_round(i, round_no);
                self.obs.add(
                    names::ENGINE_MESSAGES_RECEIVED,
                    labels,
                    heard_set.len() as u64,
                );
                self.obs.add(
                    names::ENGINE_DELIVERIES_SHARED,
                    labels,
                    heard_set.len() as u64,
                );
                self.obs
                    .observe(names::ENGINE_HEARD_SIZE, labels, heard_set.len() as u64);
                self.obs
                    .observe(names::ENGINE_SUSPICION_SIZE, labels, suspected.len() as u64);
            }
            if let Some(h) = heard.as_mut() {
                h.push(heard_set);
            }
            if let Control::Decide(value) = protocol.deliver(delivery) {
                // First decision wins; later Decide outputs are ignored,
                // matching "commit to outputs".
                if self.decisions[i].is_none() {
                    self.decisions[i] = Some((value, round));
                    if let Some(t) = self.trace.as_mut() {
                        t.record_decision(me, round);
                    }
                    self.obs.add(
                        names::ENGINE_DECISIONS,
                        Labels::process_round(i, round_no),
                        1,
                    );
                    self.obs.close_span(
                        self.instance,
                        SpanKind::Phase(SpanPhase::Decide),
                        round_no,
                        Some(i as u32),
                        deliver_start,
                    );
                }
            }
        }

        self.obs.close_span(
            self.instance,
            SpanKind::Phase(SpanPhase::Deliver),
            round_no,
            None,
            deliver_start,
        );
        if let (Some(t), Some(h)) = (self.trace.as_mut(), heard.take()) {
            t.record_round(&faults, h);
        }
        if let Some(RoundHook(hook)) = self.round_hook.as_mut() {
            hook(&faults);
        }
        self.pattern.push(faults);
        self.obs.round_exit(names::ENGINE_ROUND_LATENCY, span);
        self.obs.close_span(
            self.instance,
            SpanKind::Round,
            round_no,
            None,
            span.start_ns(),
        );
        self.next_round = round_no + 1;

        if self.decisions.iter().all(Option::is_some) {
            let decisions = std::mem::take(&mut self.decisions);
            let pattern = std::mem::replace(&mut self.pattern, FaultPattern::new(self.n));
            self.finish(
                Ok(RunReport {
                    decisions,
                    pattern,
                    rounds_executed: round_no,
                }),
                TraceOutcome::Decided {
                    rounds_executed: round_no,
                },
            );
            return EngineStep::Finished;
        }
        EngineStep::Running
    }

    /// The run's result once finished; `None` while still running.
    #[must_use]
    pub fn outcome(&self) -> Option<&Result<RunReport<P::Output>, EngineError>> {
        self.done.as_ref()
    }

    /// Steps the run until terminal (a no-op when already finished) and
    /// dismantles it into result, optional trace, and the reusable
    /// emission-table buffer.
    pub fn run_to_completion(mut self) -> FinishedRun<P::Output, P::Msg> {
        loop {
            if let Some(result) = self.done.take() {
                let mut buffer = std::mem::take(&mut self.messages);
                buffer.clear();
                return FinishedRun {
                    result,
                    trace: self.finished_trace.take(),
                    buffer,
                };
            }
            self.step();
        }
    }

    fn finish(&mut self, result: Result<RunReport<P::Output>, EngineError>, outcome: TraceOutcome) {
        self.obs
            .close_span(self.instance, SpanKind::Run, 0, None, self.run_start_ns);
        self.finished_trace = self.trace.take().map(|t| t.finish(outcome));
        self.done = Some(result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: usize) -> SystemSize {
        SystemSize::new(v).unwrap()
    }

    /// Decides after a fixed number of rounds, recording what it heard.
    struct DecideAfter {
        rounds: u32,
        heard: Vec<IdSet>,
    }

    impl DecideAfter {
        fn new(rounds: u32) -> Self {
            DecideAfter {
                rounds,
                heard: Vec::new(),
            }
        }
    }

    impl RoundProtocol for DecideAfter {
        type Msg = u32;
        type Output = usize;

        fn emit(&mut self, round: Round) -> u32 {
            round.get()
        }

        fn deliver(&mut self, d: Delivery<'_, u32>) -> Control<usize> {
            self.heard.push(d.heard_from());
            if d.round.get() >= self.rounds {
                Control::Decide(self.heard.len())
            } else {
                Control::Continue
            }
        }
    }

    struct FixedDetector {
        n: SystemSize,
        per_round: Vec<RoundFaults>,
    }

    impl FaultDetector for FixedDetector {
        fn system_size(&self) -> SystemSize {
            self.n
        }
        fn next_round(&mut self, round: Round, _h: &FaultPattern) -> RoundFaults {
            self.per_round
                .get(round.index())
                .cloned()
                .unwrap_or_else(|| RoundFaults::none(self.n))
        }
    }

    use crate::predicate::AnyPattern;

    #[test]
    fn runs_to_decision_and_reports_rounds() {
        let size = n(4);
        let protos: Vec<_> = (0..4).map(|_| DecideAfter::new(3)).collect();
        let mut det = FixedDetector {
            n: size,
            per_round: vec![],
        };
        let report = Engine::new(size)
            .run(protos, &mut det, &AnyPattern::new(size))
            .unwrap();
        assert!(report.all_decided());
        assert_eq!(report.rounds_executed, 3);
        assert_eq!(report.decision_round(), Some(Round::new(3)));
        assert_eq!(report.pattern.rounds(), 3);
        for d in report.outputs() {
            assert_eq!(d, Some(3));
        }
    }

    #[test]
    fn suspected_messages_are_withheld() {
        let size = n(3);
        // Round 1: p0 suspects p2.
        let mut r1 = RoundFaults::none(size);
        r1.set(ProcessId::new(0), IdSet::singleton(ProcessId::new(2)));
        let mut det = FixedDetector {
            n: size,
            per_round: vec![r1],
        };

        struct Observe(SystemSize);
        impl RoundProtocol for Observe {
            type Msg = ();
            type Output = IdSet;
            fn emit(&mut self, _r: Round) {}
            fn deliver(&mut self, d: Delivery<'_, ()>) -> Control<IdSet> {
                // Covering property: heard ∪ suspected = S.
                assert_eq!(d.heard_from().union(d.suspected), IdSet::universe(self.0));
                Control::Decide(d.heard_from())
            }
        }

        let report = Engine::new(size)
            .run(
                vec![Observe(size), Observe(size), Observe(size)],
                &mut det,
                &AnyPattern::new(size),
            )
            .unwrap();
        let outs = report.outputs();
        let p0_heard = outs[0].unwrap();
        assert!(!p0_heard.contains(ProcessId::new(2)));
        assert!(p0_heard.contains(ProcessId::new(0)));
        let p1_heard = outs[1].unwrap();
        assert_eq!(p1_heard, IdSet::universe(size));
    }

    #[test]
    fn wrong_process_count_is_reported() {
        let size = n(3);
        let mut det = FixedDetector {
            n: size,
            per_round: vec![],
        };
        let err = Engine::new(size)
            .run(vec![DecideAfter::new(1)], &mut det, &AnyPattern::new(size))
            .unwrap_err();
        assert_eq!(
            err,
            EngineError::WrongProcessCount {
                supplied: 1,
                expected: 3
            }
        );
    }

    #[test]
    fn ill_formed_adversary_is_caught() {
        let size = n(3);
        let mut r1 = RoundFaults::none(size);
        r1.set(ProcessId::new(1), IdSet::universe(size));
        let mut det = FixedDetector {
            n: size,
            per_round: vec![r1],
        };
        let protos: Vec<_> = (0..3).map(|_| DecideAfter::new(1)).collect();
        let err = Engine::new(size)
            .run(protos, &mut det, &AnyPattern::new(size))
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::Violation(PatternViolation::IllFormed { .. })
        ));
    }

    #[test]
    fn round_limit_is_enforced() {
        let size = n(2);
        let mut det = FixedDetector {
            n: size,
            per_round: vec![],
        };
        let protos: Vec<_> = (0..2).map(|_| DecideAfter::new(100)).collect();
        let err = Engine::new(size)
            .max_rounds(5)
            .run(protos, &mut det, &AnyPattern::new(size))
            .unwrap_err();
        assert_eq!(err, EngineError::RoundLimitExceeded { max_rounds: 5 });
    }

    #[test]
    fn run_traced_records_rounds_heard_and_decisions() {
        use crate::trace::TraceOutcome;

        let size = n(3);
        let mut r1 = RoundFaults::none(size);
        r1.set(ProcessId::new(0), IdSet::singleton(ProcessId::new(2)));
        let mut det = FixedDetector {
            n: size,
            per_round: vec![r1],
        };
        let protos: Vec<_> = (0..3).map(|_| DecideAfter::new(2)).collect();
        let (result, trace) =
            Engine::new(size).run_traced(protos, &mut det, &AnyPattern::new(size));
        let report = result.unwrap();

        assert_eq!(trace.pattern(), report.pattern);
        assert_eq!(
            trace.outcome(),
            &TraceOutcome::Decided { rounds_executed: 2 }
        );
        // Round 1: p0 suspected p2, so its heard-set omits p2 — the
        // covering property S(i,r) ∪ D(i,r) = S, recorded explicitly.
        let heard = &trace.rounds()[0].heard;
        assert!(!heard[0].contains(ProcessId::new(2)));
        assert_eq!(heard[1], IdSet::universe(size));
        // Everyone decided at round 2.
        for p in size.processes() {
            assert_eq!(trace.decision_rounds()[p.index()], Some(Round::new(2)));
        }
        // The trace survives a serialize → parse round trip.
        let reparsed: crate::trace::RunTrace = trace.to_string().parse().unwrap();
        assert_eq!(reparsed, trace);
    }

    #[test]
    fn run_traced_keeps_the_violating_round() {
        use crate::trace::TraceOutcome;

        let size = n(3);
        let mut bad = RoundFaults::none(size);
        bad.set(ProcessId::new(1), IdSet::universe(size));
        let mut det = FixedDetector {
            n: size,
            per_round: vec![RoundFaults::none(size), bad.clone()],
        };
        let protos: Vec<_> = (0..3).map(|_| DecideAfter::new(5)).collect();
        let (result, trace) =
            Engine::new(size).run_traced(protos, &mut det, &AnyPattern::new(size));
        assert!(matches!(result, Err(EngineError::Violation(_))));
        // Both the clean round and the offending round are recorded.
        assert_eq!(trace.rounds().len(), 2);
        assert_eq!(trace.rounds()[1].faults, bad);
        assert!(matches!(trace.outcome(), TraceOutcome::Violation(_)));
    }

    #[test]
    fn run_traced_aborts_on_wrong_process_count() {
        use crate::trace::TraceOutcome;

        let size = n(3);
        let mut det = FixedDetector {
            n: size,
            per_round: vec![],
        };
        let (result, trace) = Engine::new(size).run_traced(
            vec![DecideAfter::new(1)],
            &mut det,
            &AnyPattern::new(size),
        );
        assert!(matches!(result, Err(EngineError::WrongProcessCount { .. })));
        assert_eq!(trace.outcome(), &TraceOutcome::Aborted);
        assert!(trace.rounds().is_empty());
    }

    #[test]
    fn instrumented_run_records_round_metrics() {
        use rrfd_obs::{names, Labels, Obs};

        let size = n(3);
        let mut r1 = RoundFaults::none(size);
        r1.set(ProcessId::new(0), IdSet::singleton(ProcessId::new(2)));
        let mut det = FixedDetector {
            n: size,
            per_round: vec![r1],
        };
        let protos: Vec<_> = (0..3).map(|_| DecideAfter::new(2)).collect();
        let obs = Obs::logical();
        let report = Engine::new(size)
            .obs(obs.clone())
            .run(protos, &mut det, &AnyPattern::new(size))
            .unwrap();
        assert!(report.all_decided());

        let snap = obs.snapshot();
        // Two rounds ran, three messages emitted per round.
        assert_eq!(snap.counter_total(names::ENGINE_ROUNDS), 2);
        assert_eq!(snap.counter_total(names::ENGINE_MESSAGES_EMITTED), 6);
        // p0 heard 2 of 3 in round 1 (it suspected p2); everyone else 3.
        assert_eq!(
            snap.get(names::ENGINE_MESSAGES_RECEIVED, Labels::process_round(0, 1)),
            Some(&rrfd_obs::MetricValue::Counter(2))
        );
        assert_eq!(
            snap.counter_total(names::ENGINE_MESSAGES_RECEIVED),
            2 + 3 + 3 + 9
        );
        // All three decided at round 2.
        assert_eq!(snap.counter_total(names::ENGINE_DECISIONS), 3);
        for p in 0..3usize {
            assert_eq!(
                snap.get(names::ENGINE_DECISIONS, Labels::process_round(p, 2)),
                Some(&rrfd_obs::MetricValue::Counter(1))
            );
        }
        // Round latency was observed once per round.
        let rounds_with_latency = snap
            .entries()
            .iter()
            .filter(|e| e.metric == names::ENGINE_ROUND_LATENCY)
            .count();
        assert_eq!(rounds_with_latency, 2);
        assert_eq!(snap.counter_total(names::ENGINE_VIOLATIONS), 0);
    }

    #[test]
    fn violations_are_counted() {
        use rrfd_obs::{names, Obs};

        let size = n(3);
        let mut bad = RoundFaults::none(size);
        bad.set(ProcessId::new(1), IdSet::universe(size));
        let mut det = FixedDetector {
            n: size,
            per_round: vec![bad],
        };
        let protos: Vec<_> = (0..3).map(|_| DecideAfter::new(5)).collect();
        let obs = Obs::logical();
        let (result, _trace) =
            Engine::new(size)
                .obs(obs.clone())
                .run_traced(protos, &mut det, &AnyPattern::new(size));
        assert!(matches!(result, Err(EngineError::Violation(_))));
        assert_eq!(obs.snapshot().counter_total(names::ENGINE_VIOLATIONS), 1);
    }

    #[test]
    fn stepped_run_matches_run_round_for_round() {
        let size = n(4);
        let mut r1 = RoundFaults::none(size);
        r1.set(ProcessId::new(0), IdSet::singleton(ProcessId::new(2)));
        let per_round = vec![r1];
        let protos = || -> Vec<_> { (0..4).map(|_| DecideAfter::new(3)).collect() };

        let mut det = FixedDetector {
            n: size,
            per_round: per_round.clone(),
        };
        let reference = Engine::new(size)
            .run(protos(), &mut det, &AnyPattern::new(size))
            .unwrap();

        let det = FixedDetector { n: size, per_round };
        let mut run = Engine::new(size)
            .start(protos(), det, AnyPattern::new(size))
            .unwrap();
        assert!(!run.is_finished());
        assert_eq!(run.step(), EngineStep::Running);
        assert_eq!(run.rounds_executed(), 1);
        assert!(run.outcome().is_none());
        assert_eq!(run.step(), EngineStep::Running);
        assert_eq!(run.step(), EngineStep::Finished);
        assert!(run.is_finished());
        // Stepping a finished run is a no-op.
        assert_eq!(run.step(), EngineStep::Finished);
        let finished = run.run_to_completion();
        let report = finished.result.unwrap();
        assert_eq!(report.rounds_executed, reference.rounds_executed);
        assert_eq!(report.pattern, reference.pattern);
        assert_eq!(report.decisions, reference.decisions);
        assert!(finished.trace.is_none(), "untraced start captures nothing");
        assert!(finished.buffer.is_empty() && finished.buffer.capacity() >= 4);
    }

    #[test]
    fn start_traced_stepping_matches_run_traced_byte_for_byte() {
        let size = n(3);
        let mut r1 = RoundFaults::none(size);
        r1.set(ProcessId::new(1), IdSet::singleton(ProcessId::new(0)));
        let per_round = vec![r1];
        let protos = || -> Vec<_> { (0..3).map(|_| DecideAfter::new(2)).collect() };

        let mut det = FixedDetector {
            n: size,
            per_round: per_round.clone(),
        };
        let (reference, reference_trace) =
            Engine::new(size).run_traced(protos(), &mut det, &AnyPattern::new(size));

        let det = FixedDetector { n: size, per_round };
        let run = Engine::new(size)
            .start_traced(protos(), det, AnyPattern::new(size))
            .unwrap();
        let finished = run.run_to_completion();
        assert_eq!(
            finished.result.unwrap().decisions,
            reference.unwrap().decisions
        );
        let trace = finished.trace.expect("trace was armed");
        assert_eq!(trace.to_string(), reference_trace.to_string());
    }

    #[test]
    fn stepped_violation_and_round_limit_are_terminal() {
        let size = n(3);
        let mut bad = RoundFaults::none(size);
        bad.set(ProcessId::new(1), IdSet::universe(size));
        let det = FixedDetector {
            n: size,
            per_round: vec![bad],
        };
        let protos: Vec<_> = (0..3).map(|_| DecideAfter::new(5)).collect();
        let mut run = Engine::new(size)
            .start(protos, det, AnyPattern::new(size))
            .unwrap();
        assert_eq!(run.step(), EngineStep::Finished);
        assert!(matches!(
            run.run_to_completion().result,
            Err(EngineError::Violation(_))
        ));

        let det = FixedDetector {
            n: size,
            per_round: vec![],
        };
        let protos: Vec<_> = (0..3).map(|_| DecideAfter::new(100)).collect();
        let run = Engine::new(size)
            .max_rounds(2)
            .start(protos, det, AnyPattern::new(size))
            .unwrap();
        assert_eq!(
            run.run_to_completion().result,
            Err(EngineError::RoundLimitExceeded { max_rounds: 2 })
        );
    }

    #[test]
    fn recycled_buffer_is_reused_across_runs() {
        let size = n(2);
        let protos = || -> Vec<_> { (0..2).map(|_| DecideAfter::new(1)).collect() };
        let det = || FixedDetector {
            n: size,
            per_round: vec![],
        };
        let engine = Engine::new(size);
        let first = engine
            .start(protos(), det(), AnyPattern::new(size))
            .unwrap()
            .run_to_completion();
        let capacity = first.buffer.capacity();
        let ptr = first.buffer.as_ptr();
        assert!(capacity >= 2);
        let second = engine
            .start_with_buffer(protos(), det(), AnyPattern::new(size), first.buffer)
            .unwrap()
            .run_to_completion();
        assert!(second.result.unwrap().all_decided());
        // Same allocation, recycled through the whole second run.
        assert_eq!(second.buffer.as_ptr(), ptr);
        assert_eq!(second.buffer.capacity(), capacity);
    }

    #[test]
    fn first_decision_is_final() {
        let size = n(2);

        /// Decides a different value every round; only the first must stick.
        struct Flaky;
        impl RoundProtocol for Flaky {
            type Msg = ();
            type Output = u32;
            fn emit(&mut self, _r: Round) {}
            fn deliver(&mut self, d: Delivery<'_, ()>) -> Control<u32> {
                Control::Decide(d.round.get())
            }
        }

        /// Never decides until round 3, forcing extra rounds for everyone.
        struct Late;
        impl RoundProtocol for Late {
            type Msg = ();
            type Output = u32;
            fn emit(&mut self, _r: Round) {}
            fn deliver(&mut self, d: Delivery<'_, ()>) -> Control<u32> {
                if d.round.get() >= 3 {
                    Control::Decide(99)
                } else {
                    Control::Continue
                }
            }
        }

        // Heterogeneous protocols need a common type; box them via an enum.
        enum Either {
            Flaky(Flaky),
            Late(Late),
        }
        impl RoundProtocol for Either {
            type Msg = ();
            type Output = u32;
            fn emit(&mut self, r: Round) {
                match self {
                    Either::Flaky(p) => p.emit(r),
                    Either::Late(p) => p.emit(r),
                }
            }
            fn deliver(&mut self, d: Delivery<'_, ()>) -> Control<u32> {
                match self {
                    Either::Flaky(p) => p.deliver(d),
                    Either::Late(p) => p.deliver(d),
                }
            }
        }

        let mut det = FixedDetector {
            n: size,
            per_round: vec![],
        };
        let report = Engine::new(size)
            .run(
                vec![Either::Flaky(Flaky), Either::Late(Late)],
                &mut det,
                &AnyPattern::new(size),
            )
            .unwrap();
        let d0 = report.decisions[0].unwrap();
        assert_eq!(d0, (1, Round::new(1)), "first decision must be kept");
        assert_eq!(report.decisions[1].unwrap().0, 99);
        assert_eq!(report.rounds_executed, 3);
    }

    #[test]
    fn spans_record_the_causal_tree_per_round() {
        use rrfd_obs::{SpanKind, SpanPhase};

        let size = n(3);
        let obs = Obs::logical();
        let protos: Vec<_> = (0..3).map(|_| DecideAfter::new(2)).collect();
        let mut det = FixedDetector {
            n: size,
            per_round: vec![],
        };
        Engine::new(size)
            .obs(obs.clone())
            .instance(7)
            .run(protos, &mut det, &AnyPattern::new(size))
            .unwrap();

        let spans = obs.spans();
        // 2 rounds × (round + emit + deliver) + 3 decide spans + 1 run span.
        assert_eq!(spans.len(), 2 * 3 + 3 + 1);
        assert!(spans.iter().all(|s| s.instance == 7));
        let runs: Vec<_> = spans.iter().filter(|s| s.kind == SpanKind::Run).collect();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].parent_id(), 0, "the run span is the root");
        for s in &spans {
            match s.kind {
                SpanKind::Run => {}
                SpanKind::Round => assert_eq!(s.parent_id(), runs[0].id()),
                SpanKind::Phase(_) => {
                    let round = spans
                        .iter()
                        .find(|r| r.kind == SpanKind::Round && r.round == s.round)
                        .expect("every phase span has its round span");
                    assert_eq!(s.parent_id(), round.id());
                }
            }
            assert!(s.end_ns >= s.start_ns);
        }
        let decides: Vec<_> = spans
            .iter()
            .filter(|s| s.kind == SpanKind::Phase(SpanPhase::Decide))
            .collect();
        assert_eq!(decides.len(), 3);
        assert!(decides.iter().all(|s| s.round == 2 && s.process.is_some()));
    }

    #[test]
    fn noop_obs_records_no_spans() {
        let size = n(2);
        let engine = Engine::new(size);
        let protos: Vec<_> = (0..2).map(|_| DecideAfter::new(1)).collect();
        let mut det = FixedDetector {
            n: size,
            per_round: vec![],
        };
        engine
            .run(protos, &mut det, &AnyPattern::new(size))
            .unwrap();
        assert!(engine.obs.spans().is_empty());
    }

    #[test]
    fn round_hook_sees_every_round_including_the_violating_one() {
        use std::sync::{Arc, Mutex};

        let size = n(3);
        let mut bad = RoundFaults::none(size);
        bad.set(ProcessId::new(1), IdSet::universe(size));
        let det = FixedDetector {
            n: size,
            per_round: vec![RoundFaults::none(size), bad.clone()],
        };
        let protos: Vec<_> = (0..3).map(|_| DecideAfter::new(5)).collect();
        let seen: Arc<Mutex<Vec<RoundFaults>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let mut run = Engine::new(size)
            .start(protos, det, AnyPattern::new(size))
            .unwrap();
        run.set_round_hook(RoundHook::new(move |faults| {
            sink.lock().unwrap().push(faults.clone());
        }));
        let finished = run.run_to_completion();
        assert!(matches!(
            finished.result,
            Err(EngineError::Violation(PatternViolation::IllFormed { .. }))
        ));

        let rounds = seen.lock().unwrap();
        // Round 1 (clean) and round 2 (the violating one, kept as
        // evidence — mirroring what run_traced records).
        assert_eq!(rounds.len(), 2);
        assert_eq!(rounds[0], RoundFaults::none(size));
        assert_eq!(rounds[1], bad);
    }
}
