//! Runtime event logs: fine-grained records of *how* an engine executed.
//!
//! A [`RunTrace`](crate::RunTrace) records what the adversary did; an
//! [`EventLog`] records what the **runtime** did — every channel send and
//! receive, every detector consultation, every access to coordinator-owned
//! shared state. The threaded runtime emits one (behind its `analyze`
//! feature) so that `rrfd-analyze races` can rebuild the happens-before
//! partial order with vector clocks and flag ordering bugs: cross-round
//! message reordering, lock-step violations, and concurrent unsynchronized
//! accesses to shared locations.
//!
//! The text format follows the workspace's line dialect
//! ([`crate::lineformat`]):
//!
//! ```text
//! rrfd-events v1
//! n 3
//! p0 emit r=1
//! c gather from=0 r=1
//! c detect r=1
//! c access loc=pattern rw=w
//! c deliver to=0 r=1
//! p0 receive r=1
//! p0 decide r=1
//! ```
//!
//! Happens-before is induced by program order within an actor plus the
//! message edges `emit → gather` (matched on `(process, round)`) and
//! `deliver → receive` (matched on `(process, round)`); the log's physical
//! line order is *not* an ordering claim, which is what makes the race
//! analysis sound even though the log itself is gathered through a lock.

use crate::id::{ProcessId, Round, SystemSize};
use crate::lineformat::{body_lines, parse_kv, parse_process_id, LineError};
use std::fmt;
use std::str::FromStr;

/// Who performed a runtime event: the coordinator thread or one of the `n`
/// process threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Actor {
    /// The coordinator (the thread driving the gather/deliver loop).
    Coordinator,
    /// A process thread.
    Process(ProcessId),
}

impl fmt::Display for Actor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Actor::Coordinator => f.write_str("c"),
            Actor::Process(p) => write!(f, "p{}", p.index()),
        }
    }
}

impl Actor {
    fn parse(token: &str) -> Result<Self, String> {
        if token == "c" {
            return Ok(Actor::Coordinator);
        }
        token
            .strip_prefix('p')
            .ok_or_else(|| format!("bad actor {token:?}"))
            .and_then(parse_process_id)
            .map(Actor::Process)
    }
}

/// One runtime event. The actor is carried by the enclosing [`RtEvent`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtEventKind {
    /// A process sent its round-`round` emission to the coordinator.
    Emit {
        /// The round being emitted for.
        round: Round,
    },
    /// The coordinator received `from`'s round-`round` emission.
    Gather {
        /// The emitting process.
        from: ProcessId,
        /// The round the emission belongs to.
        round: Round,
    },
    /// The coordinator consulted the fault detector for `round`.
    Detect {
        /// The round being decided by the detector.
        round: Round,
    },
    /// The coordinator sent the round-`round` delivery to `to`.
    Deliver {
        /// The receiving process.
        to: ProcessId,
        /// The round being delivered.
        round: Round,
    },
    /// A process received its round-`round` delivery.
    Receive {
        /// The round received.
        round: Round,
    },
    /// A process decided in `round`.
    Decide {
        /// The decision round.
        round: Round,
    },
    /// An access to a named shared location (coordinator state such as
    /// `pattern` or `decisions`). Two accesses to the same location, at
    /// least one a write, with no happens-before order between them are a
    /// data race.
    Access {
        /// The location name (no whitespace).
        loc: String,
        /// `true` for a write, `false` for a read.
        write: bool,
    },
}

/// One line of an [`EventLog`]: who did what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtEvent {
    /// The acting thread.
    pub actor: Actor,
    /// What it did.
    pub kind: RtEventKind,
}

impl fmt::Display for RtEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ", self.actor)?;
        match &self.kind {
            RtEventKind::Emit { round } => write!(f, "emit r={}", round.get()),
            RtEventKind::Gather { from, round } => {
                write!(f, "gather from={} r={}", from.index(), round.get())
            }
            RtEventKind::Detect { round } => write!(f, "detect r={}", round.get()),
            RtEventKind::Deliver { to, round } => {
                write!(f, "deliver to={} r={}", to.index(), round.get())
            }
            RtEventKind::Receive { round } => write!(f, "receive r={}", round.get()),
            RtEventKind::Decide { round } => write!(f, "decide r={}", round.get()),
            RtEventKind::Access { loc, write } => {
                write!(f, "access loc={loc} rw={}", if *write { "w" } else { "r" })
            }
        }
    }
}

fn parse_round(token: &str) -> Result<Round, String> {
    let r: u32 = parse_kv(token, "r")?
        .parse()
        .map_err(|_| format!("bad round in {token:?}"))?;
    if r == 0 {
        return Err("round numbers start at 1".to_owned());
    }
    Ok(Round::new(r))
}

impl RtEvent {
    fn parse(line: &str) -> Result<Self, String> {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let (&actor, &verb) = match tokens.as_slice() {
            [actor, verb, ..] => (actor, verb),
            _ => return Err(format!("truncated event {line:?}")),
        };
        let actor = Actor::parse(actor)?;
        let args = &tokens[2..];
        let kind = match (verb, args) {
            ("emit", [r]) => RtEventKind::Emit {
                round: parse_round(r)?,
            },
            ("gather", [from, r]) => RtEventKind::Gather {
                from: parse_process_id(parse_kv(from, "from")?)?,
                round: parse_round(r)?,
            },
            ("detect", [r]) => RtEventKind::Detect {
                round: parse_round(r)?,
            },
            ("deliver", [to, r]) => RtEventKind::Deliver {
                to: parse_process_id(parse_kv(to, "to")?)?,
                round: parse_round(r)?,
            },
            ("receive", [r]) => RtEventKind::Receive {
                round: parse_round(r)?,
            },
            ("decide", [r]) => RtEventKind::Decide {
                round: parse_round(r)?,
            },
            ("access", [loc, rw]) => RtEventKind::Access {
                loc: parse_kv(loc, "loc")?.to_owned(),
                write: match parse_kv(rw, "rw")? {
                    "w" => true,
                    "r" => false,
                    other => return Err(format!("bad access mode {other:?}")),
                },
            },
            _ => return Err(format!("unrecognised event {line:?}")),
        };
        Ok(RtEvent { actor, kind })
    }
}

/// A serializable sequence of runtime events over an `n`-process system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventLog {
    n: SystemSize,
    events: Vec<RtEvent>,
}

impl EventLog {
    /// An empty log for a system of `n` processes.
    #[must_use]
    pub fn new(n: SystemSize) -> Self {
        EventLog {
            n,
            events: Vec::new(),
        }
    }

    /// The system size the log was recorded over.
    #[must_use]
    pub fn system_size(&self) -> SystemSize {
        self.n
    }

    /// Appends one event.
    pub fn push(&mut self, event: RtEvent) {
        self.events.push(event);
    }

    /// The recorded events, in log order (which carries no happens-before
    /// meaning of its own).
    #[must_use]
    pub fn events(&self) -> &[RtEvent] {
        &self.events
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl fmt::Display for EventLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "rrfd-events v1")?;
        writeln!(f, "n {}", self.n.get())?;
        for event in &self.events {
            writeln!(f, "{event}")?;
        }
        Ok(())
    }
}

impl FromStr for EventLog {
    type Err = LineError;

    fn from_str(text: &str) -> Result<Self, Self::Err> {
        let mut lines = body_lines(text, "rrfd-events v1")?;
        let (lno, n_line) = lines
            .next()
            .ok_or_else(|| LineError::new(0, "missing `n` line"))?;
        let n_val: usize = n_line
            .strip_prefix("n ")
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| LineError::new(lno, "expected `n <size>`"))?;
        let n = SystemSize::new(n_val)
            .map_err(|e| LineError::new(lno, format!("bad system size: {e}")))?;
        let mut log = EventLog::new(n);
        for (lno, line) in lines {
            let event = RtEvent::parse(line).map_err(|message| LineError::new(lno, message))?;
            if let Actor::Process(p) = event.actor {
                if !n.contains(p) {
                    return Err(LineError::new(
                        lno,
                        format!(
                            "actor p{} outside the {}-process universe",
                            p.index(),
                            n_val
                        ),
                    ));
                }
            }
            log.push(event);
        }
        Ok(log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: usize) -> SystemSize {
        SystemSize::new(v).unwrap()
    }

    fn sample() -> EventLog {
        let mut log = EventLog::new(n(2));
        let r1 = Round::new(1);
        log.push(RtEvent {
            actor: Actor::Process(ProcessId::new(0)),
            kind: RtEventKind::Emit { round: r1 },
        });
        log.push(RtEvent {
            actor: Actor::Coordinator,
            kind: RtEventKind::Gather {
                from: ProcessId::new(0),
                round: r1,
            },
        });
        log.push(RtEvent {
            actor: Actor::Coordinator,
            kind: RtEventKind::Detect { round: r1 },
        });
        log.push(RtEvent {
            actor: Actor::Coordinator,
            kind: RtEventKind::Access {
                loc: "pattern".to_owned(),
                write: true,
            },
        });
        log.push(RtEvent {
            actor: Actor::Coordinator,
            kind: RtEventKind::Deliver {
                to: ProcessId::new(0),
                round: r1,
            },
        });
        log.push(RtEvent {
            actor: Actor::Process(ProcessId::new(0)),
            kind: RtEventKind::Receive { round: r1 },
        });
        log.push(RtEvent {
            actor: Actor::Process(ProcessId::new(0)),
            kind: RtEventKind::Decide { round: r1 },
        });
        log
    }

    #[test]
    fn round_trips_through_text() {
        let log = sample();
        let text = log.to_string();
        assert!(
            text.starts_with("rrfd-events v1\nn 2\np0 emit r=1\n"),
            "{text}"
        );
        let back: EventLog = text.parse().unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn malformed_logs_are_rejected() {
        assert!("".parse::<EventLog>().is_err());
        assert!("rrfd-events v1\n".parse::<EventLog>().is_err());
        assert!("rrfd-events v1\nn 0\n".parse::<EventLog>().is_err());
        // Unknown verb.
        let e = "rrfd-events v1\nn 2\np0 teleport r=1\n"
            .parse::<EventLog>()
            .unwrap_err();
        assert_eq!(e.line, 3);
        // Actor outside the universe.
        assert!("rrfd-events v1\nn 2\np5 emit r=1\n"
            .parse::<EventLog>()
            .is_err());
        // Round zero.
        assert!("rrfd-events v1\nn 2\np0 emit r=0\n"
            .parse::<EventLog>()
            .is_err());
        // Bad access mode.
        assert!("rrfd-events v1\nn 2\nc access loc=x rw=q\n"
            .parse::<EventLog>()
            .is_err());
    }

    #[test]
    fn every_kind_round_trips() {
        let log = sample();
        for event in log.events() {
            let reparsed = RtEvent::parse(&event.to_string()).unwrap();
            assert_eq!(&reparsed, event);
        }
    }
}
