//! Compact sets of process identifiers.
//!
//! The sets `D(i,r)` and `S(i,r)` of the paper are subsets of the process
//! universe. [`IdSet`] packs membership into a single `u128`, which makes the
//! set algebra the predicates need (union, intersection, difference,
//! containment) branch-free and allocation-free. An ablation bench
//! (`bench_ablation_idset`) compares this against a hash-set representation.

use crate::id::{ProcessId, SystemSize, MAX_PROCESSES};
use std::fmt;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, Sub, SubAssign};

/// A set of [`ProcessId`]s backed by a 128-bit bitmap.
///
/// # Examples
///
/// ```
/// use rrfd_core::{IdSet, ProcessId, SystemSize};
///
/// let n = SystemSize::new(5).unwrap();
/// let mut d = IdSet::empty();
/// d.insert(ProcessId::new(1));
/// d.insert(ProcessId::new(3));
/// assert_eq!(d.len(), 2);
/// assert!(d.contains(ProcessId::new(3)));
///
/// let alive = d.complement(n);
/// assert_eq!(alive.len(), 3);
/// assert!(alive.contains(ProcessId::new(0)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct IdSet(u128);

impl IdSet {
    /// The empty set.
    #[must_use]
    pub const fn empty() -> Self {
        IdSet(0)
    }

    /// The full universe `S = {p_0, …, p_{n−1}}`.
    #[must_use]
    pub fn universe(n: SystemSize) -> Self {
        if n.get() == MAX_PROCESSES {
            IdSet(u128::MAX)
        } else {
            IdSet((1u128 << n.get()) - 1)
        }
    }

    /// A singleton set `{id}`.
    #[must_use]
    pub fn singleton(id: ProcessId) -> Self {
        IdSet(1u128 << id.index())
    }

    /// Builds a set from raw bits. Callers must ensure bits beyond the system
    /// size are zero when the set will be compared against a universe.
    #[must_use]
    pub const fn from_bits(bits: u128) -> Self {
        IdSet(bits)
    }

    /// The raw bitmap.
    #[must_use]
    pub const fn bits(self) -> u128 {
        self.0
    }

    /// Returns `true` if `id` is a member.
    #[must_use]
    pub fn contains(self, id: ProcessId) -> bool {
        self.0 & (1u128 << id.index()) != 0
    }

    /// Inserts `id`; returns `true` if it was newly inserted.
    pub fn insert(&mut self, id: ProcessId) -> bool {
        let bit = 1u128 << id.index();
        let fresh = self.0 & bit == 0;
        self.0 |= bit;
        fresh
    }

    /// Removes `id`; returns `true` if it was present.
    pub fn remove(&mut self, id: ProcessId) -> bool {
        let bit = 1u128 << id.index();
        let present = self.0 & bit != 0;
        self.0 &= !bit;
        present
    }

    /// Number of members.
    #[must_use]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Returns `true` when the set has no members.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Set union `self ∪ other`.
    #[must_use]
    pub fn union(self, other: IdSet) -> IdSet {
        IdSet(self.0 | other.0)
    }

    /// Set intersection `self ∩ other`.
    #[must_use]
    pub fn intersection(self, other: IdSet) -> IdSet {
        IdSet(self.0 & other.0)
    }

    /// Set difference `self ∖ other`.
    #[must_use]
    pub fn difference(self, other: IdSet) -> IdSet {
        IdSet(self.0 & !other.0)
    }

    /// Complement within the universe of size `n`.
    #[must_use]
    pub fn complement(self, n: SystemSize) -> IdSet {
        IdSet(!self.0 & IdSet::universe(n).0)
    }

    /// Returns `true` when `self ⊆ other`.
    #[must_use]
    pub fn is_subset(self, other: IdSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Returns `true` when `self ⊇ other`.
    #[must_use]
    pub fn is_superset(self, other: IdSet) -> bool {
        other.is_subset(self)
    }

    /// Returns `true` when the sets share no member.
    #[must_use]
    pub fn is_disjoint(self, other: IdSet) -> bool {
        self.0 & other.0 == 0
    }

    /// The smallest member, if any. This is the selection rule of the
    /// paper's one-round k-set agreement algorithm (Theorem 3.1).
    #[must_use]
    pub fn min(self) -> Option<ProcessId> {
        if self.0 == 0 {
            None
        } else {
            Some(ProcessId::new(self.0.trailing_zeros() as usize))
        }
    }

    /// The largest member, if any.
    #[must_use]
    pub fn max(self) -> Option<ProcessId> {
        if self.0 == 0 {
            None
        } else {
            Some(ProcessId::new(127 - self.0.leading_zeros() as usize))
        }
    }

    /// Iterates over members in increasing identifier order.
    pub fn iter(self) -> Iter {
        Iter(self.0)
    }
}

/// Iterator over the members of an [`IdSet`], in increasing order.
#[derive(Clone, Debug)]
pub struct Iter(u128);

impl Iterator for Iter {
    type Item = ProcessId;

    fn next(&mut self) -> Option<ProcessId> {
        if self.0 == 0 {
            None
        } else {
            let idx = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(ProcessId::new(idx))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

impl IntoIterator for IdSet {
    type Item = ProcessId;
    type IntoIter = Iter;

    fn into_iter(self) -> Iter {
        self.iter()
    }
}

impl FromIterator<ProcessId> for IdSet {
    fn from_iter<I: IntoIterator<Item = ProcessId>>(iter: I) -> Self {
        let mut s = IdSet::empty();
        for id in iter {
            s.insert(id);
        }
        s
    }
}

impl Extend<ProcessId> for IdSet {
    fn extend<I: IntoIterator<Item = ProcessId>>(&mut self, iter: I) {
        for id in iter {
            self.insert(id);
        }
    }
}

impl BitOr for IdSet {
    type Output = IdSet;
    fn bitor(self, rhs: IdSet) -> IdSet {
        self.union(rhs)
    }
}

impl BitOrAssign for IdSet {
    fn bitor_assign(&mut self, rhs: IdSet) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for IdSet {
    type Output = IdSet;
    fn bitand(self, rhs: IdSet) -> IdSet {
        self.intersection(rhs)
    }
}

impl BitAndAssign for IdSet {
    fn bitand_assign(&mut self, rhs: IdSet) {
        self.0 &= rhs.0;
    }
}

impl Sub for IdSet {
    type Output = IdSet;
    fn sub(self, rhs: IdSet) -> IdSet {
        self.difference(rhs)
    }
}

impl SubAssign for IdSet {
    fn sub_assign(&mut self, rhs: IdSet) {
        self.0 &= !rhs.0;
    }
}

impl fmt::Debug for IdSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        let mut first = true;
        for id in self.iter() {
            if !first {
                f.write_str(",")?;
            }
            write!(f, "{id}")?;
            first = false;
        }
        f.write_str("}")
    }
}

impl fmt::Display for IdSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[usize]) -> IdSet {
        ids.iter().map(|&i| ProcessId::new(i)).collect()
    }

    #[test]
    fn empty_and_universe() {
        let n = SystemSize::new(6).unwrap();
        assert!(IdSet::empty().is_empty());
        assert_eq!(IdSet::universe(n).len(), 6);
        let full = SystemSize::new(MAX_PROCESSES).unwrap();
        assert_eq!(IdSet::universe(full).len(), MAX_PROCESSES);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = IdSet::empty();
        assert!(s.insert(ProcessId::new(2)));
        assert!(!s.insert(ProcessId::new(2)));
        assert!(s.contains(ProcessId::new(2)));
        assert!(s.remove(ProcessId::new(2)));
        assert!(!s.remove(ProcessId::new(2)));
        assert!(s.is_empty());
    }

    #[test]
    fn algebra_laws_on_samples() {
        let a = set(&[0, 1, 4]);
        let b = set(&[1, 2]);
        assert_eq!(a.union(b), set(&[0, 1, 2, 4]));
        assert_eq!(a.intersection(b), set(&[1]));
        assert_eq!(a.difference(b), set(&[0, 4]));
        assert_eq!(a | b, a.union(b));
        assert_eq!(a & b, a.intersection(b));
        assert_eq!(a - b, a.difference(b));
    }

    #[test]
    fn complement_stays_in_universe() {
        let n = SystemSize::new(4).unwrap();
        let a = set(&[0, 2]);
        let c = a.complement(n);
        assert_eq!(c, set(&[1, 3]));
        assert_eq!(a.union(c), IdSet::universe(n));
        assert!(a.is_disjoint(c));
    }

    #[test]
    fn subset_relations() {
        let small = set(&[1]);
        let big = set(&[0, 1, 2]);
        assert!(small.is_subset(big));
        assert!(big.is_superset(small));
        assert!(!big.is_subset(small));
        assert!(IdSet::empty().is_subset(small));
    }

    #[test]
    fn min_max_selection() {
        let s = set(&[5, 9, 63]);
        assert_eq!(s.min(), Some(ProcessId::new(5)));
        assert_eq!(s.max(), Some(ProcessId::new(63)));
        assert_eq!(IdSet::empty().min(), None);
        assert_eq!(IdSet::empty().max(), None);
    }

    #[test]
    fn iteration_is_sorted_and_complete() {
        let s = set(&[7, 0, 3]);
        let out: Vec<usize> = s.iter().map(ProcessId::index).collect();
        assert_eq!(out, vec![0, 3, 7]);
        assert_eq!(s.iter().len(), 3);
    }

    #[test]
    fn debug_render() {
        let s = set(&[0, 2]);
        assert_eq!(format!("{s:?}"), "{p0,p2}");
        assert_eq!(format!("{:?}", IdSet::empty()), "{}");
    }

    #[test]
    fn from_and_into_iterator_roundtrip() {
        let ids = [3usize, 1, 4, 1, 5];
        let s: IdSet = ids.iter().map(|&i| ProcessId::new(i)).collect();
        let back: Vec<usize> = s.into_iter().map(ProcessId::index).collect();
        assert_eq!(back, vec![1, 3, 4, 5]);
    }
}
