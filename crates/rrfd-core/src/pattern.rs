//! Fault patterns: the families of sets `D(i,r)` that an RRFD produces.
//!
//! A [`RoundFaults`] records `D(i,r)` for every process `i` at one round `r`;
//! a [`FaultPattern`] is the full history `D(i,r), i ∈ S, r = 1, 2, …`.
//! Predicates (see [`crate::predicate`]) are evaluated over these structures,
//! and the round engine records them so any run can be audited after the
//! fact.

use crate::id::{ProcessId, Round, SystemSize};
use crate::idset::IdSet;
use std::fmt;

/// The suspicion sets of one round: `faults[i] = D(i, r)`.
///
/// # Examples
///
/// ```
/// use rrfd_core::{IdSet, ProcessId, RoundFaults, SystemSize};
///
/// let n = SystemSize::new(3).unwrap();
/// let mut rf = RoundFaults::none(n);
/// rf.set(ProcessId::new(0), IdSet::singleton(ProcessId::new(2)));
/// assert_eq!(rf.union().len(), 1);
/// assert!(rf.intersection().is_empty());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct RoundFaults {
    n: SystemSize,
    faults: Vec<IdSet>,
}

impl RoundFaults {
    /// A round in which no process suspects anyone (`D(i,r) = ∅` for all i).
    #[must_use]
    pub fn none(n: SystemSize) -> Self {
        RoundFaults {
            n,
            faults: vec![IdSet::empty(); n.get()],
        }
    }

    /// Builds a round from explicit per-process suspicion sets.
    ///
    /// # Panics
    ///
    /// Panics if `faults.len() != n` or any set contains an identifier
    /// outside the universe.
    #[must_use]
    pub fn from_sets(n: SystemSize, faults: Vec<IdSet>) -> Self {
        assert_eq!(faults.len(), n.get(), "one D(i,r) per process required");
        let universe = IdSet::universe(n);
        for (i, d) in faults.iter().enumerate() {
            assert!(
                d.is_subset(universe),
                "D({i},r) = {d:?} escapes the process universe"
            );
        }
        RoundFaults { n, faults }
    }

    /// The system size this round belongs to.
    #[must_use]
    pub fn system_size(&self) -> SystemSize {
        self.n
    }

    /// `D(i, r)` for process `i`.
    #[must_use]
    pub fn of(&self, i: ProcessId) -> IdSet {
        self.faults[i.index()]
    }

    /// Replaces `D(i, r)`.
    ///
    /// # Panics
    ///
    /// Panics if `d` contains identifiers outside the universe.
    pub fn set(&mut self, i: ProcessId, d: IdSet) {
        assert!(
            d.is_subset(IdSet::universe(self.n)),
            "D({i},r) = {d:?} escapes the process universe"
        );
        self.faults[i.index()] = d;
    }

    /// The union `∪_i D(i, r)`: everyone suspected by *someone* this round.
    #[must_use]
    pub fn union(&self) -> IdSet {
        self.faults
            .iter()
            .copied()
            .fold(IdSet::empty(), IdSet::union)
    }

    /// The intersection `∩_i D(i, r)`: everyone suspected by *all* this round.
    #[must_use]
    pub fn intersection(&self) -> IdSet {
        self.faults
            .iter()
            .copied()
            .fold(IdSet::universe(self.n), IdSet::intersection)
    }

    /// The paper's "uncertainty" of a round: `∪_i D(i,r) ∖ ∩_i D(i,r)`, the
    /// processes suspected by some but not by all. Theorem 3.1's predicate
    /// bounds `|uncertainty| < k`.
    #[must_use]
    pub fn uncertainty(&self) -> IdSet {
        self.union().difference(self.intersection())
    }

    /// Iterates over `(ProcessId, D(i,r))` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, IdSet)> + '_ {
        self.faults
            .iter()
            .enumerate()
            .map(|(i, &d)| (ProcessId::new(i), d))
    }

    /// The per-process sets as a slice indexed by process.
    #[must_use]
    pub fn as_slice(&self) -> &[IdSet] {
        &self.faults
    }
}

impl fmt::Debug for RoundFaults {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

/// A complete fault history: `pattern.round(r) = RoundFaults` for `r ≥ 1`.
///
/// Grows as rounds are appended by the engine; predicates with memory (the
/// crash predicate of §2 item 2, the detector-S predicate of item 6) inspect
/// the whole history.
///
/// # Examples
///
/// ```
/// use rrfd_core::{FaultPattern, Round, RoundFaults, SystemSize};
///
/// let n = SystemSize::new(3).unwrap();
/// let mut pattern = FaultPattern::new(n);
/// pattern.push(RoundFaults::none(n));
/// assert_eq!(pattern.rounds(), 1);
/// assert!(pattern.round(Round::FIRST).unwrap().union().is_empty());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct FaultPattern {
    n: SystemSize,
    rounds: Vec<RoundFaults>,
}

impl FaultPattern {
    /// An empty history for a system of `n` processes.
    #[must_use]
    pub fn new(n: SystemSize) -> Self {
        FaultPattern {
            n,
            rounds: Vec::new(),
        }
    }

    /// The system size.
    #[must_use]
    pub fn system_size(&self) -> SystemSize {
        self.n
    }

    /// Number of recorded rounds.
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Returns `true` when no round has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Appends the next round's suspicion sets.
    ///
    /// # Panics
    ///
    /// Panics if the round was built for a different system size.
    pub fn push(&mut self, round: RoundFaults) {
        assert_eq!(
            round.system_size(),
            self.n,
            "round built for a different system size"
        );
        self.rounds.push(round);
    }

    /// The suspicion sets of round `r`, if recorded.
    #[must_use]
    pub fn round(&self, r: Round) -> Option<&RoundFaults> {
        self.rounds.get(r.index())
    }

    /// The most recently recorded round.
    #[must_use]
    pub fn last(&self) -> Option<&RoundFaults> {
        self.rounds.last()
    }

    /// `D(i, r)` directly, if recorded.
    #[must_use]
    pub fn of(&self, i: ProcessId, r: Round) -> Option<IdSet> {
        self.round(r).map(|rf| rf.of(i))
    }

    /// The cumulative union `∪_{0<r≤R} ∪_i D(i, r)` over all recorded rounds:
    /// every process ever suspected by anyone. The send-omission predicate
    /// (eq. 1) bounds its size by `f`; the detector-S predicate (item 6)
    /// requires it to omit at least one process.
    #[must_use]
    pub fn cumulative_union(&self) -> IdSet {
        self.rounds
            .iter()
            .map(RoundFaults::union)
            .fold(IdSet::empty(), IdSet::union)
    }

    /// Iterates over `(Round, &RoundFaults)` in round order.
    pub fn iter(&self) -> impl Iterator<Item = (Round, &RoundFaults)> + '_ {
        self.rounds
            .iter()
            .enumerate()
            .map(|(idx, rf)| (Round::new(idx as u32 + 1), rf))
    }
}

impl fmt::Debug for FaultPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(xs: &[usize]) -> IdSet {
        xs.iter().map(|&i| ProcessId::new(i)).collect()
    }

    fn n4() -> SystemSize {
        SystemSize::new(4).unwrap()
    }

    #[test]
    fn patterns_are_hashable() {
        use std::collections::HashSet;

        let n = n4();
        let mut a = FaultPattern::new(n);
        a.push(RoundFaults::none(n));
        let mut b = FaultPattern::new(n);
        b.push(RoundFaults::from_sets(
            n,
            vec![ids(&[3]), ids(&[3]), ids(&[3]), ids(&[3])],
        ));
        let mut set = HashSet::new();
        assert!(set.insert(a.clone()));
        assert!(set.insert(b));
        assert!(!set.insert(a), "re-inserting an equal pattern must dedup");
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn none_has_empty_sets() {
        let rf = RoundFaults::none(n4());
        for (_, d) in rf.iter() {
            assert!(d.is_empty());
        }
        assert!(rf.union().is_empty());
        assert!(rf.intersection().is_empty());
        assert!(rf.uncertainty().is_empty());
    }

    #[test]
    fn union_intersection_uncertainty() {
        let n = n4();
        let rf = RoundFaults::from_sets(n, vec![ids(&[3]), ids(&[2, 3]), ids(&[3]), ids(&[3])]);
        assert_eq!(rf.union(), ids(&[2, 3]));
        assert_eq!(rf.intersection(), ids(&[3]));
        assert_eq!(rf.uncertainty(), ids(&[2]));
    }

    #[test]
    #[should_panic(expected = "one D(i,r) per process")]
    fn from_sets_checks_arity() {
        let _ = RoundFaults::from_sets(n4(), vec![IdSet::empty(); 3]);
    }

    #[test]
    #[should_panic(expected = "escapes the process universe")]
    fn from_sets_checks_universe() {
        let _ = RoundFaults::from_sets(
            n4(),
            vec![ids(&[5]), IdSet::empty(), IdSet::empty(), IdSet::empty()],
        );
    }

    #[test]
    #[should_panic(expected = "escapes the process universe")]
    fn set_checks_universe() {
        let mut rf = RoundFaults::none(n4());
        rf.set(ProcessId::new(0), ids(&[7]));
    }

    #[test]
    fn pattern_records_rounds_in_order() {
        let n = n4();
        let mut p = FaultPattern::new(n);
        assert!(p.is_empty());
        let mut r1 = RoundFaults::none(n);
        r1.set(ProcessId::new(0), ids(&[1]));
        p.push(r1.clone());
        let mut r2 = RoundFaults::none(n);
        r2.set(ProcessId::new(2), ids(&[0, 1]));
        p.push(r2.clone());

        assert_eq!(p.rounds(), 2);
        assert_eq!(p.round(Round::new(1)), Some(&r1));
        assert_eq!(p.round(Round::new(2)), Some(&r2));
        assert_eq!(p.round(Round::new(3)), None);
        assert_eq!(p.last(), Some(&r2));
        assert_eq!(p.of(ProcessId::new(2), Round::new(2)), Some(ids(&[0, 1])));
        assert_eq!(p.cumulative_union(), ids(&[0, 1]));
    }

    #[test]
    fn cumulative_union_grows_monotonically() {
        let n = n4();
        let mut p = FaultPattern::new(n);
        let mut seen = IdSet::empty();
        for r in 0..4 {
            let mut rf = RoundFaults::none(n);
            rf.set(ProcessId::new(r % 4), ids(&[(r + 1) % 4]));
            p.push(rf);
            let cu = p.cumulative_union();
            assert!(seen.is_subset(cu));
            seen = cu;
        }
    }

    #[test]
    fn iter_yields_one_based_rounds() {
        let n = n4();
        let mut p = FaultPattern::new(n);
        p.push(RoundFaults::none(n));
        p.push(RoundFaults::none(n));
        let rounds: Vec<u32> = p.iter().map(|(r, _)| r.get()).collect();
        assert_eq!(rounds, vec![1, 2]);
    }
}
