//! Fixed-bucket histograms.
//!
//! One bucket layout serves the whole workspace: powers of four from 1 to
//! 2³⁰ (≈1.07 s in nanoseconds), plus an overflow bucket. The same bounds
//! work for set sizes (`|D(i,r)|` lives in the first few buckets) and for
//! round latencies (microseconds to a second). Fixed bounds are what make
//! snapshots mergeable and byte-identical across runs — there is no
//! adaptive state to diverge.

/// Upper bounds (inclusive) of the non-overflow buckets: `4^k` for
/// `k = 0..=15`.
pub const BUCKET_BOUNDS: [u64; 16] = [
    1,
    4,
    16,
    64,
    256,
    1_024,
    4_096,
    16_384,
    65_536,
    262_144,
    1_048_576,
    4_194_304,
    16_777_216,
    67_108_864,
    268_435_456,
    1_073_741_824,
];

/// A live histogram: per-bucket counts plus total count and sum. The last
/// slot counts observations above [`BUCKET_BOUNDS`]'s largest bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKET_BOUNDS.len() + 1],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKET_BOUNDS.len() + 1],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let idx = BUCKET_BOUNDS
            .iter()
            .position(|&bound| value <= bound)
            .unwrap_or(BUCKET_BOUNDS.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Freezes the histogram into its serializable form, dropping empty
    /// buckets.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .counts
            .iter()
            .take(BUCKET_BOUNDS.len())
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (BUCKET_BOUNDS[i], c))
            .collect();
        HistogramSnapshot {
            buckets,
            count: self.count,
            sum: self.sum,
        }
    }
}

/// A frozen histogram: `(upper_bound, count)` pairs for the non-empty
/// finite buckets. Observations beyond the largest bound are only in
/// `count` (Prometheus's `+Inf` bucket).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Non-empty finite buckets as `(inclusive upper bound, count)`.
    pub buckets: Vec<(u64, u64)>,
    /// Total observations, including overflow.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// An upper bound on the `q`-quantile (`0.0 ..= 1.0`): the bound of
    /// the first bucket whose cumulative count reaches it. `None` when the
    /// histogram is empty or the quantile falls in the overflow bucket.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let clamped = q.clamp(0.0, 1.0);
        // ceil(q * count) computed in integers where possible.
        let rank = ((clamped * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for &(bound, bucket_count) in &self.buckets {
            cumulative += bucket_count;
            if cumulative >= rank {
                return Some(bound);
            }
        }
        None // falls in the overflow bucket
    }

    /// The mean observed value, `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<u64> {
        (self.count > 0).then(|| self.sum / self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_land_in_the_right_buckets() {
        let mut h = Histogram::new();
        h.observe(0); // ≤ 1
        h.observe(1); // ≤ 1
        h.observe(2); // ≤ 4
        h.observe(100); // ≤ 256
        h.observe(u64::MAX); // overflow
        assert_eq!(h.count(), 5);
        let snap = h.snapshot();
        assert_eq!(snap.buckets, vec![(1, 2), (4, 1), (256, 1)]);
        assert_eq!(snap.count, 5);
    }

    #[test]
    fn quantiles_are_bucket_bounds() {
        let mut h = Histogram::new();
        for v in [1u64, 1, 1, 100, 100, 5000] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.quantile(0.5), Some(1));
        assert_eq!(snap.quantile(0.75), Some(256));
        assert_eq!(snap.quantile(1.0), Some(16_384));
        assert_eq!(snap.quantile(0.0), Some(1));
    }

    #[test]
    fn overflow_quantile_is_none() {
        let mut h = Histogram::new();
        h.observe(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.quantile(0.5), None);
        assert_eq!(snap.count, 1);
        assert!(snap.buckets.is_empty());
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.quantile(0.5), None);
        assert_eq!(snap.mean(), None);
    }

    #[test]
    fn mean_is_integer_division() {
        let mut h = Histogram::new();
        h.observe(10);
        h.observe(5);
        assert_eq!(h.snapshot().mean(), Some(7));
    }
}
