//! The workspace's metric taxonomy: every instrumented crate records
//! under a name from this module, so exports stay greppable and the
//! `rrfd-analyze -- stats` renderer knows what to look for.
//!
//! Naming follows Prometheus conventions: `rrfd_<substrate>_<what>` with
//! a `_total` suffix for counters and a `_ns` suffix for nanosecond
//! histograms. Labels are always the [`crate::Labels`] pair
//! `(process, round)` — never free-form strings — which bounds
//! cardinality at `n × rounds`.

// -- rrfd-core::Engine (the in-process round engine) ------------------------

/// Counter: rounds executed, per round (so also a round-liveness marker).
pub const ENGINE_ROUNDS: &str = "rrfd_engine_rounds_total";
/// Counter: messages emitted, per round (`n` per round, all processes).
pub const ENGINE_MESSAGES_EMITTED: &str = "rrfd_engine_messages_emitted_total";
/// Counter: messages received, per `(process, round)` — `|S(i,r)|`.
pub const ENGINE_MESSAGES_RECEIVED: &str = "rrfd_engine_messages_received_total";
/// Histogram: suspicion-set size `|D(i,r)|`, per `(process, round)`.
pub const ENGINE_SUSPICION_SIZE: &str = "rrfd_engine_suspicion_size";
/// Histogram: heard-of set size `|S(i,r)|`, per `(process, round)`.
pub const ENGINE_HEARD_SIZE: &str = "rrfd_engine_heard_size";
/// Counter: first decisions, per `(process, round)`.
pub const ENGINE_DECISIONS: &str = "rrfd_engine_decisions_total";
/// Histogram: round latency in clock ns, per round.
pub const ENGINE_ROUND_LATENCY: &str = "rrfd_engine_round_latency_ns";
/// Counter: adversary violations caught by validation.
pub const ENGINE_VIOLATIONS: &str = "rrfd_engine_violations_total";
/// Counter: deliveries served from the round's shared emission table (no
/// per-recipient payload clone), per `(process, round)`. On the zero-copy
/// plane this equals messages received; a clone-plane engine records zero.
pub const ENGINE_DELIVERIES_SHARED: &str = "rrfd_engine_deliveries_shared_total";
/// Counter: message payload bytes deep-copied to build deliveries, per
/// `(process, round)`. Zero on the shared plane; the clone-plane reference
/// engine (rrfd-bench) records its per-recipient copies here.
pub const ENGINE_MSG_BYTES_CLONED: &str = "rrfd_engine_msg_bytes_cloned_total";

// -- rrfd-runtime::ThreadedEngine (coordinator + process threads) -----------

/// Counter: messages emitted by process threads, per `(process, round)`.
pub const RUNTIME_MESSAGES_EMITTED: &str = "rrfd_runtime_messages_emitted_total";
/// Counter: emissions gathered by the coordinator, per `(process, round)`.
pub const RUNTIME_GATHERS: &str = "rrfd_runtime_gathers_total";
/// Counter: detector consultations, per round.
pub const RUNTIME_DETECTS: &str = "rrfd_runtime_detects_total";
/// Counter: deliveries sent by the coordinator, per `(process, round)`.
pub const RUNTIME_DELIVERIES: &str = "rrfd_runtime_deliveries_total";
/// Counter: deliveries received by process threads, per `(process, round)`.
pub const RUNTIME_MESSAGES_RECEIVED: &str = "rrfd_runtime_messages_received_total";
/// Counter: decisions, per `(process, round)`.
pub const RUNTIME_DECISIONS: &str = "rrfd_runtime_decisions_total";
/// Counter: coordinator shared-state accesses.
pub const RUNTIME_STATE_ACCESSES: &str = "rrfd_runtime_state_accesses_total";
/// Histogram: coordinator wall latency per round, in clock ns, per round.
pub const RUNTIME_ROUND_LATENCY: &str = "rrfd_runtime_round_latency_ns";
/// Counter: gather timeouts (a thread missed its emission window).
pub const RUNTIME_GATHER_TIMEOUTS: &str = "rrfd_runtime_gather_timeouts_total";
/// Counter: runs ending in `ThreadedError::Violation`.
pub const RUNTIME_ERR_VIOLATION: &str = "rrfd_runtime_errors_violation_total";
/// Counter: runs ending in `ThreadedError::WrongProcessCount`.
pub const RUNTIME_ERR_WRONG_COUNT: &str = "rrfd_runtime_errors_wrong_process_count_total";
/// Counter: runs ending in `ThreadedError::RoundLimitExceeded`.
pub const RUNTIME_ERR_ROUND_LIMIT: &str = "rrfd_runtime_errors_round_limit_total";
/// Counter: runs ending in `ThreadedError::ProcessDied`, per process.
pub const RUNTIME_ERR_PROCESS_DIED: &str = "rrfd_runtime_errors_process_died_total";
/// Counter: runs ending in `ThreadedError::ProcessPanicked`, per process.
pub const RUNTIME_ERR_PROCESS_PANICKED: &str = "rrfd_runtime_errors_process_panicked_total";
/// Counter: runs ending in `ThreadedError::ChannelClosed`.
pub const RUNTIME_ERR_CHANNEL_CLOSED: &str = "rrfd_runtime_errors_channel_closed_total";

// -- rrfd-sims (adversarial schedulers + exhaustive exploration) ------------

/// Counter: scheduler decisions taken, per stepped/crashed process.
pub const SIM_SCHED_EVENTS: &str = "rrfd_sim_sched_events_total";
/// Counter: step events, per process.
pub const SIM_STEPS: &str = "rrfd_sim_steps_total";
/// Counter: crash events, per process.
pub const SIM_CRASHES: &str = "rrfd_sim_crashes_total";
/// Counter: message deliveries chosen by a network scheduler, per receiver.
pub const SIM_DELIVERIES: &str = "rrfd_sim_deliveries_total";
/// Histogram: branching factor (runnable/option count) at each decision.
pub const SIM_BRANCHING: &str = "rrfd_sim_branching";
/// Gauge: schedule depth — decisions taken by this scheduler so far.
pub const SIM_SCHED_DEPTH: &str = "rrfd_sim_sched_depth";
/// Counter: complete schedules enumerated by `explore`.
pub const EXPLORE_SCHEDULES: &str = "rrfd_explore_schedules_total";
/// Counter: decision points (explored states) visited by `explore`.
pub const EXPLORE_DECISION_POINTS: &str = "rrfd_explore_decision_points_total";
/// Gauge: deepest decision sequence any explored schedule reached.
pub const EXPLORE_MAX_DEPTH: &str = "rrfd_explore_max_depth";
/// Counter: subtrees skipped by converged-state memoization
/// (`explore_par` hash pruning).
pub const EXPLORE_PRUNED_HASH: &str = "rrfd_explore_pruned_by_hash_total";
/// Counter: branches skipped by process-id symmetry reduction
/// (`explore_par`, opt-in).
pub const EXPLORE_PRUNED_SYMMETRY: &str = "rrfd_explore_pruned_by_symmetry_total";
/// Gauge: worker threads the exploration ran on.
pub const EXPLORE_WORKERS: &str = "rrfd_explore_workers";
/// Counter: independent subtree jobs the schedule tree was split into.
pub const EXPLORE_SPLITS: &str = "rrfd_explore_splits_total";
/// Gauge: distinct states the converged-state memos retained, summed over
/// jobs (`0` with pruning off or for the sequential explorers).
pub const EXPLORE_MEMO_ENTRIES: &str = "rrfd_explore_memo_entries";
/// Gauge: state-encoding bytes the memos retained, summed over jobs.
pub const EXPLORE_MEMO_BYTES: &str = "rrfd_explore_memo_bytes";
/// Gauge: `1` when any job's memo hit its entry or byte cap and stopped
/// inserting (degraded pruning), else `0`.
pub const EXPLORE_MEMO_SATURATED: &str = "rrfd_explore_memo_saturated";

// -- rrfd-engine-pool (multi-tenant batch execution) -------------------------

/// Counter: instances a pool shard retired with a full decision, per
/// shard (labelled `process = shard`).
pub const POOL_INSTANCES: &str = "rrfd_pool_instances_total";
/// Counter: instances a pool shard retired with an engine error
/// (round limit, violation), per shard. Errored instances never poison
/// their shard — this counter is the evidence they were contained.
pub const POOL_ERRORS: &str = "rrfd_pool_errors_total";
/// Counter: engine rounds executed by instances that decided, per
/// shard (errored instances' partial rounds are not counted, matching
/// the batch report's definition).
pub const POOL_ROUNDS: &str = "rrfd_pool_rounds_total";
/// Histogram: latency of one multiplexed engine step (one instance, one
/// round) in clock ns. The batch harness reports its p99.
pub const POOL_ROUND_LATENCY: &str = "rrfd_pool_round_latency_ns";
/// Counter: admissions that reused a retired run's emission-table
/// buffer instead of allocating (the slab lifecycle at work), per shard.
pub const POOL_BUFFER_REUSES: &str = "rrfd_pool_buffer_reuses_total";
/// Gauge: shards the batch ran on.
pub const POOL_SHARDS: &str = "rrfd_pool_shards";

// -- conformance monitor (rrfd-models::conformance) --------------------------
//
// The monitor watches one run's per-round suspicions and decides, for
// each of the 13 zoo predicates, whether the run still conforms. The
// predicate is identified by its zoo index carried in the `process`
// label — a documented reuse of the bounded label schema (zoo size 13,
// far below any process count the label was sized for).

/// Counter: rounds the conformance monitor has observed.
pub const CONF_ROUNDS: &str = "rrfd_conformance_rounds_total";
/// Counter: individual predicate evaluations performed (≤ zoo size per
/// round — already-violated predicates are not re-evaluated).
pub const CONF_CHECKS: &str = "rrfd_conformance_checks_total";
/// Gauge: `1` while the predicate at zoo index `process` is still
/// satisfied by every observed round, `0` once violated.
pub const CONF_SATISFIED: &str = "rrfd_conformance_satisfied";
/// Gauge: the round in which the predicate at zoo index `process` was
/// first violated (unset while it still holds).
pub const CONF_FIRST_VIOLATION: &str = "rrfd_conformance_first_violation_round";
/// Gauge: strength rank of the strongest zoo predicate the run still
/// satisfies (lower = stronger; `-1` when nothing holds).
pub const CONF_STRONGEST: &str = "rrfd_conformance_strongest_rank";
