//! The flight recorder: a fixed-size ring of the most recent rounds'
//! events, kept so that a failing run can ship its own evidence.
//!
//! Runtimes note one line per interesting event (`gathered p0..p3`,
//! `suspected {2}`, `delivery to p1 failed`) under the round it happened
//! in. The ring holds the last `cap` *rounds* — not lines — so a dump
//! always covers a contiguous suffix of the run, every process included.
//! Nothing is rendered until [`FlightRecorder::dump`] is called, which
//! only happens on the error path; the happy path pays one `VecDeque`
//! push per noted line and drops the whole thing on success.
//!
//! The dump format is versioned text (`rrfd-flight v1`), deliberately
//! greppable rather than JSON: it is written for the human reading a
//! failure report, and round-trips through nothing.

use std::collections::VecDeque;

/// Default number of recent rounds a flight recorder retains.
pub const DEFAULT_FLIGHT_ROUNDS: usize = 8;

/// A bounded ring of recent rounds' event lines.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    cap: usize,
    rounds: VecDeque<(u32, Vec<String>)>,
    dropped: u64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_FLIGHT_ROUNDS)
    }
}

impl FlightRecorder {
    /// A recorder retaining the last `cap` rounds (minimum 1).
    #[must_use]
    pub fn new(cap: usize) -> Self {
        FlightRecorder {
            cap: cap.max(1),
            rounds: VecDeque::new(),
            dropped: 0,
        }
    }

    /// How many rounds the ring retains.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Notes one event line under `round`. Rounds are expected to be
    /// non-decreasing; a note for an already-evicted round is counted as
    /// dropped rather than resurrecting the round out of order.
    pub fn note(&mut self, round: u32, line: impl Into<String>) {
        let line = line.into();
        match self.rounds.back_mut() {
            Some((r, lines)) if *r == round => {
                lines.push(line);
                return;
            }
            _ => {}
        }
        if let Some((_, lines)) = self.rounds.iter_mut().find(|(r, _)| *r == round) {
            // A late note for a round that is still retained.
            lines.push(line);
            return;
        }
        if self.rounds.iter().any(|(r, _)| *r > round) {
            // Out-of-order note for an already-evicted round.
            self.dropped += 1;
            return;
        }
        self.rounds.push_back((round, vec![line]));
        while self.rounds.len() > self.cap {
            if let Some((_, lines)) = self.rounds.pop_front() {
                self.dropped += lines.len() as u64;
            }
        }
    }

    /// The rounds currently retained, ascending.
    #[must_use]
    pub fn rounds(&self) -> Vec<u32> {
        self.rounds.iter().map(|(r, _)| *r).collect()
    }

    /// `true` when nothing has been noted (a dump would carry no rounds).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Renders the post-mortem capture: an `rrfd-flight v1` header with
    /// the failure `reason`, then every retained round's lines in order.
    #[must_use]
    pub fn dump(&self, reason: &str) -> String {
        let mut out = String::from("rrfd-flight v1\n");
        out.push_str(&format!("reason: {reason}\n"));
        out.push_str(&format!(
            "rounds-retained: {} (cap {})\n",
            self.rounds.len(),
            self.cap
        ));
        if self.dropped > 0 {
            out.push_str(&format!("lines-evicted: {}\n", self.dropped));
        }
        for (round, lines) in &self.rounds {
            out.push_str(&format!("round {round}:\n"));
            for line in lines {
                out.push_str("  ");
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_only_the_last_cap_rounds() {
        let mut fr = FlightRecorder::new(3);
        for r in 1..=10u32 {
            fr.note(r, format!("event in r{r}"));
            fr.note(r, "second line");
        }
        assert_eq!(fr.rounds(), vec![8, 9, 10]);
        let dump = fr.dump("test");
        assert!(dump.starts_with("rrfd-flight v1\nreason: test\n"), "{dump}");
        assert!(dump.contains("round 8:\n  event in r8\n  second line\n"));
        assert!(!dump.contains("round 7:"));
        assert!(dump.contains("lines-evicted: 14"));
    }

    #[test]
    fn notes_for_the_same_round_group_together() {
        let mut fr = FlightRecorder::new(4);
        fr.note(1, "a");
        fr.note(1, "b");
        fr.note(2, "c");
        fr.note(1, "late but round still retained");
        assert_eq!(fr.rounds(), vec![1, 2]);
        let dump = fr.dump("x");
        assert!(dump.contains("round 1:\n  a\n  b\n  late but round still retained\n"));
    }

    #[test]
    fn evicted_round_notes_are_dropped_not_resurrected() {
        let mut fr = FlightRecorder::new(2);
        for r in 1..=5u32 {
            fr.note(r, "x");
        }
        fr.note(1, "ghost");
        assert_eq!(fr.rounds(), vec![4, 5]);
        assert!(!fr.dump("x").contains("ghost"));
    }

    #[test]
    fn empty_recorder_dumps_header_only() {
        let fr = FlightRecorder::new(8);
        assert!(fr.is_empty());
        let dump = fr.dump("early death");
        assert!(dump.contains("reason: early death"));
        assert!(dump.contains("rounds-retained: 0 (cap 8)"));
    }

    #[test]
    fn zero_cap_is_clamped_to_one() {
        let mut fr = FlightRecorder::new(0);
        fr.note(1, "a");
        fr.note(2, "b");
        assert_eq!(fr.rounds(), vec![2]);
    }
}
