//! Recorders: where metric samples go.
//!
//! The [`Recorder`] trait is the single sink interface; instrumented code
//! holds it behind an [`crate::Obs`] handle. Two implementations ship:
//! [`NoopRecorder`] (the disabled default) and [`ShardedRecorder`], a
//! "lock-free-enough" store — samples hash to one of a fixed set of
//! shards, each a small mutex-guarded map, so concurrent writers from the
//! threaded runtime rarely contend. Determinism comes at snapshot time,
//! not record time: [`Recorder::snapshot`] sorts every entry by
//! `(metric, process, round)`, so physical recording order never leaks
//! into an export.

use crate::hist::{Histogram, HistogramSnapshot};
use crate::span::{self, SpanRecord};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

/// The label schema every sample carries: which process (if any) and
/// which round (0 = not round-scoped). Bounded cardinality by
/// construction — no free-form strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Labels {
    /// The process the sample describes, or `None` for system-wide.
    pub process: Option<u32>,
    /// The round the sample describes, or 0 for run-wide.
    pub round: u32,
}

impl Labels {
    /// Run-wide, system-wide: no process, no round.
    pub const GLOBAL: Labels = Labels {
        process: None,
        round: 0,
    };

    /// System-wide but round-scoped.
    #[must_use]
    pub fn round(round: u32) -> Self {
        Labels {
            process: None,
            round,
        }
    }

    /// Process-scoped, run-wide.
    #[must_use]
    pub fn process(process: usize) -> Self {
        Labels {
            process: Some(process as u32),
            round: 0,
        }
    }

    /// Process- and round-scoped — the full key.
    #[must_use]
    pub fn process_round(process: usize, round: u32) -> Self {
        Labels {
            process: Some(process as u32),
            round,
        }
    }
}

/// A frozen sample value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A monotonically increasing count.
    Counter(u64),
    /// A last-write-wins level.
    Gauge(i64),
    /// A frozen distribution.
    Histogram(HistogramSnapshot),
}

/// One snapshot row: a metric at a label set with its frozen value.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// The metric name (`rrfd_`-prefixed; see [`crate::names`]).
    pub metric: String,
    /// The sample's labels.
    pub labels: Labels,
    /// The frozen value.
    pub value: MetricValue,
}

/// A deterministic, sorted snapshot of a recorder's contents.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    entries: Vec<Entry>,
}

impl Snapshot {
    /// Builds a snapshot from rows, sorting them into canonical
    /// `(metric, process, round)` order.
    #[must_use]
    pub fn from_entries(mut entries: Vec<Entry>) -> Self {
        entries.sort_by(|a, b| (a.metric.as_str(), a.labels).cmp(&(b.metric.as_str(), b.labels)));
        Snapshot { entries }
    }

    /// The rows, in canonical order.
    #[must_use]
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// The value recorded for `metric` at exactly `labels`.
    #[must_use]
    pub fn get(&self, metric: &str, labels: Labels) -> Option<&MetricValue> {
        self.entries
            .iter()
            .find(|e| e.metric == metric && e.labels == labels)
            .map(|e| &e.value)
    }

    /// The sum of every counter row of `metric`, across all labels.
    #[must_use]
    pub fn counter_total(&self, metric: &str) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.metric == metric)
            .map(|e| match &e.value {
                MetricValue::Counter(v) => *v,
                _ => 0,
            })
            .sum()
    }

    /// The distinct rounds (> 0) appearing in any row's labels, ascending.
    #[must_use]
    pub fn rounds(&self) -> Vec<u32> {
        let mut rounds: Vec<u32> = self
            .entries
            .iter()
            .map(|e| e.labels.round)
            .filter(|&r| r > 0)
            .collect();
        rounds.sort_unstable();
        rounds.dedup();
        rounds
    }
}

/// A sink for metric samples. Implementations must tolerate concurrent
/// callers and must produce canonically sorted snapshots.
pub trait Recorder: Send + Sync + std::fmt::Debug {
    /// Adds `delta` to the counter `metric` at `labels`.
    fn add(&self, metric: &'static str, labels: Labels, delta: u64);
    /// Sets the gauge `metric` at `labels`.
    fn gauge(&self, metric: &'static str, labels: Labels, value: i64);
    /// Records `value` into the histogram `metric` at `labels`.
    fn observe(&self, metric: &'static str, labels: Labels, value: u64);
    /// Freezes the current contents into a sorted [`Snapshot`].
    fn snapshot(&self) -> Snapshot;
    /// Retains a closed causal span. The default drops it, so recorders
    /// that predate the tracing plane stay valid implementations.
    fn record_span(&self, span: SpanRecord) {
        let _ = span;
    }
    /// The spans retained so far, in canonical export order (empty for
    /// recorders that do not retain spans).
    fn spans(&self) -> Vec<SpanRecord> {
        Vec::new()
    }
}

/// The disabled recorder: drops everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn add(&self, _metric: &'static str, _labels: Labels, _delta: u64) {}
    fn gauge(&self, _metric: &'static str, _labels: Labels, _value: i64) {}
    fn observe(&self, _metric: &'static str, _labels: Labels, _value: u64) {}
    fn snapshot(&self) -> Snapshot {
        Snapshot::default()
    }
}

/// One live slot in a shard. A metric's kind is fixed by its first sample;
/// mismatched operations on an existing slot are ignored rather than
/// panicking (the lint pass keeps `panic!` out of library code, and a
/// metrics layer must never take a run down).
#[derive(Debug)]
enum Slot {
    Counter(u64),
    Gauge(i64),
    Hist(Histogram),
}

const SHARDS: usize = 16;

/// The default enabled recorder: samples hash to one of `SHARDS`
/// mutex-guarded maps keyed by `(metric, labels)`. Contention is limited
/// to samples that collide on a shard; the maps are only merged (and
/// sorted) at snapshot time.
#[derive(Debug)]
pub struct ShardedRecorder {
    shards: Vec<Mutex<HashMap<(&'static str, Labels), Slot>>>,
    /// Span storage, sharded by instance so the pool's parallel shards
    /// (each driving a distinct instance range) rarely contend.
    span_shards: Vec<Mutex<Vec<SpanRecord>>>,
}

impl Default for ShardedRecorder {
    fn default() -> Self {
        ShardedRecorder {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            span_shards: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }
}

impl ShardedRecorder {
    /// An empty recorder.
    #[must_use]
    pub fn new() -> Self {
        ShardedRecorder::default()
    }

    fn shard(
        &self,
        metric: &'static str,
        labels: Labels,
    ) -> &Mutex<HashMap<(&'static str, Labels), Slot>> {
        let mut hasher = DefaultHasher::new();
        metric.hash(&mut hasher);
        labels.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARDS]
    }

    fn with_slot(
        &self,
        metric: &'static str,
        labels: Labels,
        make: impl FnOnce() -> Slot,
        update: impl FnOnce(&mut Slot),
    ) {
        let mut map = self
            .shard(metric, labels)
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let slot = map.entry((metric, labels)).or_insert_with(make);
        update(slot);
    }
}

impl Recorder for ShardedRecorder {
    fn add(&self, metric: &'static str, labels: Labels, delta: u64) {
        self.with_slot(
            metric,
            labels,
            || Slot::Counter(0),
            |slot| {
                if let Slot::Counter(v) = slot {
                    *v = v.saturating_add(delta);
                }
            },
        );
    }

    fn gauge(&self, metric: &'static str, labels: Labels, value: i64) {
        self.with_slot(
            metric,
            labels,
            || Slot::Gauge(0),
            |slot| {
                if let Slot::Gauge(v) = slot {
                    *v = value;
                }
            },
        );
    }

    fn observe(&self, metric: &'static str, labels: Labels, value: u64) {
        self.with_slot(
            metric,
            labels,
            || Slot::Hist(Histogram::new()),
            |slot| {
                if let Slot::Hist(h) = slot {
                    h.observe(value);
                }
            },
        );
    }

    fn snapshot(&self) -> Snapshot {
        let mut entries = Vec::new();
        for shard in &self.shards {
            let map = shard.lock().unwrap_or_else(|e| e.into_inner());
            for (&(metric, labels), slot) in map.iter() {
                let value = match slot {
                    Slot::Counter(v) => MetricValue::Counter(*v),
                    Slot::Gauge(v) => MetricValue::Gauge(*v),
                    Slot::Hist(h) => MetricValue::Histogram(h.snapshot()),
                };
                entries.push(Entry {
                    metric: metric.to_owned(),
                    labels,
                    value,
                });
            }
        }
        Snapshot::from_entries(entries)
    }

    fn record_span(&self, span: SpanRecord) {
        let mut shard = self.span_shards[(span.instance as usize) % SHARDS]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        shard.push(span);
    }

    fn spans(&self) -> Vec<SpanRecord> {
        let mut all = Vec::new();
        for shard in &self.span_shards {
            let spans = shard.lock().unwrap_or_else(|e| e.into_inner());
            all.extend_from_slice(&spans);
        }
        span::sort_canonical(&mut all);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let rec = ShardedRecorder::new();
        rec.add("m", Labels::round(1), 2);
        rec.add("m", Labels::round(1), 3);
        rec.add("m", Labels::round(2), 1);
        let snap = rec.snapshot();
        assert_eq!(
            snap.get("m", Labels::round(1)),
            Some(&MetricValue::Counter(5))
        );
        assert_eq!(snap.counter_total("m"), 6);
        assert_eq!(snap.rounds(), vec![1, 2]);
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let rec = ShardedRecorder::new();
        rec.gauge("g", Labels::GLOBAL, 10);
        rec.gauge("g", Labels::GLOBAL, -4);
        assert_eq!(
            rec.snapshot().get("g", Labels::GLOBAL),
            Some(&MetricValue::Gauge(-4))
        );
    }

    #[test]
    fn histograms_record_distributions() {
        let rec = ShardedRecorder::new();
        rec.observe("h", Labels::process_round(0, 1), 3);
        rec.observe("h", Labels::process_round(0, 1), 100);
        let snap = rec.snapshot();
        let Some(MetricValue::Histogram(h)) = snap.get("h", Labels::process_round(0, 1)) else {
            panic!("expected a histogram");
        };
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 103);
    }

    #[test]
    fn kind_mismatch_is_ignored_not_fatal() {
        let rec = ShardedRecorder::new();
        rec.add("m", Labels::GLOBAL, 1);
        rec.observe("m", Labels::GLOBAL, 99); // ignored: m is a counter
        rec.gauge("m", Labels::GLOBAL, 7); // ignored too
        assert_eq!(
            rec.snapshot().get("m", Labels::GLOBAL),
            Some(&MetricValue::Counter(1))
        );
    }

    #[test]
    fn snapshots_are_canonically_sorted() {
        let rec = ShardedRecorder::new();
        rec.add("z", Labels::GLOBAL, 1);
        rec.add("a", Labels::round(2), 1);
        rec.add("a", Labels::round(1), 1);
        rec.add("a", Labels::process_round(1, 1), 1);
        rec.add("a", Labels::process_round(0, 1), 1);
        let snap = rec.snapshot();
        let keys: Vec<(String, Labels)> = snap
            .entries()
            .iter()
            .map(|e| (e.metric.clone(), e.labels))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_by(|a, b| (a.0.as_str(), a.1).cmp(&(b.0.as_str(), b.1)));
        assert_eq!(keys, sorted);
        assert_eq!(snap.entries()[0].metric, "a");
        assert_eq!(snap.entries().last().map(|e| e.metric.as_str()), Some("z"));
    }

    #[test]
    fn concurrent_writers_lose_nothing() {
        use std::sync::Arc;
        let rec = Arc::new(ShardedRecorder::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let rec = Arc::clone(&rec);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    rec.add("c", Labels::process(t), 1);
                    rec.observe("h", Labels::process(t), i);
                }
            }));
        }
        for h in handles {
            h.join().expect("writer thread");
        }
        let snap = rec.snapshot();
        assert_eq!(snap.counter_total("c"), 4000);
    }

    #[test]
    fn spans_are_retained_and_canonically_ordered() {
        use crate::span::{SpanKind, SpanRecord};
        let rec = ShardedRecorder::new();
        let mk = |instance: u64, round: u32, start: u64| SpanRecord {
            instance,
            kind: SpanKind::Round,
            round,
            process: None,
            start_ns: start,
            end_ns: start + 100,
        };
        rec.record_span(mk(1, 1, 0));
        rec.record_span(mk(0, 2, 1000));
        rec.record_span(mk(0, 1, 0));
        let spans = rec.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(
            spans
                .iter()
                .map(|s| (s.instance, s.round))
                .collect::<Vec<_>>(),
            vec![(0, 1), (0, 2), (1, 1)]
        );
        // Spans never leak into the metric snapshot.
        assert!(rec.snapshot().entries().is_empty());
    }
}
