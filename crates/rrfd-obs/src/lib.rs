//! Round-structured observability for RRFD substrates.
//!
//! The paper's covering property `S(i,r) ∪ D(i,r) = S` makes the *round*
//! the natural unit of observation: "what did the detector suspect in
//! round `r`, and what did that cost" is a first-class question. This
//! crate answers it with a metrics layer whose every sample is keyed by
//! `(metric, process, round)` — counters, gauges, and fixed-bucket
//! histograms — plus a round-span API for timing rounds under a pluggable
//! [`Clock`], so instrumented runs stay deterministic in tests (logical
//! clock) while measuring real latency in production (wall clock).
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when disabled.** [`Obs::noop`] carries no allocation and
//!    every recording call is a single branch on an `Option`. The
//!    `obs_overhead` bench in `rrfd-bench` holds this to "within noise".
//! 2. **Deterministic by construction.** [`Snapshot`]s are sorted by
//!    `(metric, process, round)`; with the [`LogicalClock`], two identical
//!    runs produce byte-identical JSONL exports (a proptest in the
//!    workspace root asserts exactly this).
//! 3. **Dependency-free.** Only `std`: the crate sits below `rrfd-core`
//!    in the dependency graph so every substrate can use it.
//!
//! The flow: instrumented code records through an [`Obs`] handle (a
//! [`Recorder`] plus a [`Clock`]); a [`Snapshot`] is taken at the end of a
//! run; the snapshot exports to JSONL ([`Snapshot::to_jsonl`]) or
//! Prometheus text format ([`Snapshot::to_prometheus`], `rrfd_`-prefixed,
//! exemplar-free, file-targeted — no network); `rrfd-analyze -- stats`
//! renders per-round tables from the same data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod export;
pub mod flight;
mod hist;
pub mod json;
pub mod names;
mod recorder;
pub mod span;

pub use clock::{Clock, LogicalClock, WallClock};
pub use flight::{FlightRecorder, DEFAULT_FLIGHT_ROUNDS};
pub use hist::{Histogram, HistogramSnapshot, BUCKET_BOUNDS};
pub use recorder::{Entry, Labels, MetricValue, NoopRecorder, Recorder, ShardedRecorder, Snapshot};
pub use span::{SpanKind, SpanPhase, SpanRecord};

use std::sync::Arc;

/// A span over one round of one process (or the whole system): created by
/// [`Obs::round_enter`], consumed by [`Obs::round_exit`], which records the
/// elapsed clock time into a latency histogram keyed by the span's labels.
#[derive(Debug, Clone, Copy)]
pub struct RoundSpan {
    start_ns: u64,
    labels: Labels,
}

impl RoundSpan {
    /// The labels the span was opened with.
    #[must_use]
    pub fn labels(&self) -> Labels {
        self.labels
    }

    /// The clock reading taken when the span was opened. Lets a caller
    /// derive causal [`SpanRecord`]s from the same read instead of
    /// consulting the clock twice.
    #[must_use]
    pub fn start_ns(&self) -> u64 {
        self.start_ns
    }
}

#[derive(Debug)]
struct ObsInner {
    recorder: Arc<dyn Recorder>,
    clock: Arc<dyn Clock>,
}

/// The instrumentation handle every substrate records through: a
/// [`Recorder`] paired with a [`Clock`]. Cloning is cheap (an `Arc`), and
/// the no-op handle is a `None` — recording through it is one branch.
///
/// # Examples
///
/// ```
/// use rrfd_obs::{names, Labels, Obs};
///
/// let obs = Obs::logical();
/// obs.add(names::ENGINE_ROUNDS, Labels::round(1), 1);
/// let span = obs.round_enter(Labels::round(1));
/// obs.round_exit(names::ENGINE_ROUND_LATENCY, span);
/// let snap = obs.snapshot();
/// assert_eq!(snap.counter_total(names::ENGINE_ROUNDS), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl Obs {
    /// The disabled handle: records nothing, costs one branch per call.
    #[must_use]
    pub fn noop() -> Self {
        Obs { inner: None }
    }

    /// A sharded recorder driven by a [`LogicalClock`]: fully
    /// deterministic, for tests and simulation substrates.
    #[must_use]
    pub fn logical() -> Self {
        Obs::new(
            Arc::new(ShardedRecorder::new()),
            Arc::new(LogicalClock::new()),
        )
    }

    /// A sharded recorder driven by the [`WallClock`]: for the threaded
    /// runtime and benches, where latency is the point.
    #[must_use]
    pub fn wall() -> Self {
        Obs::new(Arc::new(ShardedRecorder::new()), Arc::new(WallClock::new()))
    }

    /// An enabled handle over an explicit recorder and clock.
    #[must_use]
    pub fn new(recorder: Arc<dyn Recorder>, clock: Arc<dyn Clock>) -> Self {
        Obs {
            inner: Some(Arc::new(ObsInner { recorder, clock })),
        }
    }

    /// `true` unless this is the no-op handle.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `delta` to the counter `metric` at `labels`.
    pub fn add(&self, metric: &'static str, labels: Labels, delta: u64) {
        if let Some(inner) = &self.inner {
            inner.recorder.add(metric, labels, delta);
        }
    }

    /// Sets the gauge `metric` at `labels` to `value`.
    pub fn gauge(&self, metric: &'static str, labels: Labels, value: i64) {
        if let Some(inner) = &self.inner {
            inner.recorder.gauge(metric, labels, value);
        }
    }

    /// Records `value` into the histogram `metric` at `labels`.
    pub fn observe(&self, metric: &'static str, labels: Labels, value: u64) {
        if let Some(inner) = &self.inner {
            inner.recorder.observe(metric, labels, value);
        }
    }

    /// Reads the clock (0 when disabled). Prefer spans over raw reads.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.clock.now_ns())
    }

    /// Opens a round span at `labels`; time it with [`Obs::round_exit`].
    #[must_use]
    pub fn round_enter(&self, labels: Labels) -> RoundSpan {
        RoundSpan {
            start_ns: self.now_ns(),
            labels,
        }
    }

    /// Closes `span`, recording the elapsed nanoseconds into the
    /// histogram `metric` at the span's labels.
    pub fn round_exit(&self, metric: &'static str, span: RoundSpan) {
        if let Some(inner) = &self.inner {
            let elapsed = inner.clock.now_ns().saturating_sub(span.start_ns);
            inner.recorder.observe(metric, span.labels, elapsed);
        }
    }

    /// A deterministic snapshot of everything recorded so far (empty for
    /// the no-op handle).
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        self.inner
            .as_ref()
            .map_or_else(Snapshot::default, |i| i.recorder.snapshot())
    }

    /// Retains a closed causal span (dropped by the no-op handle — the
    /// same single branch as every other recording call).
    pub fn record_span(&self, span: SpanRecord) {
        if let Some(inner) = &self.inner {
            inner.recorder.record_span(span);
        }
    }

    /// Opens and immediately retains a span for `[start_ns, now]` — the
    /// common shape when a phase is timed with one clock read at entry.
    pub fn close_span(
        &self,
        instance: u64,
        kind: SpanKind,
        round: u32,
        process: Option<u32>,
        start_ns: u64,
    ) {
        if let Some(inner) = &self.inner {
            inner.recorder.record_span(SpanRecord {
                instance,
                kind,
                round,
                process,
                start_ns,
                end_ns: inner.clock.now_ns(),
            });
        }
    }

    /// The spans retained so far, in canonical export order (empty for
    /// the no-op handle).
    #[must_use]
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.recorder.spans())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_records_nothing_and_reads_zero() {
        let obs = Obs::noop();
        assert!(!obs.is_enabled());
        obs.add(names::ENGINE_ROUNDS, Labels::GLOBAL, 5);
        obs.observe(names::ENGINE_ROUND_LATENCY, Labels::round(1), 10);
        obs.gauge(names::SIM_SCHED_DEPTH, Labels::GLOBAL, 3);
        assert_eq!(obs.now_ns(), 0);
        assert!(obs.snapshot().entries().is_empty());
    }

    #[test]
    fn logical_spans_are_deterministic() {
        let run = || {
            let obs = Obs::logical();
            for r in 1..=3u32 {
                let span = obs.round_enter(Labels::round(r));
                obs.add(names::ENGINE_ROUNDS, Labels::round(r), 1);
                obs.round_exit(names::ENGINE_ROUND_LATENCY, span);
            }
            obs.snapshot().to_jsonl()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn spans_flow_through_the_handle_and_noop_drops_them() {
        let noop = Obs::noop();
        noop.close_span(0, SpanKind::Round, 1, None, 0);
        assert!(noop.spans().is_empty());

        let obs = Obs::logical();
        let start = obs.now_ns();
        obs.close_span(0, SpanKind::Run, 0, None, start);
        obs.record_span(SpanRecord {
            instance: 0,
            kind: SpanKind::Phase(SpanPhase::Decide),
            round: 3,
            process: Some(1),
            start_ns: 10,
            end_ns: 20,
        });
        let spans = obs.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].kind, SpanKind::Run);
        // Spans stay out of the metric snapshot.
        assert!(obs.snapshot().entries().is_empty());
    }

    #[test]
    fn clones_share_the_recorder() {
        let obs = Obs::logical();
        let other = obs.clone();
        other.add(names::ENGINE_ROUNDS, Labels::GLOBAL, 2);
        obs.add(names::ENGINE_ROUNDS, Labels::GLOBAL, 3);
        assert_eq!(obs.snapshot().counter_total(names::ENGINE_ROUNDS), 5);
    }
}
