//! Snapshot exporters: JSONL (one metric row per line, machine-first) and
//! Prometheus text exposition format (`rrfd_`-prefixed, exemplar-free,
//! written to a file path — this crate never opens a socket).
//!
//! Both formats are pure functions of the canonical sorted [`Snapshot`],
//! so two identical runs export byte-identical files; the determinism
//! proptest in the workspace root depends on this.

use crate::json::{self, Json};
use crate::recorder::{Entry, Labels, MetricValue, Snapshot};
use crate::HistogramSnapshot;
use std::io;
use std::path::Path;

impl Snapshot {
    /// Serializes the snapshot as JSON Lines: one self-describing object
    /// per metric row, in canonical order.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for entry in self.entries() {
            out.push_str(&entry_to_json(entry));
            out.push('\n');
        }
        out
    }

    /// Serializes the snapshot in Prometheus text exposition format.
    /// Histograms render cumulative `_bucket{le=...}` series plus `_sum`
    /// and `_count`, matching native Prometheus histogram semantics.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_metric: Option<&str> = None;
        for entry in self.entries() {
            if last_metric != Some(entry.metric.as_str()) {
                let kind = match &entry.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) => "histogram",
                };
                out.push_str(&format!("# TYPE {} {kind}\n", entry.metric));
                last_metric = Some(entry.metric.as_str());
            }
            let labels = prom_labels(entry.labels, None);
            match &entry.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("{}{labels} {v}\n", entry.metric));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("{}{labels} {v}\n", entry.metric));
                }
                MetricValue::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for &(bound, count) in &h.buckets {
                        cumulative += count;
                        let le = prom_labels(entry.labels, Some(&bound.to_string()));
                        out.push_str(&format!("{}_bucket{le} {cumulative}\n", entry.metric));
                    }
                    let inf = prom_labels(entry.labels, Some("+Inf"));
                    out.push_str(&format!("{}_bucket{inf} {}\n", entry.metric, h.count));
                    out.push_str(&format!("{}_sum{labels} {}\n", entry.metric, h.sum));
                    out.push_str(&format!("{}_count{labels} {}\n", entry.metric, h.count));
                }
            }
        }
        out
    }

    /// Writes [`Snapshot::to_jsonl`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write_jsonl(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }

    /// Writes [`Snapshot::to_prometheus`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write_prometheus(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_prometheus())
    }

    /// Parses a snapshot back from its JSONL form.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first offending line.
    pub fn from_jsonl(text: &str) -> Result<Snapshot, String> {
        let mut entries = Vec::new();
        for (idx, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let entry = entry_from_json(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
            entries.push(entry);
        }
        Ok(Snapshot::from_entries(entries))
    }
}

/// Escapes a label value per the Prometheus text exposition-format
/// grammar: inside `label="…"`, backslash, double-quote, and line-feed
/// must appear as `\\`, `\"`, and `\n` respectively. Today's label
/// values are numeric (`process`, `round`) or bucket bounds (`le`), but
/// the exporter must not rely on that staying true — an unescaped quote
/// or newline would silently corrupt the whole exposition.
fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn prom_labels(labels: Labels, le: Option<&str>) -> String {
    let mut parts = Vec::new();
    if let Some(p) = labels.process {
        parts.push(format!(
            "process=\"{}\"",
            escape_label_value(&p.to_string())
        ));
    }
    if labels.round > 0 {
        parts.push(format!(
            "round=\"{}\"",
            escape_label_value(&labels.round.to_string())
        ));
    }
    if let Some(le) = le {
        parts.push(format!("le=\"{}\"", escape_label_value(le)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn entry_to_json(entry: &Entry) -> String {
    let mut fields = vec![format!("\"metric\":\"{}\"", json::escape(&entry.metric))];
    match &entry.value {
        MetricValue::Counter(_) => fields.push("\"type\":\"counter\"".to_owned()),
        MetricValue::Gauge(_) => fields.push("\"type\":\"gauge\"".to_owned()),
        MetricValue::Histogram(_) => fields.push("\"type\":\"histogram\"".to_owned()),
    }
    if let Some(p) = entry.labels.process {
        fields.push(format!("\"process\":{p}"));
    }
    fields.push(format!("\"round\":{}", entry.labels.round));
    match &entry.value {
        MetricValue::Counter(v) => fields.push(format!("\"value\":{v}")),
        MetricValue::Gauge(v) => fields.push(format!("\"value\":{v}")),
        MetricValue::Histogram(h) => {
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|(bound, count)| format!("[{bound},{count}]"))
                .collect();
            fields.push(format!("\"buckets\":[{}]", buckets.join(",")));
            fields.push(format!("\"count\":{}", h.count));
            fields.push(format!("\"sum\":{}", h.sum));
        }
    }
    format!("{{{}}}", fields.join(","))
}

fn entry_from_json(line: &str) -> Result<Entry, String> {
    let v = json::parse(line).map_err(|e| e.to_string())?;
    let metric = v
        .get("metric")
        .and_then(Json::as_str)
        .ok_or("missing `metric`")?
        .to_owned();
    let labels = Labels {
        process: match v.get("process") {
            Some(p) => Some(
                u32::try_from(p.as_u64().ok_or("bad `process`")?)
                    .map_err(|_| "oversized `process`")?,
            ),
            None => None,
        },
        round: u32::try_from(
            v.get("round")
                .and_then(Json::as_u64)
                .ok_or("missing `round`")?,
        )
        .map_err(|_| "oversized `round`")?,
    };
    let value = match v.get("type").and_then(Json::as_str) {
        Some("counter") => {
            MetricValue::Counter(v.get("value").and_then(Json::as_u64).ok_or("bad counter")?)
        }
        Some("gauge") => {
            MetricValue::Gauge(v.get("value").and_then(Json::as_i64).ok_or("bad gauge")?)
        }
        Some("histogram") => {
            let raw = v
                .get("buckets")
                .and_then(Json::as_array)
                .ok_or("missing `buckets`")?;
            let mut buckets = Vec::with_capacity(raw.len());
            for pair in raw {
                let pair = pair.as_array().ok_or("bad bucket pair")?;
                match pair {
                    [bound, count] => buckets.push((
                        bound.as_u64().ok_or("bad bucket bound")?,
                        count.as_u64().ok_or("bad bucket count")?,
                    )),
                    _ => return Err("bucket pair is not [bound, count]".to_owned()),
                }
            }
            MetricValue::Histogram(HistogramSnapshot {
                buckets,
                count: v.get("count").and_then(Json::as_u64).ok_or("bad `count`")?,
                sum: v.get("sum").and_then(Json::as_u64).ok_or("bad `sum`")?,
            })
        }
        _ => return Err("missing or unknown `type`".to_owned()),
    };
    Ok(Entry {
        metric,
        labels,
        value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{names, Obs};

    fn sample() -> Snapshot {
        let obs = Obs::logical();
        obs.add(names::ENGINE_ROUNDS, Labels::round(1), 1);
        obs.add(names::ENGINE_ROUNDS, Labels::round(2), 1);
        obs.add(
            names::ENGINE_MESSAGES_RECEIVED,
            Labels::process_round(0, 1),
            3,
        );
        obs.gauge(names::SIM_SCHED_DEPTH, Labels::GLOBAL, 7);
        obs.observe(names::ENGINE_SUSPICION_SIZE, Labels::process_round(1, 1), 2);
        obs.observe(
            names::ENGINE_SUSPICION_SIZE,
            Labels::process_round(1, 1),
            40,
        );
        obs.snapshot()
    }

    #[test]
    fn jsonl_round_trips() {
        let snap = sample();
        let text = snap.to_jsonl();
        let back = Snapshot::from_jsonl(&text).unwrap();
        assert_eq!(back, snap);
        // And re-serializing is byte-stable.
        assert_eq!(back.to_jsonl(), text);
    }

    #[test]
    fn jsonl_lines_are_self_describing() {
        let text = sample().to_jsonl();
        let first = text.lines().next().unwrap();
        assert!(first.contains("\"metric\":"), "{first}");
        assert!(first.contains("\"type\":"), "{first}");
        assert!(first.contains("\"round\":"), "{first}");
    }

    #[test]
    fn prometheus_renders_all_series_shapes() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE rrfd_engine_rounds_total counter"));
        assert!(text.contains("rrfd_engine_rounds_total{round=\"1\"} 1"));
        assert!(text.contains("# TYPE rrfd_sim_sched_depth gauge"));
        assert!(text.contains("rrfd_sim_sched_depth 7"));
        assert!(text
            .contains("rrfd_engine_suspicion_size_bucket{process=\"1\",round=\"1\",le=\"4\"} 1"));
        assert!(text
            .contains("rrfd_engine_suspicion_size_bucket{process=\"1\",round=\"1\",le=\"64\"} 2"));
        assert!(text.contains(
            "rrfd_engine_suspicion_size_bucket{process=\"1\",round=\"1\",le=\"+Inf\"} 2"
        ));
        assert!(text.contains("rrfd_engine_suspicion_size_sum{process=\"1\",round=\"1\"} 42"));
        assert!(text.contains("rrfd_engine_suspicion_size_count{process=\"1\",round=\"1\"} 2"));
        // Every metric name carries the rrfd_ prefix.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert!(line.starts_with("rrfd_"), "{line}");
        }
    }

    #[test]
    fn label_values_are_escaped_per_the_exposition_grammar() {
        // The grammar: label_value may contain any UTF-8 except the raw
        // characters `\`, `"`, and line-feed, which must be written as
        // the two-character sequences `\\`, `\"`, `\n`.
        assert_eq!(escape_label_value("plain-123"), "plain-123");
        assert_eq!(escape_label_value("back\\slash"), "back\\\\slash");
        assert_eq!(escape_label_value("quo\"te"), "quo\\\"te");
        assert_eq!(escape_label_value("new\nline"), "new\\nline");
        assert_eq!(
            escape_label_value("\\\"\n"),
            "\\\\\\\"\\n",
            "all three specials together"
        );
        // Escaping is idempotent on already-clean output: the escaped
        // form contains no raw quote or newline.
        for raw in ["a\\b", "a\"b", "a\nb", "\\\"\n\\\"\n"] {
            let escaped = escape_label_value(raw);
            assert!(!escaped.contains('\n'), "{escaped:?}");
            let mut chars = escaped.chars().peekable();
            while let Some(c) = chars.next() {
                if c == '\\' {
                    // Every backslash starts a valid escape sequence.
                    assert!(matches!(chars.next(), Some('\\' | '"' | 'n')));
                } else {
                    assert_ne!(c, '"', "unescaped quote in {escaped:?}");
                }
            }
        }
    }

    #[test]
    fn prom_labels_route_through_escaping() {
        // Numeric labels are unaffected…
        let text = sample().to_prometheus();
        assert!(text.contains("{process=\"1\",round=\"1\"}"));
        // …and a hostile `le` value cannot break out of its quotes.
        let rendered = prom_labels(Labels::GLOBAL, Some("bad\"le\nvalue\\"));
        assert_eq!(rendered, "{le=\"bad\\\"le\\nvalue\\\\\"}");
    }

    #[test]
    fn malformed_jsonl_is_rejected_with_line_numbers() {
        let err = Snapshot::from_jsonl("{\"metric\":\"m\"}\n").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
        let err = Snapshot::from_jsonl(
            "{\"metric\":\"m\",\"type\":\"counter\",\"round\":1,\"value\":1}\nnot json\n",
        )
        .unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn files_are_written() {
        let dir = std::env::temp_dir().join("rrfd_obs_export_test");
        std::fs::create_dir_all(&dir).unwrap();
        let snap = sample();
        let jsonl = dir.join("snap.jsonl");
        let prom = dir.join("snap.prom");
        snap.write_jsonl(&jsonl).unwrap();
        snap.write_prometheus(&prom).unwrap();
        assert_eq!(std::fs::read_to_string(&jsonl).unwrap(), snap.to_jsonl());
        assert_eq!(
            std::fs::read_to_string(&prom).unwrap(),
            snap.to_prometheus()
        );
    }
}
