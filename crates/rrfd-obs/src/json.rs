//! A minimal JSON reader — just enough to parse back the crate's own
//! JSONL exports and to validate `BENCH_rrfd.json` schemas, with no
//! external dependencies.
//!
//! Numbers are kept as `f64` (integers are exact up to 2⁵³, far beyond
//! any count or nanosecond total the workspace records in one run).
//! Strings support the standard escapes; `\u` escapes outside the BMP are
//! not combined into surrogate pairs (the workspace never emits them).

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integral number in range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The value as an `f64` number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON value, rejecting trailing garbage.
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte offset of the first problem.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after the value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {:?}", expected as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(self.error(format!("bad escape \\{}", other as char))),
                    }
                }
                Some(byte) => {
                    // Copy the whole UTF-8 sequence starting here.
                    let len = match byte {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.error("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.error("bad number"))
    }
}

/// Escapes `text` as the contents of a JSON string (no surrounding
/// quotes). Shared by the exporters so reading and writing agree.
#[must_use]
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" -3.5 ").unwrap(), Json::Num(-3.5));
        assert_eq!(parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(parse("\"hi\\n\"").unwrap(), Json::Str("hi\n".to_owned()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "x"}], "c": null}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Json::Null));
        let arr = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b").and_then(Json::as_str), Some("x"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
        let err = parse("nope").unwrap_err();
        assert_eq!(err.offset, 0);
    }

    #[test]
    fn escape_round_trips() {
        let original = "a\"b\\c\nd\te\u{1}";
        let quoted = format!("\"{}\"", escape(original));
        assert_eq!(parse(&quoted).unwrap(), Json::Str(original.to_owned()));
    }

    #[test]
    fn integer_accessors_reject_fractions() {
        assert_eq!(parse("2.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_i64(), Some(-1));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
    }
}
