//! Pluggable time sources for round spans.
//!
//! Instrumented code never reads `std::time` directly (the `obs` lint in
//! `rrfd-analyze` enforces this): it asks its [`Clock`]. The [`WallClock`]
//! measures real latency; the [`LogicalClock`] makes instrumented runs
//! deterministic — each read ticks a counter, so identical executions see
//! identical "times" and produce byte-identical snapshots.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond source.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// The current reading, in nanoseconds since an arbitrary origin.
    fn now_ns(&self) -> u64;
}

/// Real time: nanoseconds since the clock was created.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock anchored at the moment of creation.
    #[must_use]
    pub fn new() -> Self {
        WallClock {
            // The one sanctioned wall-clock read in the workspace's
            // instrumented crates; everything else goes through `Clock`.
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Deterministic time: every read advances the clock by one "nanosecond".
/// A span's duration is then the number of clock reads between enter and
/// exit — a property of the execution's structure, not its speed.
#[derive(Debug, Default)]
pub struct LogicalClock {
    ticks: AtomicU64,
}

impl LogicalClock {
    /// A logical clock starting at zero.
    #[must_use]
    pub fn new() -> Self {
        LogicalClock::default()
    }
}

impl Clock for LogicalClock {
    fn now_ns(&self) -> u64 {
        self.ticks.fetch_add(1, Ordering::Relaxed) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_clock_ticks_per_read() {
        let clock = LogicalClock::new();
        assert_eq!(clock.now_ns(), 1);
        assert_eq!(clock.now_ns(), 2);
        assert_eq!(clock.now_ns(), 3);
    }

    #[test]
    fn wall_clock_is_monotone() {
        let clock = WallClock::new();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }
}
