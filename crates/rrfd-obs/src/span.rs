//! Causal span records: `run → round → phase(emit/deliver/decide)`.
//!
//! A [`SpanRecord`] is a closed interval of clock time attributed to one
//! level of the round hierarchy. Records are plain data — no RAII guard,
//! no thread-local context — so recording one is a clock read plus a
//! [`crate::Recorder`] call, and the no-op path stays a single branch
//! like every other [`crate::Obs`] method. Causality is not carried by
//! the record: both [`SpanRecord::id`] and [`SpanRecord::parent_id`] are
//! *derived* deterministically from `(instance, round, process, kind)`,
//! so two identical runs produce identical span trees and a consumer can
//! reconstruct parents without any shared mutable state.
//!
//! Exporters: [`to_chrome`] renders the Chrome trace-event JSON that
//! Perfetto and `chrome://tracing` load (`rrfd-analyze stats
//! --trace-out` writes it); [`to_jsonl`]/[`from_jsonl`] are the
//! machine-first round-trip form, one self-describing object per line,
//! sharing the metrics exporters' determinism contract.

use crate::json::{self, Json};

/// Which phase of a round a phase span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanPhase {
    /// Every process's `emit` for the round.
    Emit,
    /// Delivery of the round's emission table (masked per recipient).
    Deliver,
    /// A decision being recorded (per-process, zero or more per round).
    Decide,
}

impl SpanPhase {
    /// The phase's stable lowercase name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SpanPhase::Emit => "emit",
            SpanPhase::Deliver => "deliver",
            SpanPhase::Decide => "decide",
        }
    }
}

/// The level of the span hierarchy a record belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// One whole run of one instance.
    Run,
    /// One round of one instance.
    Round,
    /// One phase inside a round.
    Phase(SpanPhase),
}

impl SpanKind {
    /// A small stable tag, mixed into the derived span id.
    fn tag(self) -> u64 {
        match self {
            SpanKind::Run => 1,
            SpanKind::Round => 2,
            SpanKind::Phase(SpanPhase::Emit) => 3,
            SpanKind::Phase(SpanPhase::Deliver) => 4,
            SpanKind::Phase(SpanPhase::Decide) => 5,
        }
    }

    /// The kind's stable lowercase name (phases report their phase name).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Run => "run",
            SpanKind::Round => "round",
            SpanKind::Phase(p) => p.as_str(),
        }
    }
}

/// One closed span: an interval of clock time at one level of the
/// `run → round → phase` hierarchy of one instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// The engine instance the span belongs to (0 for single-run
    /// substrates; the pool stamps its global instance id).
    pub instance: u64,
    /// The hierarchy level.
    pub kind: SpanKind,
    /// The round (1-based); 0 for run spans.
    pub round: u32,
    /// The process, for per-process phase spans (decides); `None` for
    /// system-wide spans.
    pub process: Option<u32>,
    /// Clock time the span opened, in nanoseconds.
    pub start_ns: u64,
    /// Clock time the span closed, in nanoseconds.
    pub end_ns: u64,
}

/// FNV-1a over the identity fields — the whole point is that ids are a
/// pure function of `(instance, round, process, kind)`, never of
/// recording order or memory addresses.
fn derive_id(instance: u64, round: u32, process: Option<u32>, tag: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(instance);
    mix(u64::from(round));
    mix(process.map_or(0, |p| u64::from(p) + 1));
    mix(tag);
    // A derived id of 0 would collide with "no parent"; fold it away.
    h.max(1)
}

impl SpanRecord {
    /// The span's deterministic id.
    #[must_use]
    pub fn id(&self) -> u64 {
        derive_id(self.instance, self.round, self.process, self.kind.tag())
    }

    /// The id of the span's parent: phases parent to their round, rounds
    /// to their run, runs to 0 (the root).
    #[must_use]
    pub fn parent_id(&self) -> u64 {
        match self.kind {
            SpanKind::Run => 0,
            SpanKind::Round => derive_id(self.instance, 0, None, SpanKind::Run.tag()),
            SpanKind::Phase(_) => derive_id(self.instance, self.round, None, SpanKind::Round.tag()),
        }
    }

    /// The span's elapsed nanoseconds.
    #[must_use]
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// A display name for trace viewers: `run`, `round 3`, `emit r3`,
    /// `decide r3 p1`.
    #[must_use]
    pub fn display_name(&self) -> String {
        match (self.kind, self.process) {
            (SpanKind::Run, _) => "run".to_owned(),
            (SpanKind::Round, _) => format!("round {}", self.round),
            (SpanKind::Phase(p), None) => format!("{} r{}", p.as_str(), self.round),
            (SpanKind::Phase(p), Some(proc)) => {
                format!("{} r{} p{proc}", p.as_str(), self.round)
            }
        }
    }
}

/// Sorts spans into their canonical export order: by instance, then
/// start time, then hierarchy depth (runs before rounds before phases),
/// then round and process. Recording order never leaks into an export.
pub fn sort_canonical(spans: &mut [SpanRecord]) {
    spans.sort_by_key(|s| {
        (
            s.instance,
            s.start_ns,
            s.kind.tag(),
            s.round,
            s.process.map_or(0, |p| u64::from(p) + 1),
        )
    });
}

/// Formats nanoseconds as decimal microseconds (`ts`/`dur` in the Chrome
/// trace-event format are µs). Integer formatting keeps the output
/// byte-deterministic — no float printing is involved.
fn micros(ns: u64) -> String {
    if ns.is_multiple_of(1_000) {
        format!("{}", ns / 1_000)
    } else {
        format!("{}.{:03}", ns / 1_000, ns % 1_000)
    }
}

/// Renders spans as a Chrome trace-event JSON object (the format
/// Perfetto and `chrome://tracing` load): one complete (`"ph":"X"`)
/// event per span, `pid` = instance, `tid` = process (or 0 for
/// system-wide spans), with the derived span/parent ids in `args`.
#[must_use]
pub fn to_chrome(spans: &[SpanRecord]) -> String {
    let mut sorted = spans.to_vec();
    sort_canonical(&mut sorted);
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, span) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":{},\"tid\":{},\"args\":{{\"round\":{},\"id\":{},\"parent\":{}}}}}",
            json::escape(&span.display_name()),
            span.kind.as_str(),
            micros(span.start_ns),
            micros(span.duration_ns()),
            span.instance,
            span.process.unwrap_or(0),
            span.round,
            span.id(),
            span.parent_id(),
        ));
    }
    out.push_str("\n]}\n");
    out
}

/// Serializes spans as JSON Lines, one self-describing object per line,
/// in canonical order.
#[must_use]
pub fn to_jsonl(spans: &[SpanRecord]) -> String {
    let mut sorted = spans.to_vec();
    sort_canonical(&mut sorted);
    let mut out = String::new();
    for span in &sorted {
        let process = span
            .process
            .map_or(String::new(), |p| format!(",\"process\":{p}"));
        out.push_str(&format!(
            "{{\"span\":\"{}\",\"instance\":{},\"round\":{}{process},\
             \"start_ns\":{},\"end_ns\":{}}}\n",
            span.kind.as_str(),
            span.instance,
            span.round,
            span.start_ns,
            span.end_ns,
        ));
    }
    out
}

/// Parses spans back from their JSONL form.
///
/// # Errors
///
/// Returns a message naming the first offending line.
pub fn from_jsonl(text: &str) -> Result<Vec<SpanRecord>, String> {
    let mut spans = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let span = span_from_json(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        spans.push(span);
    }
    sort_canonical(&mut spans);
    Ok(spans)
}

fn span_from_json(line: &str) -> Result<SpanRecord, String> {
    let v = json::parse(line).map_err(|e| e.to_string())?;
    let kind = match v.get("span").and_then(Json::as_str) {
        Some("run") => SpanKind::Run,
        Some("round") => SpanKind::Round,
        Some("emit") => SpanKind::Phase(SpanPhase::Emit),
        Some("deliver") => SpanKind::Phase(SpanPhase::Deliver),
        Some("decide") => SpanKind::Phase(SpanPhase::Decide),
        Some(other) => return Err(format!("unknown span kind {other:?}")),
        None => return Err("missing `span` kind".to_owned()),
    };
    let u32_field = |key: &str| -> Result<u32, String> {
        v.get(key)
            .and_then(Json::as_u64)
            .and_then(|x| u32::try_from(x).ok())
            .ok_or_else(|| format!("missing or bad `{key}`"))
    };
    let u64_field = |key: &str| -> Result<u64, String> {
        v.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing or bad `{key}`"))
    };
    Ok(SpanRecord {
        instance: u64_field("instance")?,
        kind,
        round: u32_field("round")?,
        process: match v.get("process") {
            Some(p) => Some(
                p.as_u64()
                    .and_then(|x| u32::try_from(x).ok())
                    .ok_or("bad `process`")?,
            ),
            None => None,
        },
        start_ns: u64_field("start_ns")?,
        end_ns: u64_field("end_ns")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(kind: SpanKind, round: u32, process: Option<u32>, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            instance: 0,
            kind,
            round,
            process,
            start_ns: start,
            end_ns: end,
        }
    }

    #[test]
    fn ids_are_deterministic_and_parents_link_the_hierarchy() {
        let run = span(SpanKind::Run, 0, None, 0, 3000);
        let round = span(SpanKind::Round, 1, None, 0, 1000);
        let emit = span(SpanKind::Phase(SpanPhase::Emit), 1, None, 0, 300);
        let decide = span(SpanKind::Phase(SpanPhase::Decide), 1, Some(2), 800, 900);
        assert_eq!(run.parent_id(), 0);
        assert_eq!(round.parent_id(), run.id());
        assert_eq!(emit.parent_id(), round.id());
        assert_eq!(decide.parent_id(), round.id());
        // Same identity fields, same id; different process, different id.
        assert_eq!(decide.id(), span(decide.kind, 1, Some(2), 0, 0).id());
        assert_ne!(decide.id(), span(decide.kind, 1, Some(1), 0, 0).id());
        assert_ne!(emit.id(), round.id());
    }

    #[test]
    fn instances_do_not_share_ids() {
        let a = span(SpanKind::Round, 1, None, 0, 0);
        let mut b = a;
        b.instance = 7;
        assert_ne!(a.id(), b.id());
        assert_ne!(a.parent_id(), b.parent_id());
    }

    #[test]
    fn chrome_export_is_deterministic_and_loadable_shaped() {
        let spans = vec![
            span(SpanKind::Round, 1, None, 0, 1000),
            span(SpanKind::Run, 0, None, 0, 2500),
            span(SpanKind::Phase(SpanPhase::Emit), 1, None, 0, 300),
        ];
        let text = to_chrome(&spans);
        // Parses as one JSON object with a traceEvents array.
        let parsed = json::parse(&text).unwrap();
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        assert_eq!(events.len(), 3);
        for event in events {
            assert_eq!(event.get("ph").and_then(Json::as_str), Some("X"));
            assert!(event.get("ts").is_some());
            assert!(event.get("dur").is_some());
            assert!(event.get("args").and_then(|a| a.get("parent")).is_some());
        }
        // Run sorts before its round at equal start times (shallower first).
        assert_eq!(events[0].get("name").and_then(Json::as_str), Some("run"));
        // Byte-deterministic regardless of input order.
        let mut reversed = spans.clone();
        reversed.reverse();
        assert_eq!(to_chrome(&reversed), text);
    }

    #[test]
    fn micros_formats_without_floats() {
        assert_eq!(micros(0), "0");
        assert_eq!(micros(1_000), "1");
        assert_eq!(micros(1_234), "1.234");
        assert_eq!(micros(999), "0.999");
        assert_eq!(micros(12_030), "12.030");
    }

    #[test]
    fn jsonl_round_trips() {
        let spans = vec![
            span(SpanKind::Run, 0, None, 0, 9000),
            span(SpanKind::Round, 2, None, 1000, 2000),
            span(SpanKind::Phase(SpanPhase::Decide), 2, Some(1), 1800, 1900),
        ];
        let text = to_jsonl(&spans);
        let back = from_jsonl(&text).unwrap();
        let mut expected = spans.clone();
        sort_canonical(&mut expected);
        assert_eq!(back, expected);
        assert_eq!(to_jsonl(&back), text);
    }

    #[test]
    fn malformed_jsonl_is_rejected_with_line_numbers() {
        let err = from_jsonl(
            "{\"span\":\"warp\",\"instance\":0,\"round\":1,\"start_ns\":0,\"end_ns\":0}\n",
        )
        .unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
        let err = from_jsonl("{\"span\":\"run\",\"instance\":0}\n").unwrap_err();
        assert!(err.contains("round"), "{err}");
    }
}
