//! The `rrfd-analyze` CLI: lattice checking, race detection, and the
//! workspace lint pass. See `rrfd_analyze` (the library) for what each
//! analysis does; this binary is argument parsing and exit codes.
//!
//! Exit status: `0` clean, `1` findings or mismatch, `2` usage error.

use rrfd_analyze::{lattice, lint, races, stats};
use rrfd_core::SystemSize;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: rrfd-analyze <command> [options]

Every subcommand exits 0 when clean, 1 on findings/drift, 2 on usage
errors; --json switches stdout to a machine-readable object.

commands:
  lattice [--depth N] [--n N] [--f F] [--workers W] [--check | --update]
          [--file PATH] [--json]
      Compute the predicate-implication lattice over the standard zoo
      (default n=3, f=1, depth 3) and print it as markdown (or as an
      `rrfd-lattice v1` JSON object with --json). The pair searches run
      on W threads (default: RRFD_EXPLORE_WORKERS, else the machine's
      parallelism); the result is identical at any W. With --check,
      compare against the `<!-- lattice:begin -->` block in PATH
      (default EXPERIMENTS.md) and fail on drift; with --update, rewrite
      the block.

  races <trace-file> [--expect-violations] [--json]
      Analyze a serialized `rrfd-trace v1` or `rrfd-events v1` capture.
      Reports covering violations, unmatched messages, cross-round
      reordering, and data races (as an `rrfd-races v1` JSON object with
      --json). With --expect-violations the exit status inverts: a clean
      trace fails (for CI fixtures that seed a defect on purpose).

  lint [--root DIR] [--allow PATH] [--strict] [--json]
       [--expect-findings PASS[,PASS...]]
      Run the eight syntax-aware passes (panic-family, wall-clock, obs,
      direct-index, msg-clone, round-closure, span-guard, lock-order) over
      crates/*/src, with crate fences from each Cargo.toml's
      [package.metadata.rrfd], reconciled against the span-fingerprinted
      allowlist (default lint.allow under --root, default .). --strict
      also fails on stale allowlist entries (the CI default); --json
      emits an `rrfd-lint v1` object. --expect-findings inverts the
      exit status per pass: success iff every named pass fired (for the
      seeded negative fixtures in CI).

  stats <capture-file> [--check PATH] [--trace-out PATH]
      Render per-round statistics (messages, suspicions, decisions,
      latency quantiles) for an `rrfd-trace v1`, `rrfd-events v1`, or
      metrics-JSONL capture. With --check, compare the rendered output
      byte-for-byte against the golden file at PATH and fail on drift.
      With --trace-out, additionally synthesize a Chrome trace-event
      JSON file at PATH from an `rrfd-trace v1` capture's causal
      structure (load it at ui.perfetto.dev or chrome://tracing).
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    match command.as_str() {
        "lattice" => run_lattice(rest),
        "races" => run_races(rest),
        "lint" => run_lint(rest),
        "stats" => run_stats(rest),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command {other:?}\n");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Default worker count for parallel analyses: `RRFD_EXPLORE_WORKERS`,
/// else the machine's available parallelism.
fn default_workers() -> usize {
    std::env::var("RRFD_EXPLORE_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&w| w >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()))
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("{message}\n");
    eprint!("{USAGE}");
    ExitCode::from(2)
}

/// Pulls the value following a `--flag` out of `rest`, mutating it.
fn take_value(rest: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    match rest.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) if i + 1 < rest.len() => {
            rest.remove(i);
            Ok(Some(rest.remove(i)))
        }
        Some(_) => Err(format!("{flag} needs a value")),
    }
}

fn take_flag(rest: &mut Vec<String>, flag: &str) -> bool {
    match rest.iter().position(|a| a == flag) {
        Some(i) => {
            rest.remove(i);
            true
        }
        None => false,
    }
}

const LATTICE_BEGIN: &str = "<!-- lattice:begin -->";
const LATTICE_END: &str = "<!-- lattice:end -->";

fn run_lattice(args: &[String]) -> ExitCode {
    let mut rest = args.to_vec();
    let parsed = (|| -> Result<(u32, usize, usize, usize, Option<String>), String> {
        let depth = match take_value(&mut rest, "--depth")? {
            Some(v) => v.parse().map_err(|_| format!("bad --depth {v:?}"))?,
            None => 3,
        };
        let n = match take_value(&mut rest, "--n")? {
            Some(v) => v.parse().map_err(|_| format!("bad --n {v:?}"))?,
            None => 3,
        };
        let f = match take_value(&mut rest, "--f")? {
            Some(v) => v.parse().map_err(|_| format!("bad --f {v:?}"))?,
            None => 1,
        };
        let workers = match take_value(&mut rest, "--workers")? {
            Some(v) => v.parse().map_err(|_| format!("bad --workers {v:?}"))?,
            None => default_workers(),
        };
        let file = take_value(&mut rest, "--file")?;
        Ok((depth, n, f, workers, file))
    })();
    let (depth, n, f, workers, file) = match parsed {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    let check = take_flag(&mut rest, "--check");
    let update = take_flag(&mut rest, "--update");
    let json = take_flag(&mut rest, "--json");
    if let Some(extra) = rest.first() {
        return usage_error(&format!("unexpected argument {extra:?}"));
    }
    if check && update {
        return usage_error("--check and --update are mutually exclusive");
    }
    if json && (check || update) {
        return usage_error("--json renders to stdout; it cannot combine with --check/--update");
    }
    let Ok(n) = SystemSize::new(n) else {
        return usage_error("--n must be at least 1");
    };

    eprintln!(
        "computing the implication lattice (n={}, f={f}, depth {depth}, {workers} worker(s))...",
        n.get()
    );
    let zoo = lattice::zoo(n, f);
    let computed = lattice::Lattice::compute_par(&zoo, depth, workers.max(1));
    if json {
        print!("{}", computed.render_json());
        return ExitCode::SUCCESS;
    }
    let rendered = computed.render_markdown();

    if !check && !update {
        print!("{rendered}");
        return ExitCode::SUCCESS;
    }

    let path = PathBuf::from(file.unwrap_or_else(|| "EXPERIMENTS.md".to_owned()));
    let current = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let Some((before, rest_of_file)) = current.split_once(LATTICE_BEGIN) else {
        eprintln!("{}: no `{LATTICE_BEGIN}` marker", path.display());
        return ExitCode::FAILURE;
    };
    let Some((inside, after)) = rest_of_file.split_once(LATTICE_END) else {
        eprintln!("{}: no `{LATTICE_END}` marker", path.display());
        return ExitCode::FAILURE;
    };
    let fresh_inside = format!("\n{rendered}");
    if check {
        if inside == fresh_inside {
            eprintln!("{}: lattice block is up to date", path.display());
            ExitCode::SUCCESS
        } else {
            eprintln!(
                "{}: lattice block is stale — run `rrfd-analyze lattice --update` \
                 and commit the result",
                path.display()
            );
            ExitCode::FAILURE
        }
    } else {
        let updated = format!("{before}{LATTICE_BEGIN}{fresh_inside}{LATTICE_END}{after}");
        if let Err(e) = std::fs::write(&path, updated) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("{}: lattice block updated", path.display());
        ExitCode::SUCCESS
    }
}

fn run_races(args: &[String]) -> ExitCode {
    let mut rest = args.to_vec();
    let expect_violations = take_flag(&mut rest, "--expect-violations");
    let json = take_flag(&mut rest, "--json");
    let [path] = rest.as_slice() else {
        return usage_error("races needs exactly one trace file");
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let findings = match races::analyze_text(&text) {
        Ok(findings) => findings,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        print!("{}", races_json(path, &findings, expect_violations));
    } else {
        for finding in &findings {
            println!("{path}: {finding}");
        }
    }
    match (findings.is_empty(), expect_violations) {
        (true, false) => {
            eprintln!("{path}: no findings");
            ExitCode::SUCCESS
        }
        (false, true) => {
            eprintln!(
                "{path}: {} finding(s), as expected by the fixture",
                findings.len()
            );
            ExitCode::SUCCESS
        }
        (true, true) => {
            eprintln!("{path}: expected violations but the trace is clean");
            ExitCode::FAILURE
        }
        (false, false) => ExitCode::FAILURE,
    }
}

fn run_stats(args: &[String]) -> ExitCode {
    let mut rest = args.to_vec();
    let check = match take_value(&mut rest, "--check") {
        Ok(v) => v,
        Err(e) => return usage_error(&e),
    };
    let trace_out = match take_value(&mut rest, "--trace-out") {
        Ok(v) => v,
        Err(e) => return usage_error(&e),
    };
    let [path] = rest.as_slice() else {
        return usage_error("stats needs exactly one capture file");
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rendered = match stats::render(&text) {
        Ok(rendered) => rendered,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{rendered}");
    if let Some(out_path) = trace_out {
        let chrome = match stats::chrome_trace_text(&text) {
            Ok(chrome) => chrome,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = std::fs::write(&out_path, chrome) {
            eprintln!("cannot write {out_path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("{path}: Chrome trace written to {out_path} (load at ui.perfetto.dev)");
    }
    let Some(golden_path) = check else {
        return ExitCode::SUCCESS;
    };
    let golden = match std::fs::read_to_string(&golden_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read {golden_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if rendered == golden {
        eprintln!("{path}: stats match {golden_path}");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "{path}: stats drifted from {golden_path} — regenerate with \
             `rrfd-analyze stats {path} > {golden_path}` and review the diff"
        );
        ExitCode::FAILURE
    }
}

fn races_json(path: &str, findings: &[races::Finding], expect_violations: bool) -> String {
    use rrfd_analyze::jsonout::esc;
    let mut out =
        String::from("{\n  \"tool\": \"rrfd-analyze races\",\n  \"format\": \"rrfd-races v1\",\n");
    out.push_str(&format!("  \"capture\": \"{}\",\n", esc(path)));
    out.push_str(&format!("  \"expect_violations\": {expect_violations},\n"));
    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"kind\": \"{}\", \"detail\": \"{}\"}}",
            esc(&f.kind.to_string()),
            esc(&f.detail)
        ));
    }
    out.push_str("\n  ],\n");
    out.push_str(&format!(
        "  \"clean\": {}\n}}\n",
        findings.is_empty() != expect_violations
    ));
    out
}

fn run_lint(args: &[String]) -> ExitCode {
    let mut rest = args.to_vec();
    let parsed = (|| -> Result<(PathBuf, PathBuf, Option<String>), String> {
        let root =
            PathBuf::from(take_value(&mut rest, "--root")?.unwrap_or_else(|| ".".to_owned()));
        let allow = match take_value(&mut rest, "--allow")? {
            Some(p) => PathBuf::from(p),
            None => root.join("lint.allow"),
        };
        let expect = take_value(&mut rest, "--expect-findings")?;
        Ok((root, allow, expect))
    })();
    let (root, allow_path, expect) = match parsed {
        Ok(p) => p,
        Err(e) => return usage_error(&e),
    };
    let strict = take_flag(&mut rest, "--strict");
    let json = take_flag(&mut rest, "--json");
    if let Some(extra) = rest.first() {
        return usage_error(&format!("unexpected argument {extra:?}"));
    }
    let findings = match lint::scan_root(&root) {
        Ok(findings) => findings,
        Err(e) => {
            eprintln!("scan failed under {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    if let Some(expected) = expect {
        // Negative-fixture mode: every named pass must fire at least
        // once; the allowlist is not consulted.
        let mut missing = Vec::new();
        for pass in expected.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            if !rrfd_analyze::passes::pass_names().contains(&pass) {
                return usage_error(&format!("--expect-findings names unknown pass {pass:?}"));
            }
            if !findings.iter().any(|f| f.pass == pass) {
                missing.push(pass.to_owned());
            }
        }
        for f in &findings {
            println!("{f}");
        }
        return if missing.is_empty() {
            eprintln!(
                "lint fixtures fired as expected ({} finding(s) under {})",
                findings.len(),
                root.display()
            );
            ExitCode::SUCCESS
        } else {
            eprintln!(
                "expected findings from pass(es) {} under {}, but none fired",
                missing.join(", "),
                root.display()
            );
            ExitCode::FAILURE
        };
    }
    let allowances = match std::fs::read_to_string(&allow_path) {
        Ok(text) => match lint::parse_allowlist(&text) {
            Ok(entries) => entries,
            Err(e) => {
                eprintln!("{}: {e}", allow_path.display());
                return ExitCode::FAILURE;
            }
        },
        Err(_) => Vec::new(), // no allowlist: every finding is a violation
    };
    let report = lint::reconcile(&findings, &allowances);
    if json {
        print!("{}", lint::render_json(&findings, &report, strict));
    } else {
        for notice in &report.notices {
            eprintln!("notice: {notice}");
        }
        for violation in &report.violations {
            eprintln!("{violation}");
        }
    }
    if report.is_clean(strict) {
        if !json {
            eprintln!(
                "lint clean: {} finding(s) across 8 passes, all pinned or budgeted in {}",
                findings.len(),
                allow_path.display()
            );
        }
        ExitCode::SUCCESS
    } else {
        if !json {
            eprintln!(
                "lint failed: {} violation line(s), {} notice(s){} — fix the findings or \
                 pin them in lint.allow with a justification",
                report.violations.len(),
                report.notices.len(),
                if strict {
                    " (strict: stale allowlist entries fail)"
                } else {
                    ""
                }
            );
        }
        ExitCode::FAILURE
    }
}
