//! The predicate-implication lattice, machine-checked.
//!
//! Section 2 of the paper orders its example models by the submodel
//! relation: model `A` is a submodel of `B` exactly when `P_A ⇒ P_B`, i.e.
//! every fault pattern `A` permits is also permitted by `B`. The paper
//! states these orderings ("the crash model is a submodel of the omission
//! model", "P_eq refines k-uncertainty", …) as prose; this module *decides*
//! them by bounded-exhaustive enumeration and renders the resulting Hasse
//! diagram, so the lattice printed in `EXPERIMENTS.md` is a checked
//! artifact rather than a transcription.
//!
//! The decision procedure is sound for refutations and bounded for
//! confirmations: a counterexample pattern is a genuine witness that
//! `A ⇏ B` (and converts into a replayable [`RunTrace`] certificate via
//! [`certificate`]), while "implies" means "implies on every pattern of at
//! most `max_rounds` rounds over this system size". All the zoo's
//! predicates are prefix-closed and round-local with short memory, so the
//! bound is a real check, not a heuristic.

use rrfd_core::{
    FaultPattern, PatternViolation, Round, RrfdPredicate, RunTrace, SystemSize, TraceBuilder,
    TraceOutcome,
};
use rrfd_models::enumerate::all_rounds;
/// The zoo family and its boxed element type now live in `rrfd-models`
/// (the conformance monitor evaluates them against live runs); they are
/// re-exported here so lattice callers keep their import paths.
pub use rrfd_models::zoo::{zoo, SharedPredicate};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A witness that `A ⇏ B`: an `A`-legal pattern whose final round `B`
/// rejects (every proper prefix is legal for both).
#[derive(Debug, Clone)]
pub struct LatticeCounterexample {
    /// The witnessing pattern; legal for `A`, rejected by `B` at its final
    /// round.
    pub pattern: FaultPattern,
    /// The round (the pattern's last) at which `B` rejects.
    pub rejected_round: Round,
    /// `B`'s name, for the certificate outcome.
    pub rejecting_predicate: String,
}

/// Decides `P_A ⇒ P_B` over all fault patterns of at most `max_rounds`
/// rounds, by depth-first enumeration of `A`-legal patterns.
///
/// # Errors
///
/// Returns the first [`LatticeCounterexample`] found — an `A`-legal
/// pattern that `B` rejects.
///
/// # Panics
///
/// Panics when the predicates disagree on system size, or when the size
/// exceeds the exhaustive-enumeration bound of `rrfd-models`.
pub fn implies(
    a: &dyn RrfdPredicate,
    b: &dyn RrfdPredicate,
    max_rounds: u32,
) -> Result<(), LatticeCounterexample> {
    let n = a.system_size();
    assert_eq!(
        n,
        b.system_size(),
        "implication needs a common process universe"
    );
    let rounds: Vec<_> = all_rounds(n).collect();
    // Stack of A-legal, B-legal prefixes still to extend.
    let mut stack = vec![FaultPattern::new(n)];
    while let Some(prefix) = stack.pop() {
        if prefix.rounds() as u32 >= max_rounds {
            continue;
        }
        for round in &rounds {
            if !a.admits(&prefix, round) {
                continue;
            }
            if !b.admits(&prefix, round) {
                let mut pattern = prefix.clone();
                pattern.push(round.clone());
                let rejected_round = Round::new(pattern.rounds() as u32);
                return Err(LatticeCounterexample {
                    pattern,
                    rejected_round,
                    rejecting_predicate: b.name(),
                });
            }
            let mut next = prefix.clone();
            next.push(round.clone());
            stack.push(next);
        }
    }
    Ok(())
}

/// Converts a counterexample into a replayable [`RunTrace`] certificate.
///
/// The trace records the witnessing pattern exactly as an engine would
/// have: every prefix round as a normal round (with the covering-maximal
/// `S(i,r) = S ∖ D(i,r)` delivery), the final round as a violating round,
/// and the outcome as `B`'s predicate rejection. Re-driving the trace with
/// `rrfd_models::adversary::ReplayDetector` against model `B` reproduces
/// the violation at the recorded round; against model `A` the same moves
/// are accepted.
#[must_use]
pub fn certificate(cex: &LatticeCounterexample) -> RunTrace {
    let n = cex.pattern.system_size();
    let universe = rrfd_core::IdSet::universe(n);
    let mut builder = TraceBuilder::new(n);
    let last = cex.pattern.rounds();
    for (round_no, faults) in cex.pattern.iter() {
        if (round_no.get() as usize) < last {
            let heard = n.processes().map(|i| universe - faults.of(i)).collect();
            builder.record_round(faults, heard);
        } else {
            builder.record_violating_round(faults.clone());
        }
    }
    builder.finish(TraceOutcome::Violation(
        PatternViolation::PredicateRejected {
            predicate: cex.rejecting_predicate.clone(),
            round: cex.rejected_round,
        },
    ))
}

/// The computed lattice: the full implication matrix over a predicate
/// family, plus the parameters it was computed with.
pub struct Lattice {
    names: Vec<String>,
    /// `matrix[i][j]` is `true` when predicate `i` implies predicate `j`
    /// (within the bound).
    matrix: Vec<Vec<bool>>,
    n: SystemSize,
    max_rounds: u32,
    /// Counterexamples for every refuted pair, keyed by `(i, j)`.
    counterexamples: Vec<((usize, usize), LatticeCounterexample)>,
}

impl Lattice {
    /// Computes the implication matrix over `predicates` with patterns of
    /// at most `max_rounds` rounds.
    ///
    /// # Panics
    ///
    /// Panics when the family is empty or spans different system sizes.
    #[must_use]
    pub fn compute(predicates: &[SharedPredicate], max_rounds: u32) -> Self {
        Lattice::compute_par(predicates, max_rounds, 1)
    }

    /// As [`Lattice::compute`], but deciding the `len × len` implication
    /// pairs on up to `workers` threads (each pair is an independent
    /// bounded-exhaustive search). Results are folded in pair order, so
    /// the computed lattice — matrix, counterexamples, rendering — is
    /// identical at every worker count.
    ///
    /// # Panics
    ///
    /// Panics when the family is empty or spans different system sizes.
    #[must_use]
    pub fn compute_par(predicates: &[SharedPredicate], max_rounds: u32, workers: usize) -> Self {
        let first = predicates
            .first()
            .unwrap_or_else(|| panic!("lattice needs at least one predicate"));
        let n = first.system_size();
        let names: Vec<String> = predicates.iter().map(|p| p.name()).collect();
        let len = predicates.len();
        let pairs: Vec<(usize, usize)> = (0..len)
            .flat_map(|i| (0..len).map(move |j| (i, j)))
            .collect();

        let decide = |&(i, j): &(usize, usize)| {
            if i == j {
                Ok(())
            } else {
                implies(predicates[i].as_ref(), predicates[j].as_ref(), max_rounds)
            }
        };

        let worker_count = workers.clamp(1, pairs.len().max(1));
        let mut slots: Vec<Option<Result<(), LatticeCounterexample>>> = Vec::new();
        slots.resize_with(pairs.len(), || None);
        if worker_count <= 1 {
            for (k, pair) in pairs.iter().enumerate() {
                slots[k] = Some(decide(pair));
            }
        } else {
            let next = AtomicUsize::new(0);
            let pairs_ref = &pairs;
            let collected: Vec<Vec<(usize, Result<(), LatticeCounterexample>)>> =
                std::thread::scope(|s| {
                    let handles: Vec<_> = (0..worker_count)
                        .map(|_| {
                            s.spawn(|| {
                                let mut local = Vec::new();
                                loop {
                                    let k = next.fetch_add(1, Ordering::Relaxed);
                                    if k >= pairs_ref.len() {
                                        break;
                                    }
                                    local.push((k, decide(&pairs_ref[k])));
                                }
                                local
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| match h.join() {
                            Ok(local) => local,
                            Err(payload) => std::panic::resume_unwind(payload),
                        })
                        .collect()
                });
            for (k, outcome) in collected.into_iter().flatten() {
                slots[k] = Some(outcome);
            }
        }

        let mut matrix = vec![vec![false; len]; len];
        let mut counterexamples = Vec::new();
        for (k, slot) in slots.into_iter().enumerate() {
            let (i, j) = pairs[k];
            match slot {
                Some(Ok(())) => matrix[i][j] = true,
                Some(Err(cex)) => counterexamples.push(((i, j), cex)),
                None => unreachable!("every pair is claimed exactly once"),
            }
        }
        Lattice {
            names,
            matrix,
            n,
            max_rounds,
            counterexamples,
        }
    }

    /// The predicate names, in matrix order.
    #[must_use]
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Whether predicate `i` implies predicate `j` (within the bound).
    #[must_use]
    pub fn implies_at(&self, i: usize, j: usize) -> bool {
        self.matrix[i][j]
    }

    /// The counterexample refuting `i ⇒ j`, when one was found.
    #[must_use]
    pub fn counterexample(&self, i: usize, j: usize) -> Option<&LatticeCounterexample> {
        self.counterexamples
            .iter()
            .find(|((a, b), _)| (*a, *b) == (i, j))
            .map(|(_, cex)| cex)
    }

    /// Groups the predicates into equivalence classes (mutual implication),
    /// each class listing its member indices in matrix order.
    #[must_use]
    pub fn equivalence_classes(&self) -> Vec<Vec<usize>> {
        let mut classes: Vec<Vec<usize>> = Vec::new();
        for i in 0..self.names.len() {
            if let Some(class) = classes
                .iter_mut()
                .find(|c| self.matrix[c[0]][i] && self.matrix[i][c[0]])
            {
                class.push(i);
            } else {
                classes.push(vec![i]);
            }
        }
        classes
    }

    /// The Hasse cover edges between equivalence classes: `(lower, upper)`
    /// pairs of class representatives where `lower ⇒ upper` strictly and no
    /// third class sits between them.
    #[must_use]
    pub fn cover_edges(&self) -> Vec<(usize, usize)> {
        let classes = self.equivalence_classes();
        let reps: Vec<usize> = classes.iter().map(|c| c[0]).collect();
        let strict = |a: usize, b: usize| self.matrix[a][b] && !self.matrix[b][a];
        let mut edges = Vec::new();
        for &lo in &reps {
            for &hi in &reps {
                if !strict(lo, hi) {
                    continue;
                }
                let covered = reps
                    .iter()
                    .any(|&mid| mid != lo && mid != hi && strict(lo, mid) && strict(mid, hi));
                if !covered {
                    edges.push((lo, hi));
                }
            }
        }
        edges
    }

    /// Renders the lattice as the markdown block recorded in
    /// `EXPERIMENTS.md`: the implication matrix, the equivalence classes,
    /// and the Hasse cover edges. Deterministic, so `--check` can diff it.
    #[must_use]
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Machine-checked over every fault pattern with ≤ {} rounds, n = {} \
             (bounded-exhaustive enumeration; ✓ row ⇒ column).",
            self.max_rounds,
            self.n.get()
        );
        let _ = writeln!(out);
        // Matrix header: predicates numbered in zoo order.
        let _ = writeln!(out, "| # | predicate | {} |", {
            let cols: Vec<String> = (1..=self.names.len()).map(|i| i.to_string()).collect();
            cols.join(" | ")
        });
        let dashes: Vec<&str> = (0..self.names.len() + 2).map(|_| "---").collect();
        let _ = writeln!(out, "|{}|", dashes.join("|"));
        for (i, name) in self.names.iter().enumerate() {
            let cells: Vec<&str> = (0..self.names.len())
                .map(|j| {
                    if i == j {
                        "·"
                    } else if self.matrix[i][j] {
                        "✓"
                    } else {
                        "×"
                    }
                })
                .collect();
            let _ = writeln!(out, "| {} | `{}` | {} |", i + 1, name, cells.join(" | "));
        }
        let _ = writeln!(out);
        let classes = self.equivalence_classes();
        let _ = writeln!(out, "Equivalence classes (mutual implication):");
        let _ = writeln!(out);
        for class in &classes {
            let members: Vec<String> = class
                .iter()
                .map(|&i| format!("`{}`", self.names[i]))
                .collect();
            let _ = writeln!(out, "- {}", members.join(" = "));
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "Hasse cover edges (strictest below, `A → B` meaning `P_A ⇒ P_B` strictly, \
             nothing in between):"
        );
        let _ = writeln!(out);
        for (lo, hi) in self.cover_edges() {
            let _ = writeln!(out, "- `{}` → `{}`", self.names[lo], self.names[hi]);
        }
        out
    }

    /// Renders the lattice as one JSON object (`rrfd-lattice v1`) for
    /// scripted consumers: parameters, predicate names, the implication
    /// matrix, equivalence classes, and Hasse cover edges — the same
    /// content as [`Lattice::render_markdown`], machine-readable.
    #[must_use]
    pub fn render_json(&self) -> String {
        use crate::jsonout::{esc, str_array};
        let mut out = String::from(
            "{\n  \"tool\": \"rrfd-analyze lattice\",\n  \"format\": \"rrfd-lattice v1\",\n",
        );
        let _ = writeln!(out, "  \"n\": {},", self.n.get());
        let _ = writeln!(out, "  \"max_rounds\": {},", self.max_rounds);
        let _ = writeln!(out, "  \"predicates\": {},", str_array(&self.names));
        let rows: Vec<String> = self
            .matrix
            .iter()
            .map(|row| {
                let cells: Vec<&str> = row
                    .iter()
                    .map(|&b| if b { "true" } else { "false" })
                    .collect();
                format!("[{}]", cells.join(", "))
            })
            .collect();
        let _ = writeln!(out, "  \"implies\": [{}],", rows.join(", "));
        let classes: Vec<String> = self
            .equivalence_classes()
            .iter()
            .map(|class| {
                let members: Vec<String> = class
                    .iter()
                    .map(|&i| format!("\"{}\"", esc(&self.names[i])))
                    .collect();
                format!("[{}]", members.join(", "))
            })
            .collect();
        let _ = writeln!(out, "  \"equivalence_classes\": [{}],", classes.join(", "));
        let edges: Vec<String> = self
            .cover_edges()
            .iter()
            .map(|&(lo, hi)| {
                format!(
                    "[\"{}\", \"{}\"]",
                    esc(&self.names[lo]),
                    esc(&self.names[hi])
                )
            })
            .collect();
        let _ = writeln!(out, "  \"cover_edges\": [{}]", edges.join(", "));
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrfd_core::{Control, Delivery, Engine, EngineError, RoundProtocol};
    use rrfd_models::adversary::ReplayDetector;
    use rrfd_models::predicates::{
        AsyncResilient, Crash, DetectorS, IdenticalViews, KUncertainty, SendOmission, Snapshot,
        Swmr, SystemB,
    };

    fn n3() -> SystemSize {
        SystemSize::new(3).unwrap()
    }

    /// A protocol that never decides: enough to re-drive a recorded
    /// adversary through the engine.
    struct Idle;
    impl RoundProtocol for Idle {
        type Msg = ();
        type Output = ();
        fn emit(&mut self, _r: Round) {}
        fn deliver(&mut self, _d: Delivery<'_, ()>) -> Control<()> {
            Control::Continue
        }
    }

    #[test]
    fn paper_implications_hold_on_bounded_patterns() {
        let n = n3();
        // The submodel claims of Section 2, each decided exhaustively.
        let cases: Vec<(Box<dyn RrfdPredicate>, Box<dyn RrfdPredicate>)> = vec![
            (
                Box::new(Crash::new(n, 1)),
                Box::new(SendOmission::new(n, 1)),
            ),
            (Box::new(Snapshot::new(n, 1)), Box::new(Swmr::new(n, 1))),
            (
                Box::new(Swmr::new(n, 1)),
                Box::new(AsyncResilient::new(n, 1)),
            ),
            // A(f) ⊆ B(f, t): at n = 3 the side condition 2t < n forces
            // the f = 0, t = 1 instance of the paper's claim.
            (
                Box::new(AsyncResilient::new(n, 0)),
                Box::new(SystemB::new(n, 0, 1)),
            ),
            (
                Box::new(IdenticalViews::new(n)),
                Box::new(KUncertainty::new(n, 1)),
            ),
            (
                Box::new(KUncertainty::new(n, 1)),
                Box::new(KUncertainty::new(n, 2)),
            ),
            (
                Box::new(SendOmission::new(n, 1)),
                Box::new(DetectorS::new(n)),
            ),
        ];
        for (a, b) in &cases {
            assert!(
                implies(a.as_ref(), b.as_ref(), 2).is_ok(),
                "{} should imply {}",
                a.name(),
                b.name()
            );
        }
    }

    #[test]
    fn false_implication_yields_a_replayable_certificate() {
        let n = n3();
        // Deliberately false: the asynchronous 1-resilient model permits
        // transient suspicion patterns the crash model forbids.
        let a = AsyncResilient::new(n, 1);
        let b = Crash::new(n, 1);
        let cex = implies(&a, &b, 2).expect_err("async ⇏ crash");
        assert!(a.admits_pattern(&cex.pattern), "witness must be A-legal");
        assert!(!b.admits_pattern(&cex.pattern), "witness must refute B");

        // The certificate replays: the same adversary moves, re-driven
        // against B through the engine, reproduce the recorded violation.
        let trace = certificate(&cex);
        let text = trace.to_string();
        let reparsed: RunTrace = text.parse().unwrap();
        assert_eq!(reparsed, trace);

        let mut replay = ReplayDetector::from_trace(&trace);
        let err = Engine::new(n)
            .run(vec![Idle, Idle, Idle], &mut replay, &b)
            .unwrap_err();
        match err {
            EngineError::Violation(PatternViolation::PredicateRejected { predicate, round }) => {
                assert_eq!(predicate, b.name());
                assert_eq!(round, cex.rejected_round);
            }
            other => panic!("expected B to reject the replay, got {other}"),
        }

        // Against A the very same moves are accepted (the run just hits
        // its round budget, since Idle never decides).
        let mut replay = ReplayDetector::from_trace(&trace);
        let err = Engine::new(n)
            .max_rounds(cex.pattern.rounds() as u32)
            .run(vec![Idle, Idle, Idle], &mut replay, &a)
            .unwrap_err();
        assert!(
            matches!(err, EngineError::RoundLimitExceeded { .. }),
            "A must accept the witness"
        );
    }

    #[test]
    fn implication_is_reflexive_and_antisymmetry_shows_in_classes() {
        let n = n3();
        let family: Vec<SharedPredicate> = vec![
            Box::new(Crash::new(n, 1)),
            Box::new(SendOmission::new(n, 1)),
            Box::new(KUncertainty::new(n, 1)),
            Box::new(IdenticalViews::new(n)),
        ];
        let lattice = Lattice::compute(&family, 1);
        for i in 0..family.len() {
            assert!(lattice.implies_at(i, i));
        }
        // k=1 uncertainty and identical views coincide... only for n=2;
        // at n=3 they are distinct predicates but IdenticalViews ⇒ KU(1).
        assert!(lattice.implies_at(3, 2));
        // Every refuted cell has a recorded counterexample.
        for i in 0..family.len() {
            for j in 0..family.len() {
                if !lattice.implies_at(i, j) {
                    assert!(lattice.counterexample(i, j).is_some(), "({i},{j})");
                }
            }
        }
    }

    #[test]
    fn render_is_deterministic_and_carries_the_matrix() {
        let n = n3();
        let family: Vec<SharedPredicate> = vec![
            Box::new(Crash::new(n, 1)),
            Box::new(SendOmission::new(n, 1)),
        ];
        let lattice = Lattice::compute(&family, 1);
        let one = lattice.render_markdown();
        let two = Lattice::compute(&family, 1).render_markdown();
        assert_eq!(one, two);
        assert!(one.contains("✓"), "{one}");
        assert!(one.contains("Hasse cover edges"), "{one}");
    }

    #[test]
    fn parallel_compute_matches_sequential_at_every_worker_count() {
        let n = n3();
        let family = zoo(n, 1);
        let sequential = Lattice::compute(&family, 1).render_markdown();
        for workers in [2, 4, 16] {
            let parallel = Lattice::compute_par(&family, 1, workers).render_markdown();
            assert_eq!(parallel, sequential, "workers = {workers}");
        }
    }
}
