//! Analyses over the RRFD workspace, surfaced through the
//! `rrfd-analyze` CLI and consumed by CI:
//!
//! * [`lattice`] — decides every pairwise implication between the
//!   predicates of the `rrfd-models` zoo by bounded-exhaustive
//!   enumeration of fault patterns, producing a machine-checked Hasse
//!   diagram of the paper's submodel lattice and replayable
//!   counterexample certificates for the non-implications.
//! * [`races`] — rebuilds happens-before over captured `rrfd-trace v1` /
//!   `rrfd-events v1` traces with vector clocks, reporting covering
//!   violations, cross-round reordering and data races.
//! * [`lint`] — the syntax-aware static-analysis framework: a
//!   hand-rolled lexer and scope parser ([`syntax`]), fences derived
//!   from `Cargo.toml` metadata ([`workspace`]), a pluggable pass API
//!   with eight passes ([`passes`]) including the `round-closure`
//!   communication-closure checker (arXiv:1804.07078), the
//!   `span-guard` round-span discipline checker, and the `lock-order`
//!   deadlock-cycle detector, reconciled against a span-fingerprinted
//!   allowlist with JSON diagnostics.
//! * [`stats`] — renders per-round tables (messages, suspicions,
//!   decisions, latency quantiles) from `rrfd-trace v1`, `rrfd-events
//!   v1`, or metrics-JSONL capture files, golden-checkable in CI; with
//!   `--trace-out`, synthesizes a Perfetto-loadable Chrome trace from
//!   an `rrfd-trace v1` capture's causal structure.
//!
//! ```text
//! cargo run --release -p rrfd-analyze --bin rrfd-analyze -- lattice
//! cargo run -p rrfd-analyze --bin rrfd-analyze -- races trace.txt --json
//! cargo run -p rrfd-analyze --bin rrfd-analyze -- lint --strict --json
//! cargo run -p rrfd-analyze --bin rrfd-analyze -- stats trace.txt
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod jsonout;
pub mod lattice;
pub mod legacy;
pub mod lint;
pub mod passes;
pub mod races;
pub mod stats;
pub mod syntax;
pub mod workspace;
