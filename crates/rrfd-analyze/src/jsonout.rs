//! Minimal JSON *writing* helpers for the analyzer's `--json` outputs
//! (the workspace is dependency-free; `rrfd-obs` owns the matching
//! hand-rolled parser). Only what the diagnostics need: string
//! escaping and array joining.

/// Escapes `s` for embedding in a JSON string literal (quotes not
/// included).
#[must_use]
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a slice of strings as a JSON array of string literals.
#[must_use]
pub fn str_array(items: &[String]) -> String {
    let quoted: Vec<String> = items.iter().map(|s| format!("\"{}\"", esc(s))).collect();
    format!("[{}]", quoted.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn arrays_render_with_commas() {
        assert_eq!(
            str_array(&["a".into(), "b\"c".into()]),
            "[\"a\", \"b\\\"c\"]"
        );
    }
}
