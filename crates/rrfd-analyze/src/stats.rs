//! Per-round statistics over capture files.
//!
//! `rrfd-analyze stats` renders any of the workspace's three capture
//! formats as a deterministic per-round table:
//!
//! * **`rrfd-trace v1`** ([`rrfd_core::RunTrace`]) — per round: total
//!   suspicions `Σ|D(i,r)|`, the smallest and summed heard-set sizes,
//!   and how many processes decided in that round; then the outcome.
//! * **`rrfd-events v1`** ([`rrfd_core::EventLog`]) — per round: emit /
//!   gather / detect / deliver / receive / decide counts, plus the
//!   round-less shared-state access total.
//! * **metrics JSONL** (one [`rrfd_obs::Snapshot`] entry per line, as
//!   written by `Snapshot::write_jsonl`) — counters pivoted into a
//!   round × metric table, histograms as count / p50 / p95 / mean rows,
//!   gauges as a flat list.
//!
//! The renderer is pure text-in/text-out and byte-deterministic for a
//! given input, which is what lets CI golden-test its output with
//! `stats --check`.
//!
//! `stats --trace-out` additionally synthesizes a Perfetto-loadable
//! Chrome trace ([`chrome_trace`]) from an `rrfd-trace v1` capture: the
//! trace records causal structure, not wall time, so each round is laid
//! out in a fixed synthetic slot (1 ms per round, emit/deliver/decide
//! at fixed offsets inside it) and the export is byte-deterministic.

use rrfd_core::{Actor, EventLog, RtEventKind, RunTrace};
use rrfd_obs::{HistogramSnapshot, MetricValue, Snapshot, SpanKind, SpanPhase, SpanRecord};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders the statistics for one capture file, dispatching on its
/// format header (`rrfd-trace v1`, `rrfd-events v1`, or JSONL).
///
/// # Errors
///
/// Returns a message naming the problem when the input matches no known
/// format or fails to parse as the one it claims to be.
pub fn render(text: &str) -> Result<String, String> {
    let first = text.lines().next().unwrap_or_default().trim();
    if first == "rrfd-trace v1" {
        let trace: RunTrace = text.parse().map_err(|e| format!("trace: {e}"))?;
        Ok(render_trace(&trace))
    } else if first == "rrfd-events v1" {
        let log: EventLog = text.parse().map_err(|e| format!("events: {e}"))?;
        Ok(render_events(&log))
    } else if first.starts_with('{') {
        let snapshot = Snapshot::from_jsonl(text).map_err(|e| format!("metrics: {e}"))?;
        Ok(render_metrics(&snapshot))
    } else {
        Err(format!(
            "unrecognized capture format (first line {first:?}); expected \
             `rrfd-trace v1`, `rrfd-events v1`, or metrics JSONL"
        ))
    }
}

/// Synthetic logical time per round in the Chrome export, in
/// nanoseconds: round `r` occupies `[(r−1)·1 ms, r·1 ms)`.
const ROUND_SLOT_NS: u64 = 1_000_000;

/// Synthesizes causal [`SpanRecord`]s from a replay trace and renders
/// them as Chrome trace-event JSON (loadable at `ui.perfetto.dev`).
///
/// A [`RunTrace`] carries no clock readings — it is the deterministic
/// record of *what happened*, not when — so the spans use synthetic
/// logical timestamps: round `r` fills the slot `[(r−1)·1 ms, r·1 ms)`,
/// with the emit phase at `+0‥300 µs`, delivery at `+400‥700 µs`
/// (omitted for a round the adversary aborted before delivery), and
/// each process's decision at `+800‥900 µs` of its decision round. The
/// derived span/parent ids in `args` are the same pure function of
/// `(instance, round, process, kind)` the live tracing plane uses, so a
/// synthesized tree and a recorded one agree on identity.
#[must_use]
pub fn chrome_trace(trace: &RunTrace) -> String {
    let mut spans = Vec::new();
    let rounds = trace.rounds();
    spans.push(SpanRecord {
        instance: 0,
        kind: SpanKind::Run,
        round: 0,
        process: None,
        start_ns: 0,
        end_ns: rounds.len() as u64 * ROUND_SLOT_NS,
    });
    for (idx, round) in rounds.iter().enumerate() {
        let round_no = idx as u32 + 1;
        let base = idx as u64 * ROUND_SLOT_NS;
        spans.push(SpanRecord {
            instance: 0,
            kind: SpanKind::Round,
            round: round_no,
            process: None,
            start_ns: base,
            end_ns: base + ROUND_SLOT_NS,
        });
        spans.push(SpanRecord {
            instance: 0,
            kind: SpanKind::Phase(SpanPhase::Emit),
            round: round_no,
            process: None,
            start_ns: base,
            end_ns: base + 300_000,
        });
        if !round.heard.is_empty() {
            spans.push(SpanRecord {
                instance: 0,
                kind: SpanKind::Phase(SpanPhase::Deliver),
                round: round_no,
                process: None,
                start_ns: base + 400_000,
                end_ns: base + 700_000,
            });
        }
        for (i, decided) in trace.decision_rounds().iter().enumerate() {
            if decided.is_some_and(|r| r.get() == round_no) {
                spans.push(SpanRecord {
                    instance: 0,
                    kind: SpanKind::Phase(SpanPhase::Decide),
                    round: round_no,
                    process: Some(i as u32),
                    start_ns: base + 800_000,
                    end_ns: base + 900_000,
                });
            }
        }
    }
    rrfd_obs::span::to_chrome(&spans)
}

/// Parses `text` as an `rrfd-trace v1` capture and renders
/// [`chrome_trace`] for it.
///
/// # Errors
///
/// Returns a message when the capture is not an `rrfd-trace v1` file
/// (the other capture formats carry no per-round causal structure to
/// lay out) or fails to parse as one.
pub fn chrome_trace_text(text: &str) -> Result<String, String> {
    let first = text.lines().next().unwrap_or_default().trim();
    if first != "rrfd-trace v1" {
        return Err(format!(
            "--trace-out needs an `rrfd-trace v1` capture (got first line {first:?})"
        ));
    }
    let trace: RunTrace = text.parse().map_err(|e| format!("trace: {e}"))?;
    Ok(chrome_trace(&trace))
}

/// Lays out `rows` under `headers` with two-space gutters, every cell
/// right-aligned to its column width. Returns one trailing-newline block.
fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if let Some(w) = widths.get_mut(i) {
                *w = (*w).max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let mut emit_row = |cells: &mut dyn Iterator<Item = &str>| {
        for (i, cell) in cells.enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let w = widths.get(i).copied().unwrap_or(0);
            let _ = write!(out, "{cell:>w$}");
        }
        out.push('\n');
    };
    emit_row(&mut headers.iter().copied());
    for row in rows {
        emit_row(&mut row.iter().map(String::as_str));
    }
    out
}

fn render_trace(trace: &RunTrace) -> String {
    let n = trace.system_size().get();
    let mut rows = Vec::new();
    let (mut total_suspected, mut total_heard) = (0usize, 0usize);
    for (idx, round) in trace.rounds().iter().enumerate() {
        let round_no = idx as u32 + 1;
        let suspected: usize = (0..n)
            .map(|i| round.faults.of(rrfd_core::ProcessId::new(i)).len())
            .sum();
        let heard_sizes: Vec<usize> = round.heard.iter().map(|s| s.len()).collect();
        let heard_min = heard_sizes.iter().min().copied().unwrap_or(0);
        let heard_sum: usize = heard_sizes.iter().sum();
        let decided = trace
            .decision_rounds()
            .iter()
            .filter(|d| d.is_some_and(|r| r.get() == round_no))
            .count();
        total_suspected += suspected;
        total_heard += heard_sum;
        rows.push(vec![
            round_no.to_string(),
            suspected.to_string(),
            heard_min.to_string(),
            heard_sum.to_string(),
            decided.to_string(),
        ]);
    }
    let decided_total = trace
        .decision_rounds()
        .iter()
        .filter(|d| d.is_some())
        .count();
    let mut out = format!(
        "capture: rrfd-trace v1  n={n}  rounds={}\noutcome: {}\n\n",
        trace.rounds().len(),
        trace.outcome()
    );
    out.push_str(&table(
        &["round", "suspected", "heard(min)", "heard(sum)", "decided"],
        &rows,
    ));
    let _ = write!(
        out,
        "\ntotals: suspected={total_suspected} heard={total_heard} decided={decided_total}/{n}\n"
    );
    out
}

/// Per-round event tallies in the order of the events table's columns.
#[derive(Default, Clone, Copy)]
struct RoundTally {
    emit: u64,
    gather: u64,
    detect: u64,
    deliver: u64,
    receive: u64,
    decide: u64,
}

fn render_events(log: &EventLog) -> String {
    let mut by_round: BTreeMap<u32, RoundTally> = BTreeMap::new();
    let mut accesses = 0u64;
    let mut coordinator_events = 0u64;
    let mut process_events = 0u64;
    for event in log.events() {
        match event.actor {
            Actor::Coordinator => coordinator_events += 1,
            Actor::Process(_) => process_events += 1,
        }
        let (round, slot): (u32, fn(&mut RoundTally) -> &mut u64) = match &event.kind {
            RtEventKind::Emit { round } => (round.get(), |t| &mut t.emit),
            RtEventKind::Gather { round, .. } => (round.get(), |t| &mut t.gather),
            RtEventKind::Detect { round } => (round.get(), |t| &mut t.detect),
            RtEventKind::Deliver { round, .. } => (round.get(), |t| &mut t.deliver),
            RtEventKind::Receive { round } => (round.get(), |t| &mut t.receive),
            RtEventKind::Decide { round } => (round.get(), |t| &mut t.decide),
            RtEventKind::Access { .. } => {
                accesses += 1;
                continue;
            }
        };
        *slot(by_round.entry(round).or_default()) += 1;
    }
    let rows: Vec<Vec<String>> = by_round
        .iter()
        .map(|(round, t)| {
            vec![
                round.to_string(),
                t.emit.to_string(),
                t.gather.to_string(),
                t.detect.to_string(),
                t.deliver.to_string(),
                t.receive.to_string(),
                t.decide.to_string(),
            ]
        })
        .collect();
    let total = by_round
        .values()
        .fold(RoundTally::default(), |a, t| RoundTally {
            emit: a.emit + t.emit,
            gather: a.gather + t.gather,
            detect: a.detect + t.detect,
            deliver: a.deliver + t.deliver,
            receive: a.receive + t.receive,
            decide: a.decide + t.decide,
        });
    let mut out = format!(
        "capture: rrfd-events v1  n={}  events={}  (coordinator={coordinator_events} \
         process={process_events})\n\n",
        log.system_size().get(),
        log.len()
    );
    out.push_str(&table(
        &[
            "round", "emit", "gather", "detect", "deliver", "receive", "decide",
        ],
        &rows,
    ));
    let _ = write!(
        out,
        "\ntotals: emit={} gather={} detect={} deliver={} receive={} decide={} access={accesses}\n",
        total.emit, total.gather, total.detect, total.deliver, total.receive, total.decide
    );
    out
}

/// Shortens a metric name for use as a column header: the `rrfd_`
/// namespace prefix carries no information inside an `rrfd` table.
fn short(metric: &str) -> &str {
    metric.strip_prefix("rrfd_").unwrap_or(metric)
}

fn render_metrics(snapshot: &Snapshot) -> String {
    // Counters pivot into a round × metric table (summing over processes);
    // histograms merge per (metric, round); gauges list flat.
    let mut counter_names: Vec<&str> = Vec::new();
    let mut counters: BTreeMap<(u32, &str), u64> = BTreeMap::new();
    let mut histograms: BTreeMap<(&str, u32), HistogramSnapshot> = BTreeMap::new();
    let mut gauges: Vec<String> = Vec::new();
    for entry in snapshot.entries() {
        match &entry.value {
            MetricValue::Counter(v) => {
                let name = entry.metric.as_str();
                if !counter_names.contains(&name) {
                    counter_names.push(name);
                }
                *counters.entry((entry.labels.round, name)).or_default() += v;
            }
            MetricValue::Gauge(v) => {
                let process = match entry.labels.process {
                    Some(p) => format!(" process={p}"),
                    None => String::new(),
                };
                let round = if entry.labels.round == 0 {
                    String::new()
                } else {
                    format!(" round={}", entry.labels.round)
                };
                gauges.push(format!("{}{process}{round} = {v}", entry.metric));
            }
            MetricValue::Histogram(h) => {
                histograms
                    .entry((entry.metric.as_str(), entry.labels.round))
                    .and_modify(|acc| merge_histogram(acc, h))
                    .or_insert_with(|| h.clone());
            }
        }
    }
    counter_names.sort_unstable();
    let rounds: Vec<u32> = {
        let mut r: Vec<u32> = counters.keys().map(|(round, _)| *round).collect();
        r.sort_unstable();
        r.dedup();
        r
    };

    let mut out = format!(
        "capture: metrics jsonl  series={}\n",
        snapshot.entries().len()
    );

    if !counter_names.is_empty() {
        let mut headers = vec!["round"];
        headers.extend(counter_names.iter().map(|n| short(n)));
        let mut rows: Vec<Vec<String>> = Vec::new();
        for round in &rounds {
            let mut row = vec![if *round == 0 {
                "-".to_owned()
            } else {
                round.to_string()
            }];
            for name in &counter_names {
                let v = counters.get(&(*round, name)).copied().unwrap_or(0);
                row.push(v.to_string());
            }
            rows.push(row);
        }
        let mut totals = vec!["total".to_owned()];
        for name in &counter_names {
            let sum: u64 = counters
                .iter()
                .filter(|((_, n), _)| n == name)
                .map(|(_, v)| v)
                .sum();
            totals.push(sum.to_string());
        }
        rows.push(totals);
        out.push_str("\ncounters:\n");
        out.push_str(&table(&headers, &rows));
    }

    if !histograms.is_empty() {
        let rows: Vec<Vec<String>> = histograms
            .iter()
            .map(|((metric, round), h)| {
                let stat = |v: Option<u64>| v.map_or_else(|| "-".to_owned(), |v| v.to_string());
                vec![
                    short(metric).to_owned(),
                    if *round == 0 {
                        "-".to_owned()
                    } else {
                        round.to_string()
                    },
                    h.count.to_string(),
                    stat(h.quantile(0.5)),
                    stat(h.quantile(0.95)),
                    stat(h.mean()),
                ]
            })
            .collect();
        out.push_str("\nhistograms:\n");
        out.push_str(&table(
            &["metric", "round", "count", "p50", "p95", "mean"],
            &rows,
        ));
    }

    if !gauges.is_empty() {
        out.push_str("\ngauges:\n");
        for g in &gauges {
            let _ = writeln!(out, "  {g}");
        }
    }
    out
}

/// Adds `other`'s observations into `acc`. Bucket bounds are fixed
/// workspace-wide ([`rrfd_obs::BUCKET_BOUNDS`]), so merging is positional.
fn merge_histogram(acc: &mut HistogramSnapshot, other: &HistogramSnapshot) {
    for (slot, (_, count)) in acc.buckets.iter_mut().zip(&other.buckets) {
        slot.1 += count;
    }
    acc.count += other.count;
    acc.sum += other.sum;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrfd_obs::{names, Labels, Obs};

    const TRACE: &str = "\
rrfd-trace v1
n 3
round 1
d 2 - -
s 0,1 0,1,2 0,1,2
round 2
d - - -
s 0,1,2 0,1,2 0,1,2
decisions 2 2 2
outcome decided rounds=2
";

    #[test]
    fn trace_stats_tabulate_rounds() {
        let out = render(TRACE).unwrap();
        assert!(
            out.contains("capture: rrfd-trace v1  n=3  rounds=2"),
            "{out}"
        );
        assert!(out.contains("outcome: decided rounds=2"), "{out}");
        // Round 1: one suspicion, min heard 2, sum 8, nobody decides.
        assert!(
            out.contains("    1          1           2           8        0"),
            "{out}"
        );
        // Round 2: all three decide.
        assert!(
            out.contains("    2          0           3           9        3"),
            "{out}"
        );
        assert!(
            out.contains("totals: suspected=1 heard=17 decided=3/3"),
            "{out}"
        );
    }

    #[test]
    fn event_stats_tabulate_rounds() {
        let text = "\
rrfd-events v1
n 2
p0 emit r=1
p1 emit r=1
c gather from=0 r=1
c gather from=1 r=1
c detect r=1
c deliver to=0 r=1
p0 receive r=1
p0 decide r=1
c access loc=pattern rw=w
";
        let out = render(text).unwrap();
        assert!(
            out.contains("capture: rrfd-events v1  n=2  events=9"),
            "{out}"
        );
        assert!(
            out.contains("round  emit  gather  detect  deliver  receive  decide"),
            "{out}"
        );
        assert!(
            out.contains("    1     2       2       1        1        1       1"),
            "{out}"
        );
        assert!(
            out.contains("totals: emit=2 gather=2 detect=1 deliver=1 receive=1 decide=1 access=1"),
            "{out}"
        );
    }

    #[test]
    fn metric_stats_pivot_counters_and_summarize_histograms() {
        let obs = Obs::logical();
        obs.add(names::ENGINE_MESSAGES_EMITTED, Labels::round(1), 3);
        obs.add(names::ENGINE_MESSAGES_EMITTED, Labels::round(2), 3);
        obs.add(names::ENGINE_DECISIONS, Labels::process_round(0, 2), 1);
        obs.add(names::ENGINE_DECISIONS, Labels::process_round(1, 2), 1);
        obs.observe(names::ENGINE_HEARD_SIZE, Labels::process_round(0, 1), 2);
        obs.observe(names::ENGINE_HEARD_SIZE, Labels::process_round(1, 1), 3);
        obs.gauge(names::SIM_SCHED_DEPTH, Labels::GLOBAL, 7);
        let jsonl = obs.snapshot().to_jsonl();

        let out = render(&jsonl).unwrap();
        assert!(out.contains("counters:"), "{out}");
        // Column order is sorted by metric name: decisions before emitted.
        assert!(
            out.contains("round  engine_decisions_total  engine_messages_emitted_total"),
            "{out}"
        );
        assert!(
            out.contains("total                       2                              6"),
            "{out}"
        );
        // The two per-process heard histograms merge into one round-1 row
        // (values 2 and 3 share the `le=4` bucket, so p50 = p95 = 4).
        assert!(
            out.contains("engine_heard_size      1      2    4    4     2"),
            "{out}"
        );
        assert!(out.contains("rrfd_sim_sched_depth = 7"), "{out}");
    }

    #[test]
    fn unknown_formats_are_rejected() {
        let err = render("mystery v9\n").unwrap_err();
        assert!(err.contains("unrecognized capture format"), "{err}");
        let err = render("rrfd-trace v1\nn banana\n").unwrap_err();
        assert!(err.starts_with("trace:"), "{err}");
    }

    #[test]
    fn chrome_trace_lays_rounds_out_in_synthetic_slots() {
        use rrfd_obs::json::{self, Json};

        let text = chrome_trace_text(TRACE).unwrap();
        let parsed = json::parse(&text).unwrap();
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        // 1 run + 2 rounds + 2 emits + 2 delivers + 3 decides (all in
        // round 2) = 10 complete events.
        assert_eq!(events.len(), 10);
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("name").and_then(Json::as_str))
            .collect();
        assert_eq!(names.iter().filter(|n| **n == "run").count(), 1);
        assert!(names.contains(&"round 1"), "{names:?}");
        assert!(names.contains(&"emit r1"), "{names:?}");
        assert!(names.contains(&"deliver r2"), "{names:?}");
        assert!(names.contains(&"decide r2 p0"), "{names:?}");
        // Round 2 starts at 1 ms (= 1000 µs) of synthetic time; its
        // decides sit at +800 µs with the deciding process as tid.
        for event in events {
            let name = event.get("name").and_then(Json::as_str).unwrap();
            let ts = event.get("ts").and_then(Json::as_u64).unwrap();
            match name {
                "round 2" => assert_eq!(ts, 1000),
                "decide r2 p1" => {
                    assert_eq!(ts, 1800);
                    assert_eq!(event.get("tid").and_then(Json::as_u64), Some(1));
                }
                _ => {}
            }
        }
        // Byte-deterministic: same capture, same export.
        assert_eq!(chrome_trace_text(TRACE).unwrap(), text);
    }

    #[test]
    fn chrome_trace_rejects_non_trace_captures() {
        let err = chrome_trace_text("rrfd-events v1\nn 2\n").unwrap_err();
        assert!(err.contains("rrfd-trace v1"), "{err}");
        let err = chrome_trace_text("rrfd-trace v1\nn banana\n").unwrap_err();
        assert!(err.starts_with("trace:"), "{err}");
    }
}
