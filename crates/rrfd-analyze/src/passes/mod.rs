//! The pluggable pass API of the syntax-aware lint framework, and the
//! registry of the eight passes that ship with it.
//!
//! A pass consumes lexed, scope-parsed [`SourceFile`]s (see `syntax`)
//! and emits [`Finding`]s. File-local passes do all their work in
//! [`Pass::visit`]; whole-workspace passes (the lock-order deadlock
//! detector) accumulate state across files and emit from
//! [`Pass::finish`]. Crate fences — which pass applies to which crate —
//! come from `Cargo.toml` metadata (see `workspace`), never from code.
//!
//! Every finding carries a **span fingerprint**: a 64-bit FNV-1a hash
//! of `(pass, path, normalized token text of the finding's line,
//! occurrence index)`. Line numbers are deliberately excluded, so a
//! fingerprint is stable when unrelated lines are inserted or deleted
//! above it, and changes exactly when the flagged code itself changes.
//! `lint.allow` pins findings by fingerprint (see `lint`).
//!
//! Writing a new pass (also in the README):
//! 1. add a module here implementing [`Pass`],
//! 2. register it in [`registry`],
//! 3. gate it on a [`Fence`](crate::workspace::Fence) (add one if none
//!    fits) rather than a hard-coded crate list,
//! 4. seed a fixture under `tests/fixtures/static_analysis/` proving
//!    it fires, and extend the `--expect-findings` list in CI.

mod lock_order;
mod round_closure;
mod span_guard;
mod token_lints;

use crate::syntax::SourceFile;
use std::fmt;

pub use lock_order::LockOrder;
pub use round_closure::RoundClosure;
pub use span_guard::SpanGuard;
pub use token_lints::{DirectIndex, MsgClone, ObsClock, PanicFamily, WallClock};

/// A finding as a pass reports it — location and message, before the
/// framework assigns the occurrence-indexed fingerprint.
#[derive(Debug, Clone)]
pub struct RawFinding {
    /// Name of the pass that fired.
    pub pass: &'static str,
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// 1-based line of the finding.
    pub line: usize,
    /// 1-based byte column of the finding.
    pub col: usize,
    /// What is wrong, in one sentence.
    pub message: String,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

/// A finalized finding: a [`RawFinding`] plus its span fingerprint.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Name of the pass that fired.
    pub pass: &'static str,
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// 1-based line of the finding.
    pub line: usize,
    /// 1-based byte column of the finding.
    pub col: usize,
    /// What is wrong, in one sentence.
    pub message: String,
    /// The offending source line, trimmed.
    pub excerpt: String,
    /// `fp:` + 16 hex digits — stable under unrelated line shifts.
    pub fingerprint: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{} {}] {}: {}",
            self.path, self.line, self.col, self.pass, self.fingerprint, self.message, self.excerpt
        )
    }
}

/// A static-analysis pass over lexed source files.
pub trait Pass {
    /// The pass name used in reports, `lint.allow` and `--expect-findings`.
    fn name(&self) -> &'static str;
    /// One-line description for `--help`-style listings.
    fn description(&self) -> &'static str;
    /// Examines one file. Files arrive sorted by path.
    fn visit(&mut self, file: &SourceFile, out: &mut Vec<RawFinding>);
    /// Called once after every file has been visited; cross-file passes
    /// emit their findings here.
    fn finish(&mut self, out: &mut Vec<RawFinding>) {
        let _ = out;
    }
}

/// The eight passes of the framework, in reporting order.
#[must_use]
pub fn registry() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(PanicFamily),
        Box::new(WallClock),
        Box::new(ObsClock),
        Box::new(DirectIndex),
        Box::new(MsgClone),
        Box::new(RoundClosure),
        Box::new(SpanGuard),
        Box::new(LockOrder::default()),
    ]
}

/// Names of every registered pass, for allowlist validation.
#[must_use]
pub fn pass_names() -> Vec<&'static str> {
    registry().iter().map(|p| p.name()).collect()
}

/// Runs every registered pass over `files`, dedupes identical findings
/// on one line, and assigns span fingerprints.
#[must_use]
pub fn run_all(files: &[SourceFile]) -> Vec<Finding> {
    let mut passes = registry();
    let mut raw = Vec::new();
    for pass in &mut passes {
        for file in files {
            pass.visit(file, &mut raw);
        }
        pass.finish(&mut raw);
    }
    finalize(files, raw)
}

/// Dedupes and fingerprints raw findings. The normalized line text used
/// in the fingerprint is the whitespace-collapsed source line, so
/// reformatting *within* the line changes the fingerprint (the code
/// changed) but moving the line does not.
#[must_use]
pub fn finalize(files: &[SourceFile], mut raw: Vec<RawFinding>) -> Vec<Finding> {
    raw.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.pass, a.message.as_str()).cmp(&(
            b.path.as_str(),
            b.line,
            b.col,
            b.pass,
            b.message.as_str(),
        ))
    });
    raw.dedup_by(|a, b| a.pass == b.pass && a.path == b.path && a.line == b.line);
    let mut out: Vec<Finding> = Vec::with_capacity(raw.len());
    for f in raw {
        let normalized = normalize_line(files, &f);
        let occurrence = out
            .iter()
            .filter(|prev| {
                prev.pass == f.pass
                    && prev.path == f.path
                    && normalize_excerpt(&prev.excerpt) == normalized
            })
            .count();
        let fingerprint = fingerprint(f.pass, &f.path, &normalized, occurrence);
        out.push(Finding {
            pass: f.pass,
            path: f.path,
            line: f.line,
            col: f.col,
            message: f.message,
            excerpt: f.excerpt,
            fingerprint,
        });
    }
    out
}

fn normalize_line(files: &[SourceFile], f: &RawFinding) -> String {
    files.iter().find(|s| s.path == f.path).map_or_else(
        || normalize_excerpt(&f.excerpt),
        |s| normalize_excerpt(s.line_text(f.line)),
    )
}

fn normalize_excerpt(text: &str) -> String {
    text.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Computes the `fp:`-prefixed span fingerprint (FNV-1a 64).
#[must_use]
pub fn fingerprint(pass: &str, path: &str, normalized_line: &str, occurrence: usize) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(pass.as_bytes());
    mix(b"\0");
    mix(path.as_bytes());
    mix(b"\0");
    mix(normalized_line.as_bytes());
    mix(b"\0");
    mix(occurrence.to_string().as_bytes());
    format!("fp:{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::SourceFile;
    use crate::workspace::Fence;

    fn file(crate_name: &str, path: &str, fences: &[Fence], src: &str) -> SourceFile {
        SourceFile::parse(crate_name, path, fences, src.to_owned())
    }

    #[test]
    fn fingerprints_survive_unrelated_line_shifts() {
        let before = file("rrfd-core", "a.rs", &[], "fn f() {\n    x.unwrap();\n}\n");
        let after = file(
            "rrfd-core",
            "a.rs",
            &[],
            "// new comment\nfn g() {}\n\nfn f() {\n    x.unwrap();\n}\n",
        );
        let f1 = run_all(&[before]);
        let f2 = run_all(&[after]);
        assert_eq!(f1.len(), 1);
        assert_eq!(f2.len(), 1);
        assert_ne!(f1[0].line, f2[0].line);
        assert_eq!(f1[0].fingerprint, f2[0].fingerprint);
    }

    #[test]
    fn identical_lines_get_distinct_fingerprints() {
        let src = "fn f() {\n    x.unwrap();\n    x.unwrap();\n}\n";
        let findings = run_all(&[file("rrfd-core", "a.rs", &[], src)]);
        assert_eq!(findings.len(), 2);
        assert_ne!(findings[0].fingerprint, findings[1].fingerprint);
    }

    #[test]
    fn changing_the_flagged_line_changes_the_fingerprint() {
        let f1 = run_all(&[file("c", "a.rs", &[], "fn f() { x.unwrap(); }\n")]);
        let f2 = run_all(&[file("c", "a.rs", &[], "fn f() { y.unwrap(); }\n")]);
        assert_ne!(f1[0].fingerprint, f2[0].fingerprint);
    }

    #[test]
    fn one_line_reports_one_finding_per_pass() {
        // Two triggers of the same pass on one line collapse, matching
        // the legacy per-line scanner's counting.
        let findings = run_all(&[file(
            "c",
            "a.rs",
            &[],
            "fn f() { x.unwrap(); y.unwrap(); }\n",
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
    }
}
