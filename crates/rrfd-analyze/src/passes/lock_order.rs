//! The `lock-order` pass: build a static lock-acquisition graph from
//! nested `Mutex`/`RwLock` guard scopes across the instrumented crates
//! and report cycles as potential deadlocks.
//!
//! **Acquisition sites.** A call `recv.lock()`, `recv.read()` or
//! `recv.write()` with an empty argument list is an acquisition (the
//! empty-args requirement keeps `io::Read::read(&mut buf)` and friends
//! out). The lock's identity is `crate::receiver-chain` with index and
//! call-argument groups stripped, so `self.shards[i].lock()` and
//! `self.shards[j].lock()` are the *same* node — which is also why
//! self-edges are dropped: two acquisitions of one node may be two
//! distinct elements of a sharded array, not a re-entrant deadlock.
//!
//! **Guard scopes.** A `let`-bound guard is held until its enclosing
//! block closes; an unbound (temporary) guard until the end of its
//! statement. While any guard is held, each further acquisition adds a
//! `held → acquired` edge. This over-approximates lifetimes (early
//! `drop(guard)` is not modelled), so the graph has false edges but no
//! missing ones: an acyclic graph really is deadlock-free under this
//! syntax, a cycle is a *potential* deadlock to justify or fix.
//!
//! **Cycles.** After all files are visited, any edge `a → b` where `b`
//! reaches `a` is reported once per distinct cycle node-set, with the
//! full path in the message.

use super::{Pass, RawFinding};
use crate::syntax::SourceFile;
use crate::workspace::Fence;

/// One lock-acquisition-order edge: `from` was held when `to` was
/// acquired at the recorded site.
#[derive(Debug, Clone)]
struct LockEdge {
    from: String,
    to: String,
    path: String,
    line: usize,
    col: usize,
    excerpt: String,
}

/// The deadlock-cycle detector. Stateful: edges accumulate across
/// files and cycles are reported from [`Pass::finish`].
#[derive(Default)]
pub struct LockOrder {
    edges: Vec<LockEdge>,
}

impl Pass for LockOrder {
    fn name(&self) -> &'static str {
        "lock-order"
    }
    fn description(&self) -> &'static str {
        "nested lock acquisitions must form an acyclic order across the instrumented crates"
    }
    fn visit(&mut self, file: &SourceFile, out: &mut Vec<RawFinding>) {
        let _ = out; // findings are emitted from `finish`
        if !file.fenced(Fence::Instrumented) {
            return;
        }
        let mut fns = Vec::new();
        collect_fn_scopes(&file.root, file, &mut fns);
        for (open, close) in fns {
            self.scan_fn(file, open, close);
        }
    }
    fn finish(&mut self, out: &mut Vec<RawFinding>) {
        let nodes: Vec<&str> = {
            let mut v: Vec<&str> = self
                .edges
                .iter()
                .flat_map(|e| [e.from.as_str(), e.to.as_str()])
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let index_of = |name: &str| nodes.iter().position(|&n| n == name);
        let mut adj = vec![Vec::new(); nodes.len()];
        for e in &self.edges {
            let (Some(a), Some(b)) = (index_of(&e.from), index_of(&e.to)) else {
                continue;
            };
            if !adj[a].contains(&b) {
                adj[a].push(b);
            }
        }
        let mut reported: Vec<Vec<usize>> = Vec::new();
        for e in &self.edges {
            let (Some(a), Some(b)) = (index_of(&e.from), index_of(&e.to)) else {
                continue;
            };
            let Some(path_back) = shortest_path(&adj, b, a) else {
                continue;
            };
            // The cycle is a → b → … → a; canonicalize by node set.
            let mut cycle_nodes: Vec<usize> = vec![a, b];
            cycle_nodes.extend(&path_back);
            cycle_nodes.sort_unstable();
            cycle_nodes.dedup();
            if reported.contains(&cycle_nodes) {
                continue;
            }
            reported.push(cycle_nodes);
            let mut rendered: Vec<&str> = vec![nodes[a], nodes[b]];
            rendered.extend(path_back.iter().map(|&i| nodes[i]));
            out.push(RawFinding {
                pass: self.name(),
                path: e.path.clone(),
                line: e.line,
                col: e.col,
                message: format!(
                    "potential deadlock: lock-order cycle {}",
                    rendered.join(" → ")
                ),
                excerpt: e.excerpt.clone(),
            });
        }
    }
}

impl LockOrder {
    /// Walks one function body, tracking held guards by block depth.
    fn scan_fn(&mut self, file: &SourceFile, open: usize, close: usize) {
        struct Held {
            depth: i32,
            until_stmt: bool,
            id: String,
        }
        let mut held: Vec<Held> = Vec::new();
        let mut depth = 0i32;
        let close = close.min(file.tokens.len());
        for i in open + 1..close {
            if file.in_test.get(i).copied().unwrap_or(false) {
                continue;
            }
            if file.is_punct(i, b'{') {
                depth += 1;
            } else if file.is_punct(i, b'}') {
                depth -= 1;
                held.retain(|h| h.depth <= depth);
            } else if file.is_punct(i, b';') {
                held.retain(|h| !(h.until_stmt && h.depth == depth));
            } else if file.is_punct(i, b'.')
                && (file.is_ident(i + 1, "lock")
                    || file.is_ident(i + 1, "read")
                    || file.is_ident(i + 1, "write"))
                && file.is_punct(i + 2, b'(')
                && file.is_punct(i + 3, b')')
            {
                let Some(receiver) = receiver_chain(file, i, open) else {
                    continue;
                };
                let id = format!("{}::{receiver}", file.crate_name);
                let span = file.tokens[i + 1].span;
                for h in &held {
                    if h.id != id {
                        self.edges.push(LockEdge {
                            from: h.id.clone(),
                            to: id.clone(),
                            path: file.path.clone(),
                            line: span.line,
                            col: span.col,
                            excerpt: file.line_text(span.line).to_owned(),
                        });
                    }
                }
                held.push(Held {
                    depth,
                    until_stmt: !statement_is_let(file, i, open),
                    id,
                });
            }
        }
    }
}

/// Finds every `fn` scope, without descending into one to look for
/// nested functions (closure braces inside a body are scanned by the
/// linear walk, not treated as separate functions).
fn collect_fn_scopes(
    scope: &crate::syntax::Scope,
    file: &SourceFile,
    out: &mut Vec<(usize, usize)>,
) {
    for child in &scope.children {
        let is_fn = (child.header_lo..child.open).any(|i| file.is_ident(i, "fn"));
        if is_fn {
            out.push((child.open, child.close));
        } else {
            collect_fn_scopes(child, file, out);
        }
    }
}

/// Walks back from the `.` of an acquisition, collecting the receiver
/// chain (`self.shards[i]` → `self.shards`). Index `[…]` and call
/// `(…)` groups are skipped; the chain stops at anything that is not
/// an identifier, `.`, or `::`.
fn receiver_chain(file: &SourceFile, dot: usize, fn_open: usize) -> Option<String> {
    let mut parts: Vec<String> = Vec::new();
    let mut k = dot; // token index just after the current element
    loop {
        if k <= fn_open {
            break;
        }
        let j = k - 1;
        if file.is_punct(j, b']') || file.is_punct(j, b')') {
            // Skip the bracket group backwards.
            let (open_b, close_b) = if file.is_punct(j, b']') {
                (b'[', b']')
            } else {
                (b'(', b')')
            };
            let mut depth = 0i32;
            let mut m = j;
            loop {
                if file.is_punct(m, close_b) {
                    depth += 1;
                } else if file.is_punct(m, open_b) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if m == 0 || m <= fn_open {
                    return None;
                }
                m -= 1;
            }
            k = m;
            continue;
        }
        if matches!(
            file.tokens.get(j).map(|t| t.kind),
            Some(crate::syntax::TokenKind::Ident)
        ) {
            parts.push(file.tok_text(j).to_owned());
            k = j;
            // Continue only through `.` or `::` separators.
            if k > fn_open + 1 && file.is_punct(k - 1, b'.') {
                k -= 1;
                continue;
            }
            if k > fn_open + 2 && file.is_punct(k - 1, b':') && file.is_punct(k - 2, b':') {
                parts.push("::".to_owned());
                k -= 2;
                continue;
            }
            break;
        }
        break;
    }
    if parts.is_empty() {
        return None;
    }
    parts.reverse();
    let mut rendered = String::new();
    for part in parts {
        if part == "::" {
            rendered.push_str("::");
        } else {
            if !(rendered.is_empty() || rendered.ends_with("::")) {
                rendered.push('.');
            }
            rendered.push_str(&part);
        }
    }
    Some(rendered)
}

/// `true` when the statement containing token `i` starts with `let`
/// (the guard is bound and lives to the end of the block).
fn statement_is_let(file: &SourceFile, i: usize, fn_open: usize) -> bool {
    let mut j = i;
    while j > fn_open {
        let k = j - 1;
        if file.is_punct(k, b';') || file.is_punct(k, b'{') || file.is_punct(k, b'}') {
            break;
        }
        j = k;
    }
    file.is_ident(j, "let")
        || (file.is_ident(j, "if") || file.is_ident(j, "while")) && file.is_ident(j + 1, "let")
}

/// BFS shortest path from `from` to `to`; returns the node sequence
/// *after* `from` up to and including `to`.
fn shortest_path(adj: &[Vec<usize>], from: usize, to: usize) -> Option<Vec<usize>> {
    let mut prev: Vec<Option<usize>> = vec![None; adj.len()];
    let mut queue = std::collections::VecDeque::from([from]);
    let mut seen = vec![false; adj.len()];
    seen[from] = true;
    while let Some(n) = queue.pop_front() {
        if n == to {
            let mut path = vec![to];
            let mut cur = to;
            while let Some(p) = prev[cur] {
                path.push(p);
                cur = p;
            }
            path.pop(); // drop `from` itself
            path.reverse();
            return Some(path);
        }
        for &next in &adj[n] {
            if !seen[next] {
                seen[next] = true;
                prev[next] = Some(n);
                queue.push_back(next);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use crate::passes::run_all;
    use crate::syntax::SourceFile;
    use crate::workspace::Fence;

    fn check(src: &str) -> Vec<String> {
        let file = SourceFile::parse(
            "rt",
            "crates/rt/src/x.rs",
            &[Fence::Instrumented],
            src.to_owned(),
        );
        run_all(&[file])
            .into_iter()
            .filter(|f| f.pass == "lock-order")
            .map(|f| f.message)
            .collect()
    }

    #[test]
    fn opposite_order_acquisitions_form_a_cycle() {
        let got = check(
            "impl S {\n\
             fn ab(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n\
             fn ba(&self) { let g = self.b.lock(); let h = self.a.lock(); }\n\
             }\n",
        );
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(
            got[0].contains("rt::self.a → rt::self.b → rt::self.a"),
            "{got:?}"
        );
    }

    #[test]
    fn consistent_order_is_clean() {
        let got = check(
            "impl S {\n\
             fn ab(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n\
             fn also_ab(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n\
             }\n",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn guards_release_at_block_end() {
        // The `a` guard dies with its block before `b` is taken — no
        // nesting, no edge, no cycle even with the reverse order later.
        let got = check(
            "impl S {\n\
             fn ab(&self) { { let g = self.a.lock(); } let h = self.b.lock(); }\n\
             fn ba(&self) { { let g = self.b.lock(); } let h = self.a.lock(); }\n\
             }\n",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn temporary_guards_release_at_statement_end() {
        let got = check(
            "impl S {\n\
             fn ab(&self) { self.a.lock().push(1); let h = self.b.lock(); }\n\
             fn ba(&self) { self.b.lock().push(1); let h = self.a.lock(); }\n\
             }\n",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn nested_temporaries_in_one_statement_do_nest() {
        let got = check(
            "impl S {\n\
             fn ab(&self) { self.a.lock().merge(self.b.lock()); }\n\
             fn ba(&self) { self.b.lock().merge(self.a.lock()); }\n\
             }\n",
        );
        assert_eq!(got.len(), 1, "{got:?}");
    }

    #[test]
    fn sharded_self_acquisitions_are_not_self_deadlocks() {
        let got = check(
            "impl S {\n\
             fn mv(&self, i: usize, j: usize) {\n\
                 let a = self.shards[i].lock();\n\
                 let b = self.shards[j].lock();\n\
             }\n\
             }\n",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn three_party_cycles_are_found_across_functions() {
        let got = check(
            "impl S {\n\
             fn ab(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n\
             fn bc(&self) { let g = self.b.lock(); let h = self.c.lock(); }\n\
             fn ca(&self) { let g = self.c.lock(); let h = self.a.lock(); }\n\
             }\n",
        );
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].contains("→"), "{got:?}");
    }

    #[test]
    fn io_style_read_write_calls_are_not_acquisitions() {
        let got = check(
            "fn f(mut r: impl std::io::Read) {\n\
             let g = LOCK.lock();\n\
             let mut buf = [0u8; 4];\n\
             let n = r.read(&mut buf);\n\
             }\n",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn unfenced_crates_are_ignored() {
        let file = SourceFile::parse(
            "plain",
            "crates/plain/src/x.rs",
            &[],
            "impl S {\n\
             fn ab(&self) { let g = self.a.lock(); let h = self.b.lock(); }\n\
             fn ba(&self) { let g = self.b.lock(); let h = self.a.lock(); }\n\
             }\n"
            .to_owned(),
        );
        assert!(run_all(&[file]).iter().all(|f| f.pass != "lock-order"));
    }
}
