//! The `round-closure` pass: statically verify that `RoundProtocol`
//! implementations are **communication-closed** in the sense of
//! Damian–Drăgoi–Militaru–Widder (arXiv:1804.07078).
//!
//! The paper's round-local proof obligations (`S(i,r)`/`D(i,r)` views)
//! are only sound if no state or message crosses a round boundary
//! outside the typed knowledge/message path. Three rule families
//! enforce that syntactically:
//!
//! 1. **Delivery escape** (fence: `protocol`) — a `Delivery` (or a raw
//!    `&[Option<…>]` emission table) stored in a struct field, returned
//!    from a method, or captured by a `move` closure outlives the round
//!    method that received it, smuggling round-`r` messages into round
//!    `r+1`.
//! 2. **Interior mutability** (fence: `protocol`) — `RefCell`, `Cell`,
//!    `UnsafeCell`, `static mut`, `thread_local!` and `lazy_static`
//!    -style globals create channels around the round structure that
//!    the communication-closure argument cannot see.
//! 3. **Hash-order nondeterminism** (fence: `deterministic`) —
//!    `HashMap`/`HashSet` iteration order varies per process and per
//!    run, so any round output derived from it breaks replayable
//!    traces. Use `BTreeMap`/`BTreeSet`, index-keyed `Vec`s, or carry a
//!    fingerprinted `lint.allow` entry justifying why the order never
//!    reaches an output.

use super::{Pass, RawFinding};
use crate::syntax::{Scope, SourceFile};
use crate::workspace::Fence;

/// The communication-closure checker. See the module docs.
pub struct RoundClosure;

impl Pass for RoundClosure {
    fn name(&self) -> &'static str {
        "round-closure"
    }
    fn description(&self) -> &'static str {
        "RoundProtocol impls must be communication-closed (arXiv:1804.07078): \
         no delivery escapes, interior mutability, or hash-order nondeterminism"
    }
    fn visit(&mut self, file: &SourceFile, out: &mut Vec<RawFinding>) {
        if file.fenced(Fence::Protocol) {
            self.check_escapes(file, out);
            self.check_interior_mutability(file, out);
        }
        if file.fenced(Fence::Deterministic) {
            self.check_hash_order(file, out);
        }
    }
}

impl RoundClosure {
    fn hit(&self, file: &SourceFile, tok: usize, message: String, out: &mut Vec<RawFinding>) {
        let span = file.tokens[tok].span;
        out.push(RawFinding {
            pass: self.name(),
            path: file.path.clone(),
            line: span.line,
            col: span.col,
            message,
            excerpt: file.line_text(span.line).to_owned(),
        });
    }

    /// Rule 1: deliveries escaping their round method.
    fn check_escapes(&self, file: &SourceFile, out: &mut Vec<RawFinding>) {
        let mut scopes: Vec<&Scope> = Vec::new();
        crate::syntax::walk(&file.root, &mut |s| scopes.push(s));
        for scope in scopes {
            if scope.open == usize::MAX || file.in_test.get(scope.open).copied().unwrap_or(false) {
                continue;
            }
            let header: Vec<&str> = (scope.header_lo..scope.open)
                .map(|i| file.tok_text(i))
                .collect();
            if header.contains(&"struct") || header.contains(&"enum") {
                self.check_type_body(file, scope, out);
            } else if header.contains(&"fn") {
                self.check_fn(file, scope, &header, out);
            }
        }
    }

    /// Struct/enum bodies must not hold deliveries or emission tables.
    fn check_type_body(&self, file: &SourceFile, scope: &Scope, out: &mut Vec<RawFinding>) {
        let close = scope.close.min(file.tokens.len());
        for i in scope.open + 1..close {
            if file.is_ident(i, "Delivery") {
                self.hit(
                    file,
                    i,
                    "a `Delivery` stored in a type escapes its round method — \
                     rounds must be communication-closed"
                        .to_owned(),
                    out,
                );
            } else if file.is_punct(i, b'&') && {
                // Optional lifetime between `&` and the slice: `&'a [Option<M>]`.
                let j = if matches!(
                    file.tokens.get(i + 1).map(|t| &t.kind),
                    Some(crate::syntax::TokenKind::Lifetime)
                ) {
                    i + 2
                } else {
                    i + 1
                };
                file.is_punct(j, b'[')
                    && file.is_ident(j + 1, "Option")
                    && file.is_punct(j + 2, b'<')
            } {
                self.hit(
                    file,
                    i,
                    "a borrowed emission table (`&[Option<…>]`) stored in a type \
                     escapes its round — rounds must be communication-closed"
                        .to_owned(),
                    out,
                );
            }
        }
    }

    /// Round methods must not return deliveries or move them into
    /// closures that outlive the call.
    fn check_fn(
        &self,
        file: &SourceFile,
        scope: &Scope,
        header: &[&str],
        out: &mut Vec<RawFinding>,
    ) {
        // Return type: anything after `->` mentioning Delivery.
        if let Some(arrow) = header.windows(2).position(|w| w == ["-", ">"]) {
            if header[arrow + 2..].contains(&"Delivery") {
                self.hit(
                    file,
                    scope.header_lo,
                    "a round method returns a `Delivery` — round-`r` messages \
                     must not outlive round `r`"
                        .to_owned(),
                    out,
                );
            }
        }
        // Find the Delivery-typed parameter's binding name, if any.
        let Some(delivery_pos) = header.iter().position(|&t| t == "Delivery") else {
            return;
        };
        // Header shape: `… binding : Delivery < … > …` — the binding is
        // the identifier before the `:` preceding `Delivery`.
        let binding = header[..delivery_pos]
            .iter()
            .rposition(|&t| t == ":")
            .and_then(|colon| header[..colon].last())
            .filter(|name| {
                name.chars()
                    .next()
                    .is_some_and(|c| c.is_alphabetic() || c == '_')
            });
        let Some(binding) = binding else {
            return;
        };
        let close = scope.close.min(file.tokens.len());
        let mut i = scope.open + 1;
        while i < close {
            if file.is_ident(i, "move") {
                let extent_end = closure_extent(file, i + 1, close);
                for j in i + 1..extent_end {
                    if file.is_ident(j, binding) {
                        self.hit(
                            file,
                            j,
                            format!(
                                "the round delivery `{binding}` is captured by a `move` \
                                 closure — it may outlive the round method"
                            ),
                            out,
                        );
                        break;
                    }
                }
                i = extent_end;
            } else {
                i += 1;
            }
        }
    }

    /// Rule 2: interior mutability in protocol crates.
    fn check_interior_mutability(&self, file: &SourceFile, out: &mut Vec<RawFinding>) {
        for i in 0..file.tokens.len() {
            if file.in_test[i] {
                continue;
            }
            let message = if file.is_ident(i, "RefCell") || file.is_ident(i, "UnsafeCell") {
                Some(format!(
                    "`{}` in a protocol crate — interior mutability bypasses the \
                     round-local knowledge path",
                    file.tok_text(i)
                ))
            } else if file.is_ident(i, "Cell") && file.is_punct(i + 1, b'<') {
                Some(
                    "`Cell<…>` in a protocol crate — interior mutability bypasses the \
                     round-local knowledge path"
                        .to_owned(),
                )
            } else if file.is_ident(i, "thread_local") && file.is_punct(i + 1, b'!') {
                Some("`thread_local!` global state in a protocol crate".to_owned())
            } else if file.is_ident(i, "lazy_static") {
                Some("`lazy_static`-style global state in a protocol crate".to_owned())
            } else if file.is_ident(i, "static") && file.is_ident(i + 1, "mut") {
                Some("`static mut` global state in a protocol crate".to_owned())
            } else {
                None
            };
            if let Some(message) = message {
                self.hit(file, i, message, out);
            }
        }
    }

    /// Rule 3: hash-order nondeterminism in deterministic crates.
    fn check_hash_order(&self, file: &SourceFile, out: &mut Vec<RawFinding>) {
        for i in 0..file.tokens.len() {
            if file.in_test[i] {
                continue;
            }
            if file.is_ident(i, "HashMap") || file.is_ident(i, "HashSet") {
                self.hit(
                    file,
                    i,
                    format!(
                        "`{}` in a deterministic crate — iteration order is \
                         nondeterministic; use a BTree collection or justify the \
                         entry in lint.allow",
                        file.tok_text(i)
                    ),
                    out,
                );
            }
        }
    }
}

/// Given the token after `move`, returns one past the end of the
/// closure expression: past the `|params|`, then either the matching
/// `}` of a brace body or the end of the expression (a `;`/`,`/`)` at
/// the closure's own bracket depth).
fn closure_extent(file: &SourceFile, mut i: usize, close: usize) -> usize {
    // Skip to the opening `|`, then past the parameter list.
    while i < close && !file.is_punct(i, b'|') {
        // `move` not followed by a closure (e.g. an identifier named
        // move is impossible, but `async move {` is): treat a `{` as
        // the body directly.
        if file.is_punct(i, b'{') {
            return match_brace(file, i, close);
        }
        i += 1;
    }
    if i >= close {
        return close;
    }
    i += 1; // past the opening `|`
    while i < close && !file.is_punct(i, b'|') {
        i += 1;
    }
    i += 1; // past the closing `|`
    if i < close && file.is_punct(i, b'{') {
        return match_brace(file, i, close);
    }
    // Expression body: scan to the end of the expression.
    let mut depth = 0i32;
    while i < close {
        match () {
            () if file.is_punct(i, b'(') || file.is_punct(i, b'[') || file.is_punct(i, b'{') => {
                depth += 1;
            }
            () if file.is_punct(i, b')') || file.is_punct(i, b']') || file.is_punct(i, b'}') => {
                if depth == 0 {
                    return i;
                }
                depth -= 1;
            }
            () if depth == 0 && (file.is_punct(i, b';') || file.is_punct(i, b',')) => {
                return i;
            }
            () => {}
        }
        i += 1;
    }
    close
}

fn match_brace(file: &SourceFile, open: usize, close: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < close {
        if file.is_punct(i, b'{') {
            depth += 1;
        } else if file.is_punct(i, b'}') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    close
}

#[cfg(test)]
mod tests {
    use crate::passes::run_all;
    use crate::syntax::SourceFile;
    use crate::workspace::Fence;

    fn check(fences: &[Fence], src: &str) -> Vec<String> {
        let file = SourceFile::parse("p", "crates/p/src/x.rs", fences, src.to_owned());
        run_all(&[file])
            .into_iter()
            .filter(|f| f.pass == "round-closure")
            .map(|f| f.message)
            .collect()
    }

    const PROTO: &[Fence] = &[Fence::Protocol];
    const DET: &[Fence] = &[Fence::Deterministic];

    #[test]
    fn delivery_in_a_struct_field_escapes() {
        let got = check(
            PROTO,
            "struct Bad<'a, M> {\n    stash: Delivery<'a, M>,\n}\n",
        );
        assert_eq!(got.len(), 1);
        assert!(got[0].contains("stored in a type"), "{got:?}");
    }

    #[test]
    fn borrowed_emission_table_in_a_field_escapes() {
        let got = check(
            PROTO,
            "struct Bad<'a, M> {\n    table: &'a [Option<M>],\n}\n",
        );
        assert_eq!(got.len(), 1, "{got:?}");
    }

    #[test]
    fn returning_a_delivery_escapes() {
        let got = check(
            PROTO,
            "impl P {\n    fn leak<'a>(&self, d: Delivery<'a, u8>) -> Delivery<'a, u8> { d }\n}\n",
        );
        assert!(
            got.iter().any(|m| m.contains("returns a `Delivery`")),
            "{got:?}"
        );
    }

    #[test]
    fn move_closure_capturing_the_delivery_escapes() {
        let got = check(
            PROTO,
            "impl P {\n    fn deliver(&mut self, delivery: Delivery<'_, u8>) {\n        \
             self.cb = Box::new(move || delivery.round);\n    }\n}\n",
        );
        assert_eq!(got.len(), 1);
        assert!(got[0].contains("captured by a `move` closure"), "{got:?}");
    }

    #[test]
    fn reading_the_delivery_normally_is_clean() {
        let got = check(
            PROTO,
            "impl P {\n    fn deliver(&mut self, delivery: Delivery<'_, u8>) -> u32 {\n        \
             let mut acc = 0;\n        for v in delivery.values() { acc += v; }\n        acc\n    }\n}\n",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn non_move_closures_are_fine() {
        let got = check(
            PROTO,
            "impl P {\n    fn deliver(&mut self, d: Delivery<'_, u8>) -> usize {\n        \
             d.values().map(|v| v + 1).count()\n    }\n}\n",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn interior_mutability_is_flagged() {
        assert_eq!(check(PROTO, "struct S { c: RefCell<u8> }\n").len(), 1);
        assert_eq!(check(PROTO, "struct S { c: Cell<u8> }\n").len(), 1);
        assert_eq!(check(PROTO, "static mut COUNTER: u8 = 0;\n").len(), 1);
        assert_eq!(
            check(PROTO, "thread_local! { static X: u8 = 0; }\n").len(),
            1
        );
        // `Cell` as a plain path segment (e.g. a type named Cell in a
        // doc) without `<` does not fire; neither does unfenced code.
        assert!(check(PROTO, "fn f(c: &str) { let cell = c; }\n").is_empty());
        assert!(check(&[], "struct S { c: RefCell<u8> }\n").is_empty());
    }

    #[test]
    fn hash_collections_fire_only_in_deterministic_crates() {
        assert_eq!(check(DET, "use std::collections::HashMap;\n").len(), 1);
        assert_eq!(
            check(DET, "fn f() { let s: HashSet<u8> = HashSet::new(); }\n").len(),
            1
        );
        assert!(check(&[], "use std::collections::HashMap;\n").is_empty());
        // Test modules may hash freely.
        assert!(check(
            DET,
            "#[cfg(test)]\nmod t {\n    use std::collections::HashMap;\n}\n"
        )
        .is_empty());
    }
}
