//! The five original lints, ported from the line-oriented token
//! matcher onto the lexer: string/comment stripping and test-module
//! skipping now come from the real token stream and scope tree instead
//! of per-line heuristics. Their findings are counted per line, like
//! the scanner they replace (proved by the parity goldens in
//! `tests/static_analysis.rs`).

use super::{Pass, RawFinding};
use crate::syntax::{SourceFile, TokenKind};
use crate::workspace::Fence;

/// Emits one finding for token `i` of `file`.
fn hit(file: &SourceFile, i: usize, pass: &'static str, message: &str, out: &mut Vec<RawFinding>) {
    let span = file.tokens[i].span;
    out.push(RawFinding {
        pass,
        path: file.path.clone(),
        line: span.line,
        col: span.col,
        message: message.to_owned(),
        excerpt: file.line_text(span.line).to_owned(),
    });
}

/// `true` when token `i` is an identifier equal to `name` outside
/// test-only code.
fn lib_ident(file: &SourceFile, i: usize, name: &str) -> bool {
    !file.in_test[i] && file.is_ident(i, name)
}

/// Matches `recv . name (` starting at the `.` in position `i`.
fn method_call(file: &SourceFile, i: usize, name: &str) -> bool {
    file.is_punct(i, b'.') && file.is_ident(i + 1, name) && file.is_punct(i + 2, b'(')
}

/// `.unwrap()` / `.expect(` / `panic!` in non-test library code.
pub struct PanicFamily;

impl Pass for PanicFamily {
    fn name(&self) -> &'static str {
        "panic-family"
    }
    fn description(&self) -> &'static str {
        "`.unwrap()` / `.expect(` / `panic!` in library code — propagate the typed errors instead"
    }
    fn visit(&mut self, file: &SourceFile, out: &mut Vec<RawFinding>) {
        for i in 0..file.tokens.len() {
            if file.in_test[i] {
                continue;
            }
            if method_call(file, i, "unwrap") && file.is_punct(i + 3, b')') {
                hit(file, i, self.name(), "`.unwrap()` in library code", out);
            } else if method_call(file, i, "expect") {
                hit(file, i, self.name(), "`.expect(…)` in library code", out);
            } else if file.is_ident(i, "panic") && file.is_punct(i + 1, b'!') {
                hit(file, i, self.name(), "`panic!` in library code", out);
            }
        }
    }
}

/// Matches `Instant::now` / `SystemTime::now` at identifier `i`.
fn wall_clock_read(file: &SourceFile, i: usize) -> bool {
    (file.is_ident(i, "Instant") || file.is_ident(i, "SystemTime"))
        && file.is_punct(i + 1, b':')
        && file.is_punct(i + 2, b':')
        && file.is_ident(i + 3, "now")
}

/// Wall-clock reads in deterministic (replayable-trace) crates.
pub struct WallClock;

impl Pass for WallClock {
    fn name(&self) -> &'static str {
        "wall-clock"
    }
    fn description(&self) -> &'static str {
        "`Instant::now` / `SystemTime::now` in a deterministic crate breaks trace replay"
    }
    fn visit(&mut self, file: &SourceFile, out: &mut Vec<RawFinding>) {
        if !file.fenced(Fence::Deterministic) {
            return;
        }
        for i in 0..file.tokens.len() {
            if !file.in_test[i] && wall_clock_read(file, i) {
                hit(
                    file,
                    i,
                    self.name(),
                    "wall-clock read in a deterministic crate",
                    out,
                );
            }
        }
    }
}

/// Wall-clock reads in instrumented crates, bypassing `rrfd_obs::Clock`.
pub struct ObsClock;

impl Pass for ObsClock {
    fn name(&self) -> &'static str {
        "obs"
    }
    fn description(&self) -> &'static str {
        "wall-clock read in an instrumented crate — route time through `rrfd_obs::Clock`"
    }
    fn visit(&mut self, file: &SourceFile, out: &mut Vec<RawFinding>) {
        if !file.fenced(Fence::Instrumented) {
            return;
        }
        for i in 0..file.tokens.len() {
            if !file.in_test[i] && wall_clock_read(file, i) {
                hit(
                    file,
                    i,
                    self.name(),
                    "Clock-bypassing time read in an instrumented crate",
                    out,
                );
            }
        }
    }
}

/// `received[` — direct delivery indexing past the suspicion mask.
pub struct DirectIndex;

impl Pass for DirectIndex {
    fn name(&self) -> &'static str {
        "direct-index"
    }
    fn description(&self) -> &'static str {
        "`received[…]` bypasses the suspected-process mask — use the `Delivery` accessors"
    }
    fn visit(&mut self, file: &SourceFile, out: &mut Vec<RawFinding>) {
        for i in 0..file.tokens.len() {
            if lib_ident(file, i, "received") && file.is_punct(i + 1, b'[') {
                hit(
                    file,
                    i,
                    self.name(),
                    "direct indexing of a round delivery",
                    out,
                );
            }
        }
    }
}

/// Payload deep copies in the zero-copy message-plane crates.
pub struct MsgClone;

impl Pass for MsgClone {
    fn name(&self) -> &'static str {
        "msg-clone"
    }
    fn description(&self) -> &'static str {
        "payload clone in a message-plane delivery loop defeats the zero-copy plane"
    }
    fn visit(&mut self, file: &SourceFile, out: &mut Vec<RawFinding>) {
        if !file.fenced(Fence::MessagePlane) {
            return;
        }
        // `msg.clone()` anywhere; or `messages[` and `.clone()` on the
        // same source line (the shared emission table being copied out).
        let mut line_has_table_index: Vec<usize> = Vec::new();
        let mut line_has_clone: Vec<usize> = Vec::new();
        let mut first_on_line: Vec<(usize, usize)> = Vec::new(); // (line, token)
        for i in 0..file.tokens.len() {
            if file.in_test[i] {
                continue;
            }
            let line = file.tokens[i].span.line;
            if !matches!(file.tokens[i].kind, TokenKind::Literal(_))
                && first_on_line.last().map(|&(l, _)| l) != Some(line)
            {
                first_on_line.push((line, i));
            }
            if file.is_ident(i, "msg")
                && method_call(file, i + 1, "clone")
                && file.is_punct(i + 4, b')')
            {
                hit(
                    file,
                    i,
                    self.name(),
                    "message payload cloned out of a delivery",
                    out,
                );
            }
            if file.is_ident(i, "messages") && file.is_punct(i + 1, b'[') {
                line_has_table_index.push(line);
            }
            if method_call(file, i, "clone") && file.is_punct(i + 3, b')') {
                line_has_clone.push(line);
            }
        }
        for &line in &line_has_table_index {
            if line_has_clone.contains(&line) {
                if let Some(&(_, tok)) = first_on_line.iter().find(|&&(l, _)| l == line) {
                    hit(
                        file,
                        tok,
                        self.name(),
                        "emission-table entry cloned in a delivery loop",
                        out,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::passes::run_all;
    use crate::syntax::SourceFile;
    use crate::workspace::Fence;

    fn findings(fences: &[Fence], src: &str) -> Vec<(String, usize)> {
        let file = SourceFile::parse(
            "test-crate",
            "crates/test-crate/src/x.rs",
            fences,
            src.to_owned(),
        );
        run_all(&[file])
            .into_iter()
            .map(|f| (f.pass.to_owned(), f.line))
            .collect()
    }

    #[test]
    fn panic_family_fires_on_all_three_shapes() {
        let got = findings(
            &[],
            "fn f() {\n    a.unwrap();\n    b.expect(\"x\");\n    panic!(\"y\");\n}\n",
        );
        assert_eq!(
            got,
            vec![
                ("panic-family".to_owned(), 2),
                ("panic-family".to_owned(), 3),
                ("panic-family".to_owned(), 4)
            ]
        );
    }

    #[test]
    fn strings_comments_and_test_mods_are_exempt() {
        let got = findings(
            &[],
            "// a.unwrap()\n/* panic! */\nconst S: &str = \".unwrap()\";\n\
             #[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n",
        );
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn clock_passes_respect_fences() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(
            findings(&[Fence::Deterministic], src),
            vec![("wall-clock".to_owned(), 1)]
        );
        assert_eq!(
            findings(&[Fence::Instrumented], src),
            vec![("obs".to_owned(), 1)]
        );
        assert!(findings(&[], src).is_empty());
        // A crate can be in both (none currently are, but the framework
        // must not assume exclusivity).
        assert_eq!(
            findings(&[Fence::Deterministic, Fence::Instrumented], src).len(),
            2
        );
    }

    #[test]
    fn direct_index_fires_everywhere() {
        assert_eq!(
            findings(&[], "fn f() { let m = d.received[j]; }\n").len(),
            1
        );
        assert!(findings(&[], "fn f() { let m = d.received.get(j); }\n").is_empty());
    }

    #[test]
    fn msg_clone_shapes_and_fence() {
        let fences = [Fence::MessagePlane];
        assert_eq!(
            findings(&fences, "fn f() { out.push(msg.clone()); }\n").len(),
            1
        );
        assert_eq!(
            findings(&fences, "fn f() { let m = messages[j].clone(); }\n").len(),
            1
        );
        assert!(findings(&fences, "fn f() { let m = &messages[j]; }\n").is_empty());
        assert!(findings(&[], "fn f() { out.push(msg.clone()); }\n").is_empty());
    }
}
