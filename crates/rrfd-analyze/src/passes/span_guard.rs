//! The `span-guard` pass: `rrfd_obs` round-span guards must be opened
//! and closed inside the same round body.
//!
//! The tracing plane deliberately has no RAII guard — a
//! [`RoundSpan`](https://docs.rs) is plain data returned by
//! `Obs::round_enter` and consumed by `Obs::round_exit` (or reused as
//! the start timestamp of `Obs::close_span`). That keeps the no-op path
//! branch-free, but it also means the compiler never complains when a
//! guard is misused. Two misuse shapes matter, and both are syntactic:
//!
//! 1. **Guard held across a round boundary** — a `RoundSpan` stored in
//!    a struct or enum field survives the round that opened it, so the
//!    latency it eventually records spans an arbitrary number of later
//!    rounds. Spans follow the same communication-closure discipline as
//!    deliveries: open in the round, close in the round.
//! 2. **Guard dropped without close** — a function calls
//!    `.round_enter(…)` but never `.round_exit(…)` or `.close_span(…)`,
//!    so the clock read is taken and silently discarded: the histogram
//!    and the causal trace both lose the round. Functions whose return
//!    type hands the `RoundSpan` to the caller are exempt (that is the
//!    constructor/handoff pattern `rrfd-obs` itself uses).
//!
//! Gated on the `instrumented` fence — the same crates whose timing
//! must flow through `rrfd_obs::Clock`.

use super::{Pass, RawFinding};
use crate::syntax::{Scope, SourceFile};
use crate::workspace::Fence;

/// The round-span guard checker. See the module docs.
pub struct SpanGuard;

impl Pass for SpanGuard {
    fn name(&self) -> &'static str {
        "span-guard"
    }
    fn description(&self) -> &'static str {
        "rrfd_obs round-span guards must close in the round that opened them: \
         no RoundSpan stored in a type, no round_enter without round_exit/close_span"
    }
    fn visit(&mut self, file: &SourceFile, out: &mut Vec<RawFinding>) {
        if !file.fenced(Fence::Instrumented) {
            return;
        }
        let mut scopes: Vec<&Scope> = Vec::new();
        crate::syntax::walk(&file.root, &mut |s| scopes.push(s));
        for scope in scopes {
            if scope.open == usize::MAX || file.in_test.get(scope.open).copied().unwrap_or(false) {
                continue;
            }
            let header: Vec<&str> = (scope.header_lo..scope.open)
                .map(|i| file.tok_text(i))
                .collect();
            if header.contains(&"struct") || header.contains(&"enum") {
                self.check_type_body(file, scope, out);
            } else if header.contains(&"fn") {
                self.check_fn(file, scope, &header, out);
            }
        }
    }
}

impl SpanGuard {
    fn hit(&self, file: &SourceFile, tok: usize, message: String, out: &mut Vec<RawFinding>) {
        let span = file.tokens[tok].span;
        out.push(RawFinding {
            pass: self.name(),
            path: file.path.clone(),
            line: span.line,
            col: span.col,
            message,
            excerpt: file.line_text(span.line).to_owned(),
        });
    }

    /// Rule 1: a `RoundSpan` stored in a type outlives its round.
    fn check_type_body(&self, file: &SourceFile, scope: &Scope, out: &mut Vec<RawFinding>) {
        let close = scope.close.min(file.tokens.len());
        for i in scope.open + 1..close {
            if file.is_ident(i, "RoundSpan") {
                self.hit(
                    file,
                    i,
                    "a `RoundSpan` guard stored in a type is held across round \
                     boundaries — open and close the span inside one round body"
                        .to_owned(),
                    out,
                );
            }
        }
    }

    /// Rule 2: `.round_enter(…)` with no `.round_exit`/`.close_span` in
    /// the same function body drops the guard without recording.
    fn check_fn(
        &self,
        file: &SourceFile,
        scope: &Scope,
        header: &[&str],
        out: &mut Vec<RawFinding>,
    ) {
        // Handoff exemption: a function returning the guard (the
        // `round_enter` constructor pattern) closes nothing by design.
        if let Some(arrow) = header.windows(2).position(|w| w == ["-", ">"]) {
            if header[arrow + 2..].contains(&"RoundSpan") {
                return;
            }
        }
        let close = scope.close.min(file.tokens.len());
        let mut first_enter = None;
        let mut closes = 0usize;
        for i in scope.open + 1..close {
            // Method calls only (`.round_enter(`): definitions and doc
            // mentions never carry the leading dot.
            if !(i > 0 && file.is_punct(i - 1, b'.')) {
                continue;
            }
            if file.is_ident(i, "round_enter") && file.is_punct(i + 1, b'(') {
                first_enter.get_or_insert(i);
            } else if file.is_ident(i, "round_exit") || file.is_ident(i, "close_span") {
                closes += 1;
            }
        }
        if let Some(enter) = first_enter {
            if closes == 0 {
                self.hit(
                    file,
                    enter,
                    "`round_enter` opens a span this function never closes \
                     (no `round_exit`/`close_span`) — the guard is dropped \
                     and the round's latency is lost"
                        .to_owned(),
                    out,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::passes::run_all;
    use crate::syntax::SourceFile;
    use crate::workspace::Fence;

    fn check(fences: &[Fence], src: &str) -> Vec<String> {
        let file = SourceFile::parse("p", "crates/p/src/x.rs", fences, src.to_owned());
        run_all(&[file])
            .into_iter()
            .filter(|f| f.pass == "span-guard")
            .map(|f| f.message)
            .collect()
    }

    const INST: &[Fence] = &[Fence::Instrumented];

    #[test]
    fn a_round_span_in_a_struct_field_is_held_across_rounds() {
        let got = check(INST, "struct Holder {\n    open: RoundSpan,\n}\n");
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].contains("held across round boundaries"), "{got:?}");
        // Unfenced crates may do what they like.
        assert!(check(&[], "struct Holder {\n    open: RoundSpan,\n}\n").is_empty());
    }

    #[test]
    fn an_unclosed_round_enter_is_a_dropped_guard() {
        let got = check(
            INST,
            "fn run(obs: &Obs) {\n    let span = obs.round_enter(Labels::round(1));\n    \
             let _ = span;\n}\n",
        );
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].contains("never closes"), "{got:?}");
    }

    #[test]
    fn enter_paired_with_exit_or_close_span_is_clean() {
        let exit = "fn run(obs: &Obs) {\n    let span = obs.round_enter(Labels::round(1));\n    \
                    obs.round_exit(METRIC, span);\n}\n";
        assert!(check(INST, exit).is_empty());
        let close = "fn run(obs: &Obs) {\n    let span = obs.round_enter(Labels::round(1));\n    \
                     obs.close_span(0, SpanKind::Round, 1, None, span.start_ns());\n}\n";
        assert!(check(INST, close).is_empty());
        // Closing inside a nested closure still counts: the guard is
        // consumed before the function returns.
        let closure =
            "fn run(obs: &Obs) {\n    let span = obs.round_enter(Labels::round(1));\n    \
                       finally(|| obs.round_exit(METRIC, span));\n}\n";
        assert!(check(INST, closure).is_empty());
    }

    #[test]
    fn handoff_functions_returning_the_guard_are_exempt() {
        let src = "fn open(obs: &Obs) -> RoundSpan {\n    obs.round_enter(Labels::round(1))\n}\n";
        assert!(check(INST, src).is_empty(), "constructor pattern is legal");
    }

    #[test]
    fn definitions_and_tests_do_not_fire() {
        // The method definition itself has no leading dot.
        let def =
            "impl Obs {\n    pub fn round_enter(&self, labels: Labels) -> RoundSpan {\n        \
                   RoundSpan { start_ns: 0, labels }\n    }\n}\n";
        assert!(check(INST, def).is_empty());
        let test = "#[cfg(test)]\nmod t {\n    fn f(obs: &Obs) { let _ = \
                    obs.round_enter(Labels::round(1)); }\n}\n";
        assert!(check(INST, test).is_empty());
    }
}
