//! Workspace discovery for the static-analysis framework: which crates
//! exist, which fence categories each one carries, and the lexed
//! [`SourceFile`]s the passes run over.
//!
//! Fences used to be hard-coded string arrays in the lint module, which
//! meant a new crate (this happened with `rrfd-engine-pool`) silently
//! dodged every fence until someone remembered to edit the lists. They
//! are now declared next to the code they govern, in each crate's
//! `Cargo.toml`:
//!
//! ```toml
//! [package.metadata.rrfd]
//! fences = ["deterministic", "message-plane", "protocol"]
//! ```
//!
//! A crate with no `[package.metadata.rrfd]` section carries no fences:
//! only the universal passes (`panic-family`, `direct-index`) apply.
//! An unknown fence name is a hard error — typos must not silently
//! un-fence a crate.

use crate::syntax::SourceFile;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// A fence category a crate can opt into via `Cargo.toml` metadata.
/// Each category gates one or more passes (see `passes`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fence {
    /// Replayable-trace crates: no wall-clock reads
    /// (`wall-clock` pass) and no nondeterministic hash iteration
    /// (`round-closure` pass, hash-order rule).
    Deterministic,
    /// Crates whose timing must flow through `rrfd_obs::Clock`
    /// (`obs` pass) and whose lock nesting feeds the `lock-order`
    /// deadlock graph.
    Instrumented,
    /// Zero-copy message-plane crates: payload clones in delivery
    /// loops are regressions (`msg-clone` pass).
    MessagePlane,
    /// Crates hosting `RoundProtocol` implementations: round methods
    /// must be communication-closed (`round-closure` pass — delivery
    /// escape and interior-mutability rules).
    Protocol,
}

impl Fence {
    /// The name used in `Cargo.toml` metadata.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Fence::Deterministic => "deterministic",
            Fence::Instrumented => "instrumented",
            Fence::MessagePlane => "message-plane",
            Fence::Protocol => "protocol",
        }
    }

    fn parse(name: &str) -> Option<Self> {
        match name {
            "deterministic" => Some(Fence::Deterministic),
            "instrumented" => Some(Fence::Instrumented),
            "message-plane" => Some(Fence::MessagePlane),
            "protocol" => Some(Fence::Protocol),
            _ => None,
        }
    }
}

impl fmt::Display for Fence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One discovered workspace crate.
#[derive(Debug)]
pub struct CrateInfo {
    /// The crate's directory name under `crates/`.
    pub name: String,
    /// Fence categories from `[package.metadata.rrfd]`.
    pub fences: Vec<Fence>,
    /// Absolute path of the crate directory.
    pub dir: PathBuf,
}

/// Extracts the `fences` array from a crate manifest's
/// `[package.metadata.rrfd]` section. No section (or no `fences` key)
/// means no fences.
///
/// # Errors
///
/// Returns a message naming the offense when the section exists but the
/// `fences` value is malformed or names an unknown fence.
pub fn parse_fences(manifest: &str) -> Result<Vec<Fence>, String> {
    let mut in_section = false;
    for raw in manifest.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_section = line == "[package.metadata.rrfd]";
            continue;
        }
        if !in_section {
            continue;
        }
        let Some(rest) = line.strip_prefix("fences") else {
            continue;
        };
        let Some(value) = rest.trim_start().strip_prefix('=') else {
            continue;
        };
        let value = value.split('#').next().unwrap_or_default().trim();
        let inner = value
            .strip_prefix('[')
            .and_then(|v| v.strip_suffix(']'))
            .ok_or_else(|| {
                format!("`fences` must be a single-line array of strings, got {value:?}")
            })?;
        let mut fences = Vec::new();
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let name = part
                .strip_prefix('"')
                .and_then(|p| p.strip_suffix('"'))
                .ok_or_else(|| format!("fence entries must be quoted strings, got {part:?}"))?;
            let fence = Fence::parse(name).ok_or_else(|| {
                format!(
                    "unknown fence {name:?} (expected one of: deterministic, \
                     instrumented, message-plane, protocol)"
                )
            })?;
            if !fences.contains(&fence) {
                fences.push(fence);
            }
        }
        return Ok(fences);
    }
    Ok(Vec::new())
}

/// Discovers every crate under `<root>/crates` that has a `src/`
/// directory, reading each one's fences from its manifest.
///
/// # Errors
///
/// Propagates I/O errors; malformed fence metadata is reported as
/// [`io::ErrorKind::InvalidData`] naming the manifest.
pub fn discover(root: &Path) -> io::Result<Vec<CrateInfo>> {
    let crates_dir = root.join("crates");
    let mut crates = Vec::new();
    for entry in std::fs::read_dir(&crates_dir)? {
        let dir = entry?.path();
        if !dir.join("src").is_dir() {
            continue;
        }
        let name = dir
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let manifest_path = dir.join("Cargo.toml");
        let fences = match std::fs::read_to_string(&manifest_path) {
            Ok(text) => parse_fences(&text).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: {e}", manifest_path.display()),
                )
            })?,
            Err(_) => Vec::new(), // no manifest: an unfenced source tree
        };
        crates.push(CrateInfo { name, fences, dir });
    }
    crates.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(crates)
}

/// Loads and lexes every `.rs` file under each crate's `src/` tree,
/// excluding `src/bin/` (CLIs may legitimately abort on bad input).
/// Files come back sorted by workspace-relative path.
///
/// # Errors
///
/// Propagates I/O errors from directory walking and file reads.
pub fn load_files(root: &Path, crates: &[CrateInfo]) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    for info in crates {
        let mut paths = Vec::new();
        collect_rs_files(&info.dir.join("src"), &mut paths)?;
        paths.sort();
        for path in paths {
            let text = std::fs::read_to_string(&path)?;
            let rel = relative_display(root, &path);
            files.push(SourceFile::parse(&info.name, &rel, &info.fences, text));
        }
    }
    Ok(files)
}

/// Renders `file` relative to `root` with `/` separators, matching the
/// paths recorded in `lint.allow`.
#[must_use]
pub fn relative_display(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "bin") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fences_parse_from_metadata_section() {
        let manifest = "\
[package]
name = \"x\"

[package.metadata.rrfd]
fences = [\"deterministic\", \"message-plane\"]  # comment

[dependencies]
";
        let fences = parse_fences(manifest).unwrap();
        assert_eq!(fences, vec![Fence::Deterministic, Fence::MessagePlane]);
    }

    #[test]
    fn missing_section_means_no_fences() {
        assert!(parse_fences("[package]\nname = \"x\"\n")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn unknown_fences_and_bad_shapes_are_errors() {
        let err =
            parse_fences("[package.metadata.rrfd]\nfences = [\"determinstic\"]\n").unwrap_err();
        assert!(err.contains("unknown fence"), "{err}");
        assert!(parse_fences("[package.metadata.rrfd]\nfences = \"deterministic\"\n").is_err());
        assert!(parse_fences("[package.metadata.rrfd]\nfences = [deterministic]\n").is_err());
    }

    #[test]
    fn fences_outside_the_rrfd_section_are_ignored() {
        let manifest = "[package.metadata.other]\nfences = [\"bogus\"]\n";
        assert!(parse_fences(manifest).unwrap().is_empty());
    }
}
