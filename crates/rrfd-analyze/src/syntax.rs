//! A hand-rolled Rust lexer and lightweight block parser — the
//! foundation of the syntax-aware lint framework (`passes`).
//!
//! The lexer turns source text into a flat stream of spanned tokens
//! (identifiers, lifetimes, literals, punctuation) with comments
//! stripped and string/char literals kept as opaque single tokens, so
//! passes never see `panic!` inside a doc comment or a string. It
//! understands the escapes that defeat line-oriented scanners: nested
//! block comments, raw strings (`r#"…"#` with any hash count), byte
//! strings, multi-line strings, and the char-literal/lifetime
//! ambiguity.
//!
//! On top of the token stream a lightweight parser builds a *scope
//! tree*: every `{ … }` region becomes a [`Scope`] annotated with the
//! attributes (`#[cfg(test)]`, `#[test]`, …) and header tokens
//! (`impl RoundProtocol for X`, `fn deliver(…)`) that preceded its
//! opening brace. That is deliberately much less than a Rust grammar —
//! no expressions, no types — but enough to answer the questions
//! passes ask: "is this token inside test-only code?", "which `impl`
//! block am I in?", "where does this function body end?".

use std::fmt;

/// Byte- and line-addressed location of a token in its file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first byte.
    pub lo: usize,
    /// Byte offset one past the last byte.
    pub hi: usize,
    /// 1-based line of the first byte.
    pub line: usize,
    /// 1-based column (in bytes) of the first byte.
    pub col: usize,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// What sort of literal a [`TokenKind::Literal`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LitKind {
    /// String, raw-string, byte-string or raw-byte-string literal.
    Str,
    /// Character or byte literal.
    Char,
    /// Integer or float literal (suffix included).
    Num,
}

/// The lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `received`, `RoundProtocol`, …).
    Ident,
    /// A lifetime such as `'a` (quote included in the span).
    Lifetime,
    /// A literal; passes normally skip these.
    Literal(LitKind),
    /// One byte of punctuation. Multi-byte operators (`::`, `->`)
    /// appear as consecutive punct tokens.
    Punct(u8),
}

/// One lexed token. Text is recovered from the owning
/// [`SourceFile::text`] via the span, keeping tokens `Copy`-cheap.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Location in the source text.
    pub span: Span,
}

/// One `{ … }` region of a file, with the attributes and header tokens
/// that introduced it and its nested scopes.
#[derive(Debug, Default)]
pub struct Scope {
    /// Token index of the opening `{` (`usize::MAX` for the file root).
    pub open: usize,
    /// Token index of the matching `}` (`tokens.len()` if unbalanced —
    /// the scope then extends to end of file).
    pub close: usize,
    /// Token range `[header_lo, open)` holding the item header: the
    /// tokens after the previous item boundary (`;`, `{`, `}`) at the
    /// same nesting level, attributes excluded.
    pub header_lo: usize,
    /// Rendered attribute contents preceding the header, e.g.
    /// `"cfg(test)"`, `"test"`, `"derive(Debug)"`.
    pub attrs: Vec<String>,
    /// Nested scopes in source order.
    pub children: Vec<Scope>,
}

impl Scope {
    /// `true` when this scope's own attributes mark it test-only:
    /// `#[cfg(test)]` (or any `cfg(…)` mentioning `test`) or `#[test]`.
    #[must_use]
    pub fn is_test_marked(&self) -> bool {
        self.attrs
            .iter()
            .any(|a| a == "test" || (a.starts_with("cfg") && a.contains("test")))
    }
}

/// A lexed and scope-parsed source file, plus the workspace context
/// (crate, fences) passes need to decide what applies.
#[derive(Debug)]
pub struct SourceFile {
    /// Name of the crate the file belongs to (its `crates/` dir name).
    pub crate_name: String,
    /// Workspace-relative `/`-separated path, as reported in findings.
    pub path: String,
    /// Fence categories of the crate, from `Cargo.toml` metadata.
    pub fences: Vec<crate::workspace::Fence>,
    /// The raw source text.
    pub text: String,
    /// The token stream, comments stripped.
    pub tokens: Vec<Token>,
    /// Root of the scope tree (`open == usize::MAX`).
    pub root: Scope,
    /// `in_test[i]` — token `i` lies inside a `#[cfg(test)]`/`#[test]`
    /// scope (the test scope's header and attributes included).
    pub in_test: Vec<bool>,
}

impl SourceFile {
    /// Lexes and scope-parses `text`.
    #[must_use]
    pub fn parse(
        crate_name: &str,
        path: &str,
        fences: &[crate::workspace::Fence],
        text: String,
    ) -> Self {
        let tokens = lex(&text);
        let root = parse_scopes(&tokens, &text);
        let mut in_test = vec![false; tokens.len()];
        mark_tests(&root, false, &mut in_test);
        SourceFile {
            crate_name: crate_name.to_owned(),
            path: path.to_owned(),
            fences: fences.to_vec(),
            text,
            tokens,
            root,
            in_test,
        }
    }

    /// The source text of token `i`.
    #[must_use]
    pub fn tok_text(&self, i: usize) -> &str {
        let s = self.tokens[i].span;
        &self.text[s.lo..s.hi]
    }

    /// `true` when token `i` is the identifier `name`.
    #[must_use]
    pub fn is_ident(&self, i: usize, name: &str) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Ident)
            && self.tok_text(i) == name
    }

    /// `true` when token `i` is the punctuation byte `b`.
    #[must_use]
    pub fn is_punct(&self, i: usize, b: u8) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Punct(b))
    }

    /// The whole source line (1-based) containing byte `lo`, trimmed.
    #[must_use]
    pub fn line_text(&self, line: usize) -> &str {
        self.text
            .lines()
            .nth(line.saturating_sub(1))
            .unwrap_or("")
            .trim()
    }

    /// Whether the crate carries a fence category.
    #[must_use]
    pub fn fenced(&self, fence: crate::workspace::Fence) -> bool {
        self.fences.contains(&fence)
    }
}

fn mark_tests(scope: &Scope, inherited: bool, out: &mut [bool]) {
    let test = inherited || scope.is_test_marked();
    if test && scope.open != usize::MAX {
        let hi = scope.close.min(out.len());
        for slot in &mut out[scope.header_lo..hi] {
            *slot = true;
        }
        if hi < out.len() {
            out[hi] = true; // the closing `}` itself
        }
    }
    for child in &scope.children {
        mark_tests(child, test, out);
    }
}

/// Lexes Rust source into spanned tokens, dropping comments.
#[must_use]
pub fn lex(text: &str) -> Vec<Token> {
    let bytes = text.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line = 1usize;
    let mut line_start = 0usize; // byte offset of the current line
                                 // Advances `i` to `to`, updating the line accounting.
    macro_rules! advance_to {
        ($to:expr) => {{
            let to = $to;
            while i < to && i < bytes.len() {
                if bytes[i] == b'\n' {
                    line += 1;
                    line_start = i + 1;
                }
                i += 1;
            }
        }};
    }
    while i < bytes.len() {
        let b = bytes[i];
        let start = i;
        let start_line = line;
        let start_col = i - line_start + 1;
        let span = |hi: usize| Span {
            lo: start,
            hi,
            line: start_line,
            col: start_col,
        };
        match b {
            b'\n' => {
                line += 1;
                line_start = i + 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                // Line comment (doc comments included): to end of line.
                let end = memchr(bytes, i, b'\n').unwrap_or(bytes.len());
                advance_to!(end);
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment, nested.
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < bytes.len() && depth > 0 {
                    if bytes[j..].starts_with(b"/*") {
                        depth += 1;
                        j += 2;
                    } else if bytes[j..].starts_with(b"*/") {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                advance_to!(j);
            }
            b'"' => {
                let end = scan_string(bytes, i + 1);
                advance_to!(end);
                tokens.push(Token {
                    kind: TokenKind::Literal(LitKind::Str),
                    span: span(i),
                });
            }
            b'r' | b'b' if raw_string_start(bytes, i).is_some() => {
                let end = raw_string_start(bytes, i).expect("checked by the guard");
                advance_to!(end);
                tokens.push(Token {
                    kind: TokenKind::Literal(LitKind::Str),
                    span: span(i),
                });
            }
            b'b' if bytes.get(i + 1) == Some(&b'\'') => {
                let end = scan_char(bytes, i + 2);
                advance_to!(end);
                tokens.push(Token {
                    kind: TokenKind::Literal(LitKind::Char),
                    span: span(i),
                });
            }
            b'\'' => {
                // Lifetime vs char literal: `'` + ident-start not
                // immediately closed by `'` is a lifetime (`'a`, `'static`).
                let next = bytes.get(i + 1).copied();
                let after = bytes.get(i + 2).copied();
                let ident_start = next.is_some_and(|c| c.is_ascii_alphabetic() || c == b'_');
                if ident_start && after != Some(b'\'') {
                    let mut j = i + 1;
                    while j < bytes.len() && is_ident_byte(bytes[j]) {
                        j += 1;
                    }
                    advance_to!(j);
                    tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        span: span(i),
                    });
                } else {
                    let end = scan_char(bytes, i + 1);
                    advance_to!(end);
                    tokens.push(Token {
                        kind: TokenKind::Literal(LitKind::Char),
                        span: span(i),
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                while j < bytes.len()
                    && (is_ident_byte(bytes[j])
                        || (bytes[j] == b'.' && bytes.get(j + 1).is_some_and(u8::is_ascii_digit)))
                {
                    j += 1;
                }
                advance_to!(j);
                tokens.push(Token {
                    kind: TokenKind::Literal(LitKind::Num),
                    span: span(i),
                });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let mut j = i + 1;
                while j < bytes.len() && is_ident_byte(bytes[j]) {
                    j += 1;
                }
                // Raw identifiers: `r#match` — skip the `r#` prefix case
                // where `r` was followed by `#` (handled here because the
                // raw-string guard above did not match).
                if j == i + 1 && c == b'r' && bytes.get(j) == Some(&b'#') {
                    let mut k = j + 1;
                    while k < bytes.len() && is_ident_byte(bytes[k]) {
                        k += 1;
                    }
                    if k > j + 1 {
                        j = k;
                    }
                }
                advance_to!(j);
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    span: span(i),
                });
            }
            c => {
                i += 1;
                tokens.push(Token {
                    kind: TokenKind::Punct(c),
                    span: span(i),
                });
            }
        }
    }
    tokens
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn memchr(bytes: &[u8], from: usize, needle: u8) -> Option<usize> {
    bytes[from..]
        .iter()
        .position(|&b| b == needle)
        .map(|p| from + p)
}

/// Scans past a `"…"` body starting after the opening quote; returns
/// the index one past the closing quote (or end of input).
fn scan_string(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Scans past a char/byte literal body starting after the opening
/// quote; returns the index one past the closing quote.
fn scan_char(bytes: &[u8], mut i: usize) -> usize {
    if bytes.get(i) == Some(&b'\\') {
        i += 2;
    } else {
        i += 1;
    }
    while i < bytes.len() && bytes[i] != b'\'' {
        i += 1;
    }
    (i + 1).min(bytes.len())
}

/// If `bytes[i..]` starts a raw (byte) string literal — `r"`, `r#"`,
/// `br##"`, … — returns the index one past its closing delimiter.
fn raw_string_start(bytes: &[u8], i: usize) -> Option<usize> {
    let mut j = i;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) != Some(&b'"') {
        return None;
    }
    j += 1;
    // Find `"` followed by `hashes` hash marks.
    while j < bytes.len() {
        if bytes[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while seen < hashes && bytes.get(k) == Some(&b'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return Some(k);
            }
        }
        j += 1;
    }
    Some(bytes.len())
}

/// Builds the scope tree from a token stream.
#[must_use]
pub fn parse_scopes(tokens: &[Token], text: &str) -> Scope {
    struct Frame {
        scope: Scope,
        header_lo: usize,
        pending_attrs: Vec<String>,
    }
    let mut stack = vec![Frame {
        scope: Scope {
            open: usize::MAX,
            close: tokens.len(),
            ..Scope::default()
        },
        header_lo: 0,
        pending_attrs: Vec::new(),
    }];
    let mut i = 0;
    while i < tokens.len() {
        match tokens[i].kind {
            TokenKind::Punct(b'#')
                if matches!(
                    tokens.get(i + 1).map(|t| t.kind),
                    Some(TokenKind::Punct(b'['))
                ) || (matches!(
                    tokens.get(i + 1).map(|t| t.kind),
                    Some(TokenKind::Punct(b'!'))
                ) && matches!(
                    tokens.get(i + 2).map(|t| t.kind),
                    Some(TokenKind::Punct(b'['))
                )) =>
            {
                // `#[…]` outer attribute (recorded) or `#![…]` inner
                // attribute (skipped): find the matching `]`.
                let inner = matches!(tokens[i + 1].kind, TokenKind::Punct(b'!'));
                let open = if inner { i + 2 } else { i + 1 };
                let mut depth = 0usize;
                let mut j = open;
                while j < tokens.len() {
                    match tokens[j].kind {
                        TokenKind::Punct(b'[') => depth += 1,
                        TokenKind::Punct(b']') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if !inner && j > open {
                    let lo = tokens[open + 1].span.lo;
                    let hi = tokens[j - 1].span.hi.max(lo);
                    let rendered: String = text[lo..hi]
                        .split_whitespace()
                        .collect::<Vec<_>>()
                        .join(" ");
                    let frame = stack.last_mut().expect("root frame always present");
                    frame.pending_attrs.push(rendered);
                }
                i = j + 1;
                // An attribute does not end the item header; keep
                // header_lo pointing past it if nothing else started.
                let frame = stack.last_mut().expect("root frame always present");
                if frame.header_lo < i
                    && tokens[frame.header_lo..i.min(tokens.len())]
                        .iter()
                        .all(false_header)
                {
                    frame.header_lo = i;
                }
            }
            TokenKind::Punct(b'{') => {
                let frame = stack.last_mut().expect("root frame always present");
                let header_lo = frame.header_lo.min(i);
                let attrs = std::mem::take(&mut frame.pending_attrs);
                stack.push(Frame {
                    scope: Scope {
                        open: i,
                        close: tokens.len(),
                        header_lo,
                        attrs,
                        children: Vec::new(),
                    },
                    header_lo: i + 1,
                    pending_attrs: Vec::new(),
                });
                i += 1;
            }
            TokenKind::Punct(b'}') => {
                if stack.len() > 1 {
                    let mut frame = stack.pop().expect("len checked");
                    frame.scope.close = i;
                    let parent = stack.last_mut().expect("root frame remains");
                    parent.scope.children.push(frame.scope);
                    parent.header_lo = i + 1;
                    parent.pending_attrs.clear();
                }
                i += 1;
            }
            TokenKind::Punct(b';') => {
                let frame = stack.last_mut().expect("root frame always present");
                frame.header_lo = i + 1;
                frame.pending_attrs.clear();
                i += 1;
            }
            _ => i += 1,
        }
    }
    // Unbalanced files: fold any unclosed scopes into the root.
    while stack.len() > 1 {
        let frame = stack.pop().expect("len checked");
        let parent = stack.last_mut().expect("root frame remains");
        parent.scope.children.push(frame.scope);
    }
    stack.pop().expect("root frame").scope
}

/// Always false — placeholder predicate used to keep the attribute
/// header adjustment readable (no token invalidates a header).
fn false_header(_t: &Token) -> bool {
    false
}

/// Walks `scope` and all nested scopes depth-first, pre-order.
pub fn walk<'a>(scope: &'a Scope, visit: &mut impl FnMut(&'a Scope)) {
    visit(scope);
    for child in &scope.children {
        walk(child, visit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        let toks = lex(src);
        toks.iter()
            .map(|t| src[t.span.lo..t.span.hi].to_owned())
            .collect()
    }

    #[test]
    fn comments_and_strings_vanish_from_the_stream() {
        let toks = texts(
            "// x.unwrap()\n/* panic! /* nested */ still comment */\nlet s = \".expect(\"; y",
        );
        assert_eq!(toks, vec!["let", "s", "=", "\".expect(\"", ";", "y"]);
    }

    #[test]
    fn raw_strings_with_hashes_are_single_tokens() {
        let toks = texts(r####"let s = r#"embedded " quote and panic!"#; z"####);
        assert_eq!(toks[3], r###"r#"embedded " quote and panic!"#"###);
        assert_eq!(toks.last().map(String::as_str), Some("z"));
    }

    #[test]
    fn char_literals_and_lifetimes_disambiguate() {
        let toks = texts("let c = ','; fn f<'a>(x: &'a T) {} let d = 'a';");
        assert!(toks.contains(&"','".to_owned()));
        assert!(toks.contains(&"'a".to_owned())); // the lifetime
        assert!(toks.contains(&"'a'".to_owned())); // the literal
    }

    #[test]
    fn spans_carry_lines_and_columns() {
        let src = "fn f() {\n    x.unwrap();\n}\n";
        let toks = lex(src);
        let unwrap = toks
            .iter()
            .find(|t| &src[t.span.lo..t.span.hi] == "unwrap")
            .expect("lexed");
        assert_eq!(unwrap.span.line, 2);
        assert_eq!(unwrap.span.col, 7);
    }

    #[test]
    fn scope_tree_attaches_attrs_and_headers() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn t() {}\n}\nfn after() {}\n";
        let file = SourceFile::parse("c", "p.rs", &[], src.to_owned());
        assert_eq!(file.root.children.len(), 3);
        let tests_mod = &file.root.children[1];
        assert!(tests_mod.is_test_marked());
        // Every token of the test mod is masked; `after`'s are not.
        let after_idx = file
            .tokens
            .iter()
            .position(|t| &src[t.span.lo..t.span.hi] == "after")
            .expect("lexed");
        assert!(!file.in_test[after_idx]);
        let t_idx = file
            .tokens
            .iter()
            .position(|t| &src[t.span.lo..t.span.hi] == "t")
            .expect("lexed");
        assert!(file.in_test[t_idx]);
    }

    #[test]
    fn inner_attributes_are_not_item_attrs() {
        let src = "#![forbid(unsafe_code)]\nfn f() {}\n";
        let file = SourceFile::parse("c", "p.rs", &[], src.to_owned());
        assert_eq!(file.root.children.len(), 1);
        assert!(file.root.children[0].attrs.is_empty());
    }

    #[test]
    fn header_tokens_name_the_item() {
        let src = "impl RoundProtocol for Echo {\n  fn deliver(&mut self) {}\n}\n";
        let file = SourceFile::parse("c", "p.rs", &[], src.to_owned());
        let imp = &file.root.children[0];
        let header: Vec<&str> = (imp.header_lo..imp.open)
            .map(|i| file.tok_text(i))
            .collect();
        assert_eq!(header, vec!["impl", "RoundProtocol", "for", "Echo"]);
        let f = &imp.children[0];
        let fh: Vec<&str> = (f.header_lo..f.open).map(|i| file.tok_text(i)).collect();
        assert_eq!(fh, vec!["fn", "deliver", "(", "&", "mut", "self", ")"]);
    }
}
