//! Happens-before analysis of captured runs.
//!
//! Two trace dialects feed this module, dispatched on their header line:
//!
//! * **`rrfd-trace v1`** ([`rrfd_core::RunTrace`]) — the adversary-level
//!   record. The check here is the covering property of Section 1:
//!   in every completed round, `S(i,r) ∪ D(i,r) = S` — a process waits for
//!   each peer until it either hears from it or suspects it. A violating
//!   trace is itself the replay certificate: re-drive it through
//!   `rrfd_models::adversary::ReplayDetector` to reproduce the run.
//! * **`rrfd-events v1`** ([`rrfd_core::EventLog`]) — the runtime-level
//!   record emitted by an `EventSink` installed on `rrfd-runtime`'s
//!   threaded engine. Here we rebuild
//!   the happens-before partial order with vector clocks: one clock
//!   component per actor (the coordinator plus each process thread),
//!   program order within an actor, and the message edges
//!   `emit → gather` / `deliver → receive`, matched on `(process, round)`.
//!   Log order itself carries **no** ordering claim — the log is gathered
//!   through a lock, and treating its order as synchronization would mask
//!   exactly the races we are looking for.
//!
//! Over that partial order three defect classes are reported: unmatched
//! message endpoints (a gather or receive with no corresponding send),
//! cross-round reordering (a round-`r` message event after a later round's
//! on the same actor — the lock-step protocol forbids it), and data races
//! (two accesses to the same named location, at least one a write, with
//! vector-clock-incomparable event times).

use rrfd_core::{Actor, EventLog, IdSet, LineError, ProcessId, Round, RtEventKind, RunTrace};
use std::collections::HashMap;
use std::fmt;

/// What kind of defect a [`Finding`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// `S(i,r) ∪ D(i,r) ≠ S` in a completed round of a run trace.
    CoveringViolation,
    /// A gather/receive with no matching emit/deliver for its
    /// `(process, round)` key.
    UnmatchedMessage,
    /// A message event for an earlier round after a later round's on the
    /// same actor.
    CrossRoundReorder,
    /// Two accesses to one location, at least one a write, unordered by
    /// happens-before.
    DataRace,
}

impl fmt::Display for FindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FindingKind::CoveringViolation => f.write_str("covering-violation"),
            FindingKind::UnmatchedMessage => f.write_str("unmatched-message"),
            FindingKind::CrossRoundReorder => f.write_str("cross-round-reorder"),
            FindingKind::DataRace => f.write_str("data-race"),
        }
    }
}

/// One reported defect.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The defect class.
    pub kind: FindingKind,
    /// Human-readable description naming the actors, rounds and locations
    /// involved.
    pub detail: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

/// Analyzes serialized trace text, dispatching on the header line.
///
/// # Errors
///
/// Returns a [`LineError`] when the text parses under neither trace
/// dialect.
pub fn analyze_text(text: &str) -> Result<Vec<Finding>, LineError> {
    let header = text.lines().next().unwrap_or_default().trim();
    match header {
        "rrfd-trace v1" => Ok(analyze_trace(&text.parse::<RunTrace>()?)),
        "rrfd-events v1" => Ok(analyze_events(&text.parse::<EventLog>()?)),
        other => Err(LineError::new(
            1,
            format!(
                "unrecognised trace header {other:?} \
                 (expected \"rrfd-trace v1\" or \"rrfd-events v1\")"
            ),
        )),
    }
}

/// Checks the covering property over a run trace: in every completed round
/// and for every process, `S(i,r) ∪ D(i,r) = S`.
///
/// The final round of a trace that ended in a violation records only the
/// adversary's `D` sets (no delivery happened), so it is skipped.
#[must_use]
pub fn analyze_trace(trace: &RunTrace) -> Vec<Finding> {
    let n = trace.system_size();
    let universe = IdSet::universe(n);
    let mut findings = Vec::new();
    for (round_idx, round) in trace.rounds().iter().enumerate() {
        if round.heard.is_empty() {
            continue; // violating round: no delivery was performed
        }
        for (i, heard) in round.heard.iter().enumerate() {
            let suspected = round.faults.of(ProcessId::new(i));
            let covered = *heard | suspected;
            if covered != universe {
                let missing = universe - covered;
                findings.push(Finding {
                    kind: FindingKind::CoveringViolation,
                    detail: format!(
                        "round {}: S({i},r) ∪ D({i},r) misses {{{}}} — p{i} proceeded \
                         without hearing from or suspecting them",
                        round_idx + 1,
                        missing
                            .iter()
                            .map(|p| p.index().to_string())
                            .collect::<Vec<_>>()
                            .join(","),
                    ),
                });
            }
        }
    }
    findings
}

/// A vector clock over `k` actors.
#[derive(Debug, Clone, PartialEq, Eq)]
struct VClock(Vec<u64>);

impl VClock {
    fn zero(k: usize) -> Self {
        VClock(vec![0; k])
    }

    fn tick(&mut self, actor: usize) {
        self.0[actor] += 1;
    }

    fn join(&mut self, other: &VClock) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// `self ≤ other` pointwise.
    fn le(&self, other: &VClock) -> bool {
        self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }

    fn concurrent_with(&self, other: &VClock) -> bool {
        !self.le(other) && !other.le(self)
    }
}

/// One recorded access for the race check.
struct AccessRecord {
    actor: Actor,
    write: bool,
    clock: VClock,
}

fn actor_index(actor: Actor) -> usize {
    match actor {
        Actor::Coordinator => 0,
        Actor::Process(p) => p.index() + 1,
    }
}

/// Rebuilds happens-before over an event log with vector clocks and
/// reports unmatched messages, cross-round reordering, and data races.
#[must_use]
pub fn analyze_events(log: &EventLog) -> Vec<Finding> {
    let n = log.system_size().get();
    let actors = n + 1; // coordinator + processes
    let mut clocks: Vec<VClock> = (0..actors).map(|_| VClock::zero(actors)).collect();
    // Send-side clocks, keyed by (process, round).
    let mut emits: HashMap<(ProcessId, Round), VClock> = HashMap::new();
    let mut delivers: HashMap<(ProcessId, Round), VClock> = HashMap::new();
    // Monotonicity state for cross-round checks: the highest round each
    // actor has handled, per direction.
    let mut gathered_round: Option<Round> = None;
    let mut received_round: Vec<Option<Round>> = vec![None; n];
    // All accesses seen so far, per location.
    let mut accesses: HashMap<String, Vec<AccessRecord>> = HashMap::new();
    let mut findings = Vec::new();

    for event in log.events() {
        let me = actor_index(event.actor);
        clocks[me].tick(me);
        match &event.kind {
            RtEventKind::Emit { round } => {
                emits.insert((expect_process(event.actor), *round), clocks[me].clone());
            }
            RtEventKind::Gather { from, round } => {
                match emits.get(&(*from, *round)) {
                    Some(sent) => {
                        let sent = sent.clone();
                        clocks[me].join(&sent);
                    }
                    None => findings.push(Finding {
                        kind: FindingKind::UnmatchedMessage,
                        detail: format!(
                            "coordinator gathered p{} round {} with no recorded emit",
                            from.index(),
                            round.get()
                        ),
                    }),
                }
                if let Some(prev) = gathered_round {
                    if *round < prev {
                        findings.push(Finding {
                            kind: FindingKind::CrossRoundReorder,
                            detail: format!(
                                "coordinator gathered round {} after round {} — \
                                 lock-step order broken",
                                round.get(),
                                prev.get()
                            ),
                        });
                    }
                }
                gathered_round = Some(gathered_round.map_or(*round, |p| p.max(*round)));
            }
            RtEventKind::Deliver { to, round } => {
                delivers.insert((*to, *round), clocks[me].clone());
            }
            RtEventKind::Receive { round } => {
                let p = expect_process(event.actor);
                match delivers.get(&(p, *round)) {
                    Some(sent) => {
                        let sent = sent.clone();
                        clocks[me].join(&sent);
                    }
                    None => findings.push(Finding {
                        kind: FindingKind::UnmatchedMessage,
                        detail: format!(
                            "p{} received round {} with no recorded deliver",
                            p.index(),
                            round.get()
                        ),
                    }),
                }
                let prev = &mut received_round[p.index()];
                if let Some(prev_round) = *prev {
                    if *round <= prev_round {
                        findings.push(Finding {
                            kind: FindingKind::CrossRoundReorder,
                            detail: format!(
                                "p{} received round {} after round {} — \
                                 lock-step order broken",
                                p.index(),
                                round.get(),
                                prev_round.get()
                            ),
                        });
                    }
                }
                *prev = Some(prev.map_or(*round, |q| q.max(*round)));
            }
            RtEventKind::Detect { .. } | RtEventKind::Decide { .. } => {}
            RtEventKind::Access { loc, write } => {
                let record = AccessRecord {
                    actor: event.actor,
                    write: *write,
                    clock: clocks[me].clone(),
                };
                let prior = accesses.entry(loc.clone()).or_default();
                for earlier in prior.iter() {
                    if (earlier.write || record.write)
                        && earlier.clock.concurrent_with(&record.clock)
                    {
                        findings.push(Finding {
                            kind: FindingKind::DataRace,
                            detail: format!(
                                "location `{loc}`: {} by {} and {} by {} are \
                                 concurrent (no happens-before order)",
                                rw(earlier.write),
                                earlier.actor,
                                rw(record.write),
                                record.actor,
                            ),
                        });
                    }
                }
                prior.push(record);
            }
        }
    }
    findings
}

fn rw(write: bool) -> &'static str {
    if write {
        "write"
    } else {
        "read"
    }
}

fn expect_process(actor: Actor) -> ProcessId {
    match actor {
        Actor::Process(p) => p,
        // The runtime only records emit/receive on process threads; a
        // hand-written log can violate that, in which case attributing the
        // event to p0's slot keeps the analysis total without panicking.
        Actor::Coordinator => ProcessId::new(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrfd_core::{RtEvent, SystemSize};

    fn log(n: usize, body: &str) -> EventLog {
        format!("rrfd-events v1\nn {n}\n{body}").parse().unwrap()
    }

    #[test]
    fn healthy_round_has_no_findings() {
        let l = log(
            2,
            "p0 emit r=1\n\
             p1 emit r=1\n\
             c gather from=0 r=1\n\
             c gather from=1 r=1\n\
             c detect r=1\n\
             c access loc=pattern rw=w\n\
             c deliver to=0 r=1\n\
             c deliver to=1 r=1\n\
             p0 receive r=1\n\
             p1 receive r=1\n",
        );
        assert!(analyze_events(&l).is_empty());
    }

    #[test]
    fn log_order_is_not_synchronization() {
        // The emit lands *after* the gather in log order; the match on
        // (process, round) still provides the edge, so no finding — and
        // conversely the pair below shows a real race is still caught.
        let l = log(
            2,
            "c gather from=0 r=1\n\
             p0 emit r=1\n",
        );
        let findings = analyze_events(&l);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].kind, FindingKind::UnmatchedMessage);
    }

    #[test]
    fn unsynchronized_shared_access_is_a_race() {
        // p1 writes the coordinator's pattern store with no message edge
        // ordering it against the coordinator's own write.
        let l = log(
            2,
            "c access loc=pattern rw=w\n\
             p1 access loc=pattern rw=w\n",
        );
        let findings = analyze_events(&l);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].kind, FindingKind::DataRace);
        assert!(findings[0].detail.contains("pattern"));
    }

    #[test]
    fn message_edges_order_accesses() {
        // The same two accesses, but a deliver→receive edge puts the
        // coordinator's write before p1's: no race.
        let l = log(
            2,
            "c access loc=pattern rw=w\n\
             c deliver to=1 r=1\n\
             p1 receive r=1\n\
             p1 access loc=pattern rw=w\n",
        );
        assert!(analyze_events(&l).is_empty());
    }

    #[test]
    fn concurrent_reads_do_not_race() {
        let l = log(
            2,
            "c access loc=decisions rw=r\n\
             p1 access loc=decisions rw=r\n",
        );
        assert!(analyze_events(&l).is_empty());
    }

    #[test]
    fn cross_round_reordering_is_flagged() {
        let l = log(
            2,
            "p0 emit r=1\n\
             p0 emit r=2\n\
             c gather from=0 r=2\n\
             c gather from=0 r=1\n",
        );
        let findings = analyze_events(&l);
        assert!(
            findings
                .iter()
                .any(|f| f.kind == FindingKind::CrossRoundReorder),
            "{findings:?}"
        );
    }

    #[test]
    fn covering_violation_in_a_run_trace_is_flagged() {
        // n = 3; p0 hears only itself and p1 while suspecting nobody:
        // p2 is neither heard nor suspected.
        let text = "rrfd-trace v1\n\
                    n 3\n\
                    round 1\n\
                    d - - -\n\
                    s 0,1 0,1,2 0,1,2\n\
                    outcome limit max=1\n";
        let findings = analyze_text(text).unwrap();
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].kind, FindingKind::CoveringViolation);
        assert!(findings[0].detail.contains("p0"), "{}", findings[0].detail);
    }

    #[test]
    fn clean_run_trace_passes() {
        let text = "rrfd-trace v1\n\
                    n 2\n\
                    round 1\n\
                    d 1 -\n\
                    s 0 0,1\n\
                    outcome limit max=1\n";
        assert!(analyze_text(text).unwrap().is_empty());
    }

    #[test]
    fn unknown_headers_are_rejected() {
        assert!(analyze_text("rrfd-mystery v7\n").is_err());
        assert!(analyze_text("").is_err());
    }

    #[test]
    fn events_from_a_real_instrumented_run_are_clean() {
        use rrfd_core::{AnyPattern, Control, Delivery, RoundProtocol};
        use rrfd_models::adversary::NoFailures;
        use rrfd_runtime::{EventSink, ThreadedEngine};

        struct TwoRounds;
        impl RoundProtocol for TwoRounds {
            type Msg = u8;
            type Output = u8;
            fn emit(&mut self, _r: Round) -> u8 {
                1
            }
            fn deliver(&mut self, d: Delivery<'_, u8>) -> Control<u8> {
                if d.round.get() >= 2 {
                    Control::Decide(0)
                } else {
                    Control::Continue
                }
            }
        }

        let n = SystemSize::new(3).unwrap();
        let sink = EventSink::new(n);
        ThreadedEngine::new(n)
            .event_sink(sink.clone())
            .run(
                vec![TwoRounds, TwoRounds, TwoRounds],
                &mut NoFailures::new(n),
                &AnyPattern::new(n),
            )
            .unwrap();
        let log = sink.snapshot();
        let findings = analyze_events(&log);
        assert!(findings.is_empty(), "{findings:?}");
        // And the serialized form round-trips through the dispatcher.
        let via_text = analyze_text(&log.to_string()).unwrap();
        assert!(via_text.is_empty());
        let _ = RtEvent {
            actor: Actor::Coordinator,
            kind: RtEventKind::Detect {
                round: Round::new(1),
            },
        };
    }
}
