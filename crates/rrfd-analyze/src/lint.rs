//! A dependency-free lint pass over the workspace's library code.
//!
//! Five lints, each encoding a project invariant the compiler cannot:
//!
//! * **`panic-family`** — `.unwrap()`, `.expect(` and `panic!` in
//!   non-test library code. PR 1 introduced typed error enums
//!   (`EngineError`, `ThreadedError`, `ExploreError`); new code should
//!   propagate them rather than abort.
//! * **`wall-clock`** — `Instant::now` / `SystemTime::now` inside the
//!   deterministic crates (`rrfd-core`, `rrfd-models`, `rrfd-sims`,
//!   `rrfd-protocols`). Determinism is what makes traces replayable;
//!   reading the wall clock breaks it silently.
//! * **`direct-index`** — `received[` in protocol code: indexing the
//!   delivery array directly bypasses the suspected-process `Option`
//!   check that the covering property hinges on.
//! * **`obs`** — `Instant::now` / `SystemTime::now` inside the
//!   instrumented crates (`rrfd-runtime`, `rrfd-obs`). Timing there must
//!   flow through the pluggable `rrfd_obs::Clock` abstraction so runs
//!   stay reproducible under a logical clock; the one sanctioned reader
//!   (`WallClock` itself) carries an allowlist budget.
//! * **`msg-clone`** — `msg.clone()`, or `messages[` and `.clone()` on
//!   one line, inside the message-plane crates (`rrfd-core`,
//!   `rrfd-runtime`, `rrfd-sims`). The zero-copy plane shares one
//!   emission per sender (`&'a [Option<M>]` tables, `Arc` channels);
//!   cloning a payload out of a delivery loop reintroduces the `O(n²)`
//!   copy volume the plane exists to eliminate. The sanctioned deep copy
//!   (`ClonePlaneEngine`, the ablation baseline) lives in `rrfd-bench`,
//!   outside the fence.
//!
//! The scanner is a line-oriented token matcher, not a parser: it strips
//! block/line comments and string literals, and skips `#[cfg(test)]`
//! modules by brace counting. `src/bin/` trees are excluded (CLIs may
//! abort). Findings are reconciled against an allowlist file whose
//! entries name a budget per `(lint, file)`:
//!
//! ```text
//! panic-family crates/rrfd-core/src/task.rs 2  # consensus spec violations are test-facing asserts
//! ```
//!
//! More findings than budgeted → failure. Fewer → a ratchet notice
//! (tighten the budget). Entries matching nothing → an unused notice.
//! The allowlist can therefore only shrink over time.

use rrfd_core::LineError;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Which lint fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintKind {
    /// `.unwrap()` / `.expect(` / `panic!` in library code.
    PanicFamily,
    /// `Instant::now` / `SystemTime::now` in a deterministic crate.
    WallClock,
    /// `received[` — direct indexing past the suspicion check.
    DirectIndex,
    /// `Instant::now` / `SystemTime::now` in an instrumented crate,
    /// bypassing the `rrfd_obs::Clock` abstraction.
    ObsClock,
    /// `msg.clone()` (or `messages[` + `.clone()` on one line) in a
    /// message-plane crate — a payload deep copy in a delivery loop.
    MsgClone,
}

impl LintKind {
    /// The name used in reports and allowlist files.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LintKind::PanicFamily => "panic-family",
            LintKind::WallClock => "wall-clock",
            LintKind::DirectIndex => "direct-index",
            LintKind::ObsClock => "obs",
            LintKind::MsgClone => "msg-clone",
        }
    }

    fn parse(token: &str) -> Option<Self> {
        match token {
            "panic-family" => Some(LintKind::PanicFamily),
            "wall-clock" => Some(LintKind::WallClock),
            "direct-index" => Some(LintKind::DirectIndex),
            "obs" => Some(LintKind::ObsClock),
            "msg-clone" => Some(LintKind::MsgClone),
            _ => None,
        }
    }
}

impl fmt::Display for LintKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One raw finding: a lint token in non-test library code.
#[derive(Debug, Clone)]
pub struct LintFinding {
    /// Which lint fired.
    pub kind: LintKind,
    /// Path relative to the workspace root, `/`-separated.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.kind, self.excerpt
        )
    }
}

/// One allowlist entry: a finding budget for `(lint, file)`.
#[derive(Debug, Clone)]
pub struct Allowance {
    /// The budgeted lint.
    pub kind: LintKind,
    /// Path relative to the workspace root.
    pub path: String,
    /// How many findings are tolerated.
    pub budget: usize,
}

/// Parses an allowlist file: one `<lint> <path> <count>` entry per line,
/// `#` starts a comment, blank lines ignored.
///
/// # Errors
///
/// Returns a [`LineError`] naming the first malformed line.
pub fn parse_allowlist(text: &str) -> Result<Vec<Allowance>, LineError> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or_default().trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let entry = (|| {
            let kind = LintKind::parse(tokens.next()?)?;
            let path = tokens.next()?.to_owned();
            let budget: usize = tokens.next()?.parse().ok()?;
            if tokens.next().is_some() {
                return None;
            }
            Some(Allowance { kind, path, budget })
        })();
        match entry {
            Some(a) => entries.push(a),
            None => {
                return Err(LineError::new(
                    line_no,
                    format!("expected `<lint> <path> <count>`, got {line:?}"),
                ))
            }
        }
    }
    Ok(entries)
}

/// The outcome of reconciling findings against an allowlist.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Findings exceeding their budget (or with no budget at all). Any
    /// entry here means the pass fails.
    pub violations: Vec<String>,
    /// Non-fatal observations: under-used or unused budgets to ratchet.
    pub notices: Vec<String>,
}

impl LintReport {
    /// `true` when the pass succeeded (notices are allowed).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Reconciles raw findings against the allowlist budgets.
#[must_use]
pub fn reconcile(findings: &[LintFinding], allowances: &[Allowance]) -> LintReport {
    let mut report = LintReport::default();
    let budget_of = |kind: LintKind, path: &str| {
        allowances
            .iter()
            .find(|a| a.kind == kind && a.path == path)
            .map(|a| a.budget)
    };
    // Group findings by (kind, path), preserving first-seen order.
    let mut groups: Vec<(LintKind, &str, Vec<&LintFinding>)> = Vec::new();
    for finding in findings {
        match groups
            .iter_mut()
            .find(|(k, p, _)| *k == finding.kind && *p == finding.path)
        {
            Some((_, _, list)) => list.push(finding),
            None => groups.push((finding.kind, &finding.path, vec![finding])),
        }
    }
    for (kind, path, list) in &groups {
        match budget_of(*kind, path) {
            None => {
                for f in list {
                    report.violations.push(f.to_string());
                }
            }
            Some(budget) if list.len() > budget => {
                report.violations.push(format!(
                    "{path}: {} `{kind}` findings exceed the allowlisted budget of {budget}:",
                    list.len()
                ));
                for f in list {
                    report.violations.push(format!("  {f}"));
                }
            }
            Some(budget) if list.len() < budget => {
                report.notices.push(format!(
                    "{path}: only {} `{kind}` findings against a budget of {budget} — \
                     ratchet the allowlist down",
                    list.len()
                ));
            }
            Some(_) => {}
        }
    }
    for a in allowances {
        let used = groups.iter().any(|(k, p, _)| *k == a.kind && *p == a.path);
        if !used {
            report.notices.push(format!(
                "unused allowlist entry: {} {} {}",
                a.kind, a.path, a.budget
            ));
        }
    }
    report
}

/// Scans every `crates/*/src` tree under `root`, excluding `src/bin/`.
///
/// # Errors
///
/// Propagates I/O errors from directory walking and file reads.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<LintFinding>> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    for entry in std::fs::read_dir(&crates_dir)? {
        let path = entry?.path();
        if path.join("src").is_dir() {
            crate_dirs.push(path);
        }
    }
    crate_dirs.sort();
    let mut findings = Vec::new();
    for crate_dir in crate_dirs {
        let crate_name = crate_dir
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let mut files = Vec::new();
        collect_rs_files(&crate_dir.join("src"), &mut files)?;
        files.sort();
        for file in files {
            let text = std::fs::read_to_string(&file)?;
            let rel = relative_display(root, &file);
            scan_file(&crate_name, &rel, &text, &mut findings);
        }
    }
    Ok(findings)
}

fn relative_display(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            // CLIs under src/bin/ may legitimately abort on bad input.
            if path.file_name().is_some_and(|n| n == "bin") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Crates whose code must stay deterministic (replayable traces).
const DETERMINISTIC_CRATES: &[&str] = &["rrfd-core", "rrfd-models", "rrfd-sims", "rrfd-protocols"];

/// Crates whose timing must flow through `rrfd_obs::Clock` rather than
/// reading the wall clock directly — otherwise metric snapshots stop
/// being reproducible under the logical clock.
const INSTRUMENTED_CRATES: &[&str] = &["rrfd-runtime", "rrfd-obs", "rrfd-engine-pool"];

/// Crates carrying the zero-copy message plane: deliveries borrow a
/// shared emission table (or hold `Arc`s), so payload clones in delivery
/// loops are regressions, not style. The batch pool is fenced too: its
/// whole slab/buffer lifecycle exists to avoid per-instance copies.
const MESSAGE_PLANE_CRATES: &[&str] =
    &["rrfd-core", "rrfd-runtime", "rrfd-sims", "rrfd-engine-pool"];

/// Scans one file's text, appending findings. Exposed for testing the
/// scanner on synthetic sources.
pub fn scan_file(crate_name: &str, rel_path: &str, text: &str, out: &mut Vec<LintFinding>) {
    let wall_clock_applies = DETERMINISTIC_CRATES.contains(&crate_name);
    let obs_clock_applies = INSTRUMENTED_CRATES.contains(&crate_name);
    let msg_clone_applies = MESSAGE_PLANE_CRATES.contains(&crate_name);
    let mut strip = StripState::default();
    // Once a `#[cfg(test)]` attribute is seen, skip from its first `{`
    // until the brace depth returns to zero.
    let mut pending_test_attr = false;
    let mut test_depth = 0usize;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let code = strip_noncode(raw, &mut strip);
        if code.contains("#[cfg(test)]") {
            pending_test_attr = true;
        }
        if pending_test_attr || test_depth > 0 {
            let opens = code.matches('{').count();
            let closes = code.matches('}').count();
            if pending_test_attr && opens > 0 {
                pending_test_attr = false;
                test_depth = opens;
                test_depth = test_depth.saturating_sub(closes);
            } else if test_depth > 0 {
                test_depth += opens;
                test_depth = test_depth.saturating_sub(closes);
            }
            continue;
        }
        let mut hit = |kind: LintKind| {
            out.push(LintFinding {
                kind,
                path: rel_path.to_owned(),
                line: line_no,
                excerpt: raw.trim().to_owned(),
            });
        };
        if code.contains(".unwrap()") || code.contains(".expect(") || code.contains("panic!") {
            hit(LintKind::PanicFamily);
        }
        let reads_clock = code.contains("Instant::now") || code.contains("SystemTime::now");
        if wall_clock_applies && reads_clock {
            hit(LintKind::WallClock);
        }
        if obs_clock_applies && reads_clock {
            hit(LintKind::ObsClock);
        }
        if code.contains("received[") {
            hit(LintKind::DirectIndex);
        }
        if msg_clone_applies
            && (code.contains("msg.clone()")
                || (code.contains("messages[") && code.contains(".clone()")))
        {
            hit(LintKind::MsgClone);
        }
    }
}

/// Scanner state carried across physical lines: block-comment nesting and
/// whether a string literal (possibly multi-line, with `\` continuations)
/// is still open.
#[derive(Default)]
struct StripState {
    block_depth: usize,
    in_string: bool,
}

/// Removes block comments, line comments, string and char literals from a
/// line, tracking comment nesting and open strings across lines. What
/// remains is the code the token matcher may inspect.
fn strip_noncode(line: &str, state: &mut StripState) -> String {
    let mut out = String::with_capacity(line.len());
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if state.in_string {
            // Inside a string literal: skip to the unescaped closing
            // quote, which may be on a later line. (Raw strings with
            // embedded quotes are not handled; the workspace does not use
            // them on lint-relevant lines.)
            match bytes[i] {
                b'\\' => i += 2,
                b'"' => {
                    state.in_string = false;
                    i += 1;
                }
                _ => i += 1,
            }
            continue;
        }
        if state.block_depth > 0 {
            if bytes[i..].starts_with(b"*/") {
                state.block_depth -= 1;
                i += 2;
            } else if bytes[i..].starts_with(b"/*") {
                state.block_depth += 1;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        if bytes[i..].starts_with(b"//") {
            break; // line comment: rest of the line is not code
        }
        if bytes[i..].starts_with(b"/*") {
            state.block_depth += 1;
            i += 2;
            continue;
        }
        match bytes[i] {
            b'"' => {
                state.in_string = true;
                i += 1;
            }
            b'\'' => {
                // Char literal ('x', '\n', '\'') vs lifetime ('a in `&'a`).
                // A literal closes with a quote within a few bytes.
                let rest = &bytes[i + 1..];
                let close = if rest.first() == Some(&b'\\') {
                    rest.iter().skip(1).position(|&b| b == b'\'').map(|p| p + 1)
                } else {
                    (rest.get(1) == Some(&b'\'')).then_some(1)
                };
                match close {
                    Some(offset) => i += offset + 2, // skip the whole literal
                    None => {
                        out.push('\''); // lifetime: keep and move on
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b as char);
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(text: &str) -> Vec<LintFinding> {
        let mut out = Vec::new();
        scan_file("rrfd-core", "crates/rrfd-core/src/x.rs", text, &mut out);
        out
    }

    #[test]
    fn flags_the_panic_family() {
        let found = scan(
            "fn f() {\n    let x = y.unwrap();\n    z.expect(\"boom\");\n    panic!(\"no\");\n}\n",
        );
        assert_eq!(found.len(), 3);
        assert!(found.iter().all(|f| f.kind == LintKind::PanicFamily));
        assert_eq!(found[0].line, 2);
    }

    #[test]
    fn comments_and_strings_are_not_code() {
        let found = scan(
            "// a.unwrap() in a comment\n\
             /* panic!(\"nope\") */\n\
             let s = \".unwrap()\";\n\
             /// docs may say panic! freely\n",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn multiline_block_comments_are_skipped() {
        let found = scan("/*\n x.unwrap()\n panic!()\n*/\nfn ok() {}\n");
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn test_modules_are_exempt() {
        let found = scan(
            "fn lib() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn t() { x.unwrap(); }\n\
             }\n\
             fn after() { y.unwrap(); }\n",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].line, 6);
    }

    #[test]
    fn multiline_strings_stay_strings() {
        // A string continued across lines must not leak its contents —
        // including a `#[cfg(test)]` inside it — into the code channel.
        let found = scan(
            "let s = \"first line \\\n     #[cfg(test)] \\\n     .unwrap() end\";\nx.unwrap();\n",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].line, 4);
    }

    #[test]
    fn char_literals_do_not_eat_the_line() {
        // The ',' literal must not open a "string" that hides the unwrap.
        let found = scan("let c = ','; x.unwrap();\n");
        assert_eq!(found.len(), 1);
        // And lifetimes must not either.
        let found = scan("fn f<'a>(x: &'a T) { x.unwrap(); }\n");
        assert_eq!(found.len(), 1);
    }

    #[test]
    fn wall_clock_only_fires_in_deterministic_crates() {
        let mut out = Vec::new();
        scan_file(
            "rrfd-sims",
            "crates/rrfd-sims/src/x.rs",
            "Instant::now()\n",
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, LintKind::WallClock);
        let mut out = Vec::new();
        scan_file(
            "rrfd-protocols",
            "crates/rrfd-protocols/src/x.rs",
            "SystemTime::now()\n",
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, LintKind::WallClock);
    }

    #[test]
    fn obs_clock_only_fires_in_instrumented_crates() {
        // Runtime and obs code must route time through `rrfd_obs::Clock`.
        let mut out = Vec::new();
        scan_file(
            "rrfd-runtime",
            "crates/rrfd-runtime/src/x.rs",
            "Instant::now()\n",
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, LintKind::ObsClock);
        let mut out = Vec::new();
        scan_file(
            "rrfd-obs",
            "crates/rrfd-obs/src/x.rs",
            "SystemTime::now()\n",
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, LintKind::ObsClock);
        // Crates outside both lists stay unrestricted.
        let mut out = Vec::new();
        scan_file(
            "rrfd-bench",
            "crates/rrfd-bench/src/x.rs",
            "Instant::now()\n",
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn direct_indexing_is_flagged() {
        let found = scan("let m = d.received[j];\n");
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].kind, LintKind::DirectIndex);
    }

    #[test]
    fn msg_clones_only_fire_in_message_plane_crates() {
        // Both trigger shapes, inside the fence (scan() targets rrfd-core).
        let found = scan("out.push(msg.clone());\n");
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].kind, LintKind::MsgClone);
        let found = scan("let m = messages[j].clone();\n");
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].kind, LintKind::MsgClone);
        // Reading the table without cloning is the whole point — clean.
        let found = scan("let m = &messages[j];\n");
        assert!(found.is_empty(), "{found:?}");
        // Outside the fence (bench crate hosts the sanctioned clone plane).
        let mut out = Vec::new();
        scan_file(
            "rrfd-bench",
            "crates/rrfd-bench/src/x.rs",
            "out.push(msg.clone());\n",
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn allowlist_parses_and_rejects_garbage() {
        let entries = parse_allowlist(
            "# header comment\n\
             \n\
             panic-family crates/rrfd-core/src/task.rs 2  # asserts\n\
             wall-clock crates/rrfd-sims/src/x.rs 1\n",
        )
        .unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].budget, 2);
        let err = parse_allowlist("panic-family only-two\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(parse_allowlist("mystery-lint a/b.rs 1\n").is_err());
    }

    fn finding(kind: LintKind, path: &str) -> LintFinding {
        LintFinding {
            kind,
            path: path.to_owned(),
            line: 1,
            excerpt: "x".to_owned(),
        }
    }

    #[test]
    fn reconcile_enforces_budgets() {
        let f = vec![
            finding(LintKind::PanicFamily, "a.rs"),
            finding(LintKind::PanicFamily, "a.rs"),
        ];
        // No budget: both are violations.
        assert_eq!(reconcile(&f, &[]).violations.len(), 2);
        // Exact budget: clean, no notices.
        let exact = reconcile(
            &f,
            &[Allowance {
                kind: LintKind::PanicFamily,
                path: "a.rs".to_owned(),
                budget: 2,
            }],
        );
        assert!(exact.is_clean() && exact.notices.is_empty(), "{exact:?}");
        // Over budget: fails, listing the findings.
        let over = reconcile(
            &f,
            &[Allowance {
                kind: LintKind::PanicFamily,
                path: "a.rs".to_owned(),
                budget: 1,
            }],
        );
        assert!(!over.is_clean());
        // Under budget: clean but nags to ratchet.
        let under = reconcile(
            &f,
            &[Allowance {
                kind: LintKind::PanicFamily,
                path: "a.rs".to_owned(),
                budget: 5,
            }],
        );
        assert!(under.is_clean());
        assert_eq!(under.notices.len(), 1);
        // Unused entries surface as notices.
        let unused = reconcile(
            &[],
            &[Allowance {
                kind: LintKind::WallClock,
                path: "b.rs".to_owned(),
                budget: 1,
            }],
        );
        assert!(unused.is_clean());
        assert!(unused.notices[0].contains("unused"));
    }
}
