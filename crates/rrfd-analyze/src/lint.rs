//! The workspace lint pass: orchestration of the syntax-aware pass
//! framework (`syntax` + `passes` + `workspace`) plus the
//! span-fingerprinted allowlist that ratchets findings toward zero.
//!
//! Seven passes run over lexed source (see [`crate::passes::registry`]):
//! the five ported token lints (`panic-family`, `wall-clock`, `obs`,
//! `direct-index`, `msg-clone`) and the two flagship syntax passes
//! (`round-closure`, `lock-order`). Which pass applies to which crate
//! is governed by `Cargo.toml` fence metadata, not code (see
//! [`crate::workspace`]).
//!
//! ## The allowlist (`lint.allow`)
//!
//! One entry per line, `#` comments:
//!
//! ```text
//! round-closure crates/rrfd-sims/src/digest.rs fp:90f2a6f41f7b3a21  # keys probed, never iterated
//! panic-family  crates/rrfd-core/src/task.rs   2                    # legacy budget (count)
//! ```
//!
//! A **fingerprinted** entry pins exactly one finding by its span
//! fingerprint — a hash of the pass, path, and normalized text of the
//! flagged line (plus an occurrence index), so it survives unrelated
//! line insertions above it and *expires* the moment the flagged code
//! changes. A **legacy budget** entry tolerates up to N otherwise
//! unmatched findings of that pass in that file; budgets are kept for
//! migration and tests, the committed `lint.allow` is all-fingerprint.
//!
//! Findings matching neither kind of entry are violations. Entries
//! matching nothing are "unused" notices — and hard failures under
//! `--strict` (the CI default), so the allowlist can only shrink.

use crate::passes::{self, Finding};
use crate::workspace;
use rrfd_core::LineError;
use std::io;
use std::path::Path;

/// What an allowlist entry tolerates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllowSpec {
    /// Up to N findings of the pass in the file (legacy, line-count
    /// style).
    Budget(usize),
    /// Exactly the finding with this `fp:…` span fingerprint.
    Fingerprint(String),
}

/// One allowlist entry.
#[derive(Debug, Clone)]
pub struct Allowance {
    /// The pass name (validated against the registry).
    pub pass: String,
    /// Workspace-relative path.
    pub path: String,
    /// What the entry tolerates.
    pub spec: AllowSpec,
}

/// Parses an allowlist: one `<pass> <path> <fp:…|count>` entry per
/// line, `#` comments, blank lines ignored. Pass names must be
/// registered passes.
///
/// # Errors
///
/// Returns a [`LineError`] naming the first malformed line.
pub fn parse_allowlist(text: &str) -> Result<Vec<Allowance>, LineError> {
    let known = passes::pass_names();
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or_default().trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let entry = (|| {
            let pass = tokens.next()?;
            if !known.contains(&pass) {
                return None;
            }
            let path = tokens.next()?.to_owned();
            let spec = tokens.next()?;
            let spec = if let Some(hex) = spec.strip_prefix("fp:") {
                if hex.len() != 16 || !hex.chars().all(|c| c.is_ascii_hexdigit()) {
                    return None;
                }
                AllowSpec::Fingerprint(spec.to_owned())
            } else {
                AllowSpec::Budget(spec.parse().ok()?)
            };
            if tokens.next().is_some() {
                return None;
            }
            Some(Allowance {
                pass: pass.to_owned(),
                path,
                spec,
            })
        })();
        match entry {
            Some(a) => entries.push(a),
            None => {
                return Err(LineError::new(
                    line_no,
                    format!("expected `<pass> <path> <fp:16-hex|count>`, got {line:?}"),
                ))
            }
        }
    }
    Ok(entries)
}

/// The outcome of reconciling findings against an allowlist.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Findings exceeding their budget, or matched by no entry. Any
    /// entry here means the pass fails.
    pub violations: Vec<String>,
    /// Stale-allowlist observations: unused entries and under-used
    /// budgets. Failures under `--strict`.
    pub notices: Vec<String>,
}

impl LintReport {
    /// `true` when the pass succeeded. Under `strict`, notices fail
    /// too — an allowlist entry matching nothing is debt bookkeeping
    /// that must be pruned.
    #[must_use]
    pub fn is_clean(&self, strict: bool) -> bool {
        self.violations.is_empty() && (!strict || self.notices.is_empty())
    }
}

/// Reconciles findings against the allowlist: fingerprint entries pin
/// individual findings, budget entries cap the unmatched remainder.
#[must_use]
pub fn reconcile(findings: &[Finding], allowances: &[Allowance]) -> LintReport {
    let mut report = LintReport::default();
    let mut fp_used = vec![false; allowances.len()];
    // Group findings by (pass, path), preserving first-seen order.
    let mut groups: Vec<(&str, &str, Vec<&Finding>)> = Vec::new();
    for finding in findings {
        match groups
            .iter_mut()
            .find(|(k, p, _)| *k == finding.pass && *p == finding.path)
        {
            Some((_, _, list)) => list.push(finding),
            None => groups.push((finding.pass, &finding.path, vec![finding])),
        }
    }
    for (pass, path, list) in &groups {
        // Partition: fingerprint-pinned findings are allowed.
        let mut residual: Vec<&Finding> = Vec::new();
        for f in list {
            let pinned = allowances.iter().enumerate().find(|(i, a)| {
                !fp_used[*i]
                    && a.pass == *pass
                    && a.path == *path
                    && a.spec == AllowSpec::Fingerprint(f.fingerprint.clone())
            });
            match pinned {
                Some((i, _)) => fp_used[i] = true,
                None => residual.push(f),
            }
        }
        let budget = allowances
            .iter()
            .find(|a| a.pass == *pass && a.path == *path && matches!(a.spec, AllowSpec::Budget(_)))
            .and_then(|a| match a.spec {
                AllowSpec::Budget(b) => Some(b),
                AllowSpec::Fingerprint(_) => None,
            });
        match budget {
            None => {
                for f in residual {
                    report.violations.push(f.to_string());
                }
            }
            Some(budget) if residual.len() > budget => {
                report.violations.push(format!(
                    "{path}: {} `{pass}` findings exceed the allowlisted budget of {budget}:",
                    residual.len()
                ));
                for f in residual {
                    report.violations.push(format!("  {f}"));
                }
            }
            Some(budget) if residual.len() < budget => {
                report.notices.push(format!(
                    "{path}: only {} `{pass}` findings against a budget of {budget} — \
                     ratchet the allowlist down",
                    residual.len()
                ));
            }
            Some(_) => {}
        }
    }
    for (i, a) in allowances.iter().enumerate() {
        match &a.spec {
            AllowSpec::Fingerprint(fp) => {
                if !fp_used[i] {
                    report.notices.push(format!(
                        "unused allowlist entry: {} {} {fp} — the pinned finding no \
                         longer exists; prune it",
                        a.pass, a.path
                    ));
                }
            }
            AllowSpec::Budget(b) => {
                let used = groups.iter().any(|(k, p, _)| *k == a.pass && *p == a.path);
                if !used {
                    report
                        .notices
                        .push(format!("unused allowlist entry: {} {} {b}", a.pass, a.path));
                }
            }
        }
    }
    report
}

/// Discovers crates under `root`, loads and lexes their sources, and
/// runs every registered pass. This is `rrfd-analyze lint` minus the
/// allowlist.
///
/// # Errors
///
/// Propagates I/O errors and malformed fence metadata.
pub fn scan_root(root: &Path) -> io::Result<Vec<Finding>> {
    let crates = workspace::discover(root)?;
    let files = workspace::load_files(root, &crates)?;
    Ok(passes::run_all(&files))
}

/// Renders findings and the reconciliation report as one SARIF-shaped
/// JSON object (`rrfd-lint v1`): tool, per-finding pass / file / span /
/// fingerprint / message, violation and notice strings, and the
/// overall verdict under the given strictness.
#[must_use]
pub fn render_json(findings: &[Finding], report: &LintReport, strict: bool) -> String {
    use crate::jsonout::{esc, str_array};
    let mut out =
        String::from("{\n  \"tool\": \"rrfd-analyze lint\",\n  \"format\": \"rrfd-lint v1\",\n");
    out.push_str(&format!("  \"strict\": {strict},\n"));
    out.push_str(&format!(
        "  \"passes\": {},\n",
        str_array(
            &passes::pass_names()
                .iter()
                .map(|s| (*s).to_owned())
                .collect::<Vec<_>>(),
        )
    ));
    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"pass\": \"{}\", \"file\": \"{}\", \"span\": {{\"line\": {}, \"col\": {}}}, \
             \"fingerprint\": \"{}\", \"message\": \"{}\", \"excerpt\": \"{}\"}}",
            esc(f.pass),
            esc(&f.path),
            f.line,
            f.col,
            esc(&f.fingerprint),
            esc(&f.message),
            esc(&f.excerpt),
        ));
    }
    out.push_str("\n  ],\n");
    out.push_str(&format!(
        "  \"violations\": {},\n",
        str_array(&report.violations)
    ));
    out.push_str(&format!("  \"notices\": {},\n", str_array(&report.notices)));
    out.push_str(&format!("  \"clean\": {}\n}}\n", report.is_clean(strict)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::fingerprint;

    fn finding(pass: &'static str, path: &str, norm: &str, occ: usize) -> Finding {
        Finding {
            pass,
            path: path.to_owned(),
            line: 1,
            col: 1,
            message: "m".to_owned(),
            excerpt: norm.to_owned(),
            fingerprint: fingerprint(pass, path, norm, occ),
        }
    }

    #[test]
    fn allowlist_parses_both_entry_kinds_and_rejects_garbage() {
        let entries = parse_allowlist(
            "# header comment\n\
             \n\
             panic-family crates/rrfd-core/src/task.rs 2  # budget\n\
             round-closure crates/rrfd-sims/src/digest.rs fp:0123456789abcdef\n",
        )
        .unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].spec, AllowSpec::Budget(2));
        assert_eq!(
            entries[1].spec,
            AllowSpec::Fingerprint("fp:0123456789abcdef".to_owned())
        );
        let err = parse_allowlist("panic-family only-two\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(parse_allowlist("mystery-pass a/b.rs 1\n").is_err());
        assert!(parse_allowlist("panic-family a/b.rs fp:short\n").is_err());
        assert!(parse_allowlist("panic-family a/b.rs fp:0123456789abcdeg\n").is_err());
    }

    #[test]
    fn fingerprint_entries_pin_individual_findings() {
        let f1 = finding("panic-family", "a.rs", "x.unwrap();", 0);
        let f2 = finding("panic-family", "a.rs", "y.unwrap();", 0);
        let allow = vec![Allowance {
            pass: "panic-family".to_owned(),
            path: "a.rs".to_owned(),
            spec: AllowSpec::Fingerprint(f1.fingerprint.clone()),
        }];
        let report = reconcile(&[f1.clone(), f2.clone()], &allow);
        // f1 pinned, f2 unmatched.
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].contains(&f2.fingerprint), "{report:?}");
        assert!(report.notices.is_empty(), "{report:?}");
        // Both pinned: clean, no notices.
        let allow2 = vec![
            allow[0].clone(),
            Allowance {
                pass: "panic-family".to_owned(),
                path: "a.rs".to_owned(),
                spec: AllowSpec::Fingerprint(f2.fingerprint.clone()),
            },
        ];
        let report2 = reconcile(&[f1, f2], &allow2);
        assert!(report2.is_clean(true), "{report2:?}");
    }

    #[test]
    fn stale_fingerprints_are_notices_and_strict_failures() {
        let allow = vec![Allowance {
            pass: "panic-family".to_owned(),
            path: "a.rs".to_owned(),
            spec: AllowSpec::Fingerprint("fp:00000000000000aa".to_owned()),
        }];
        let report = reconcile(&[], &allow);
        assert!(report.violations.is_empty());
        assert_eq!(report.notices.len(), 1);
        assert!(report.notices[0].contains("unused"), "{report:?}");
        assert!(report.is_clean(false));
        assert!(!report.is_clean(true));
    }

    #[test]
    fn budgets_keep_legacy_semantics() {
        let f = vec![
            finding("panic-family", "a.rs", "x.unwrap();", 0),
            finding("panic-family", "a.rs", "x.unwrap();", 1),
        ];
        let budget = |b: usize| {
            vec![Allowance {
                pass: "panic-family".to_owned(),
                path: "a.rs".to_owned(),
                spec: AllowSpec::Budget(b),
            }]
        };
        assert_eq!(reconcile(&f, &[]).violations.len(), 2);
        let exact = reconcile(&f, &budget(2));
        assert!(exact.is_clean(true), "{exact:?}");
        let over = reconcile(&f, &budget(1));
        assert!(!over.is_clean(false));
        let under = reconcile(&f, &budget(5));
        assert!(under.is_clean(false) && !under.is_clean(true));
        assert!(under.notices[0].contains("ratchet"), "{under:?}");
        let unused = reconcile(&[], &budget(1));
        assert!(unused.notices[0].contains("unused"), "{unused:?}");
    }

    #[test]
    fn fingerprints_and_budgets_compose() {
        // One pinned finding plus one budgeted stranger: clean.
        let f1 = finding("panic-family", "a.rs", "x.unwrap();", 0);
        let f2 = finding("panic-family", "a.rs", "y.unwrap();", 0);
        let allow = vec![
            Allowance {
                pass: "panic-family".to_owned(),
                path: "a.rs".to_owned(),
                spec: AllowSpec::Fingerprint(f1.fingerprint.clone()),
            },
            Allowance {
                pass: "panic-family".to_owned(),
                path: "a.rs".to_owned(),
                spec: AllowSpec::Budget(1),
            },
        ];
        let report = reconcile(&[f1, f2], &allow);
        assert!(report.is_clean(true), "{report:?}");
    }

    #[test]
    fn json_output_is_shaped_and_escaped() {
        let f = finding("panic-family", "a\"b.rs", "x.unwrap();", 0);
        let report = reconcile(std::slice::from_ref(&f), &[]);
        let json = render_json(&[f], &report, true);
        assert!(json.contains("\"tool\": \"rrfd-analyze lint\""));
        assert!(json.contains("\"file\": \"a\\\"b.rs\""));
        assert!(json.contains("\"fingerprint\": \"fp:"));
        assert!(json.contains("\"clean\": false"));
        // Parses under the workspace's own JSON parser.
        assert!(rrfd_obs::json::parse(&json).is_ok());
    }
}
