//! The original line-oriented lint scanner, **frozen** as a parity
//! reference for the lexer-based framework that replaced it.
//!
//! The `tests/static_analysis.rs` goldens prove that the five ported
//! passes (`panic-family`, `wall-clock`, `obs`, `direct-index`,
//! `msg-clone`) reproduce this scanner's findings on the frozen fixture
//! tree under `tests/fixtures/static_analysis/`. Do not extend this
//! module — new rules belong in `passes`.
//!
//! Known limitations the lexer framework fixes: raw strings are not
//! understood, `#[cfg(test)]` detection is substring-based, fences were
//! hard-coded crate-name arrays (now `Cargo.toml` metadata, see
//! `workspace`), and findings were addressed by line number only (now
//! span-fingerprinted, see `passes`).

use std::fmt;

/// Which legacy lint fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintKind {
    /// `.unwrap()` / `.expect(` / `panic!` in library code.
    PanicFamily,
    /// `Instant::now` / `SystemTime::now` in a deterministic crate.
    WallClock,
    /// `received[` — direct indexing past the suspicion check.
    DirectIndex,
    /// `Instant::now` / `SystemTime::now` in an instrumented crate.
    ObsClock,
    /// `msg.clone()` (or `messages[` + `.clone()` on one line) in a
    /// message-plane crate.
    MsgClone,
}

impl LintKind {
    /// The name used in reports; identical to the framework pass names.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LintKind::PanicFamily => "panic-family",
            LintKind::WallClock => "wall-clock",
            LintKind::DirectIndex => "direct-index",
            LintKind::ObsClock => "obs",
            LintKind::MsgClone => "msg-clone",
        }
    }
}

impl fmt::Display for LintKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One raw legacy finding.
#[derive(Debug, Clone)]
pub struct LintFinding {
    /// Which lint fired.
    pub kind: LintKind,
    /// Path relative to the workspace root, `/`-separated.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

/// The fence lists the legacy scanner hard-coded (the framework reads
/// these from `Cargo.toml` metadata instead).
const DETERMINISTIC_CRATES: &[&str] = &["rrfd-core", "rrfd-models", "rrfd-sims", "rrfd-protocols"];
const INSTRUMENTED_CRATES: &[&str] = &["rrfd-runtime", "rrfd-obs", "rrfd-engine-pool"];
const MESSAGE_PLANE_CRATES: &[&str] =
    &["rrfd-core", "rrfd-runtime", "rrfd-sims", "rrfd-engine-pool"];

/// Scans one file's text with the frozen line-oriented matcher.
pub fn scan_file(crate_name: &str, rel_path: &str, text: &str, out: &mut Vec<LintFinding>) {
    let wall_clock_applies = DETERMINISTIC_CRATES.contains(&crate_name);
    let obs_clock_applies = INSTRUMENTED_CRATES.contains(&crate_name);
    let msg_clone_applies = MESSAGE_PLANE_CRATES.contains(&crate_name);
    let mut strip = StripState::default();
    // Once a `#[cfg(test)]` attribute is seen, skip from its first `{`
    // until the brace depth returns to zero.
    let mut pending_test_attr = false;
    let mut test_depth = 0usize;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let code = strip_noncode(raw, &mut strip);
        if code.contains("#[cfg(test)]") {
            pending_test_attr = true;
        }
        if pending_test_attr || test_depth > 0 {
            let opens = code.matches('{').count();
            let closes = code.matches('}').count();
            if pending_test_attr && opens > 0 {
                pending_test_attr = false;
                test_depth = opens;
                test_depth = test_depth.saturating_sub(closes);
            } else if test_depth > 0 {
                test_depth += opens;
                test_depth = test_depth.saturating_sub(closes);
            }
            continue;
        }
        let mut hit = |kind: LintKind| {
            out.push(LintFinding {
                kind,
                path: rel_path.to_owned(),
                line: line_no,
                excerpt: raw.trim().to_owned(),
            });
        };
        if code.contains(".unwrap()") || code.contains(".expect(") || code.contains("panic!") {
            hit(LintKind::PanicFamily);
        }
        let reads_clock = code.contains("Instant::now") || code.contains("SystemTime::now");
        if wall_clock_applies && reads_clock {
            hit(LintKind::WallClock);
        }
        if obs_clock_applies && reads_clock {
            hit(LintKind::ObsClock);
        }
        if code.contains("received[") {
            hit(LintKind::DirectIndex);
        }
        if msg_clone_applies
            && (code.contains("msg.clone()")
                || (code.contains("messages[") && code.contains(".clone()")))
        {
            hit(LintKind::MsgClone);
        }
    }
}

/// Scanner state carried across physical lines.
#[derive(Default)]
struct StripState {
    block_depth: usize,
    in_string: bool,
}

/// Removes block comments, line comments, string and char literals from
/// a line, tracking comment nesting and open strings across lines.
fn strip_noncode(line: &str, state: &mut StripState) -> String {
    let mut out = String::with_capacity(line.len());
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if state.in_string {
            match bytes[i] {
                b'\\' => i += 2,
                b'"' => {
                    state.in_string = false;
                    i += 1;
                }
                _ => i += 1,
            }
            continue;
        }
        if state.block_depth > 0 {
            if bytes[i..].starts_with(b"*/") {
                state.block_depth -= 1;
                i += 2;
            } else if bytes[i..].starts_with(b"/*") {
                state.block_depth += 1;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        if bytes[i..].starts_with(b"//") {
            break; // line comment: rest of the line is not code
        }
        if bytes[i..].starts_with(b"/*") {
            state.block_depth += 1;
            i += 2;
            continue;
        }
        match bytes[i] {
            b'"' => {
                state.in_string = true;
                i += 1;
            }
            b'\'' => {
                // Char literal ('x', '\n', '\'') vs lifetime ('a in `&'a`).
                let rest = &bytes[i + 1..];
                let close = if rest.first() == Some(&b'\\') {
                    rest.iter().skip(1).position(|&b| b == b'\'').map(|p| p + 1)
                } else {
                    (rest.get(1) == Some(&b'\'')).then_some(1)
                };
                match close {
                    Some(offset) => i += offset + 2, // skip the whole literal
                    None => {
                        out.push('\''); // lifetime: keep and move on
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b as char);
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(text: &str) -> Vec<LintFinding> {
        let mut out = Vec::new();
        scan_file("rrfd-core", "crates/rrfd-core/src/x.rs", text, &mut out);
        out
    }

    #[test]
    fn flags_the_panic_family() {
        let found = scan(
            "fn f() {\n    let x = y.unwrap();\n    z.expect(\"boom\");\n    panic!(\"no\");\n}\n",
        );
        assert_eq!(found.len(), 3);
        assert!(found.iter().all(|f| f.kind == LintKind::PanicFamily));
        assert_eq!(found[0].line, 2);
    }

    #[test]
    fn comments_and_strings_are_not_code() {
        let found = scan(
            "// a.unwrap() in a comment\n\
             /* panic!(\"nope\") */\n\
             let s = \".unwrap()\";\n\
             /// docs may say panic! freely\n",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn test_modules_are_exempt() {
        let found = scan(
            "fn lib() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn t() { x.unwrap(); }\n\
             }\n\
             fn after() { y.unwrap(); }\n",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].line, 6);
    }
}
